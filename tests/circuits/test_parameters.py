"""Tests for design parameters and the discrete design space."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.devices import nmos
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import ACTION_DELTAS, DesignParameter, DesignSpace


@pytest.fixture
def width_parameter() -> DesignParameter:
    return DesignParameter("M1.width", "M1", "width", minimum=1e-6, maximum=100e-6, step=1e-6)


@pytest.fixture
def finger_parameter() -> DesignParameter:
    return DesignParameter(
        "M1.fingers", "M1", "fingers", minimum=2, maximum=32, step=1, integer=True
    )


@pytest.fixture
def space(width_parameter, finger_parameter) -> DesignSpace:
    return DesignSpace([width_parameter, finger_parameter])


class TestDesignParameter:
    def test_validation(self):
        with pytest.raises(ValueError):
            DesignParameter("x", "d", "a", minimum=2.0, maximum=1.0, step=0.1)
        with pytest.raises(ValueError):
            DesignParameter("x", "d", "a", minimum=0.0, maximum=1.0, step=0.0)
        with pytest.raises(ValueError):
            DesignParameter("x", "d", "a", minimum=0.0, maximum=1.0, step=2.0)

    def test_num_levels(self, width_parameter, finger_parameter):
        assert width_parameter.num_levels == 100
        assert finger_parameter.num_levels == 31

    def test_clip_and_snap(self, width_parameter):
        assert width_parameter.clip(500e-6) == pytest.approx(100e-6)
        assert width_parameter.clip(0.0) == pytest.approx(1e-6)
        assert width_parameter.snap(5.4e-6) == pytest.approx(5e-6)
        assert width_parameter.snap(5.6e-6) == pytest.approx(6e-6)

    def test_integer_snap(self, finger_parameter):
        assert finger_parameter.snap(7.3) == 7
        assert finger_parameter.clip(100) == 32

    def test_apply_delta_respects_bounds(self, width_parameter):
        assert width_parameter.apply_delta(1e-6, -1) == pytest.approx(1e-6)
        assert width_parameter.apply_delta(100e-6, +1) == pytest.approx(100e-6)
        assert width_parameter.apply_delta(50e-6, +1) == pytest.approx(51e-6)
        assert width_parameter.apply_delta(50e-6, 0) == pytest.approx(50e-6)
        with pytest.raises(ValueError):
            width_parameter.apply_delta(50e-6, 2)

    def test_normalize_roundtrip(self, width_parameter):
        assert width_parameter.normalize(1e-6) == pytest.approx(0.0)
        assert width_parameter.normalize(100e-6) == pytest.approx(1.0)
        assert width_parameter.denormalize(0.5) == pytest.approx(width_parameter.snap(50.5e-6))


class TestDesignSpace:
    def test_basic_properties(self, space):
        assert len(space) == 2
        assert space.names == ["M1.width", "M1.fingers"]
        assert space["M1.width"].attribute == "width"
        assert space[1].integer
        np.testing.assert_allclose(space.lower_bounds, [1e-6, 2])
        np.testing.assert_allclose(space.upper_bounds, [100e-6, 32])
        assert space.cardinality() == 100 * 31

    def test_unique_names_required(self, width_parameter):
        with pytest.raises(ValueError):
            DesignSpace([width_parameter, width_parameter])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([])

    def test_netlist_roundtrip(self, space):
        netlist = Netlist("test", [nmos("M1", "d", "g", "s", width=10e-6, fingers=4)])
        values = space.vector_from_netlist(netlist)
        np.testing.assert_allclose(values, [10e-6, 4])
        space.apply_to_netlist(netlist, np.array([20.4e-6, 7.8]))
        np.testing.assert_allclose(space.vector_from_netlist(netlist), [20e-6, 8])

    def test_apply_actions(self, space):
        values = np.array([50e-6, 10.0])
        increased = space.apply_actions(values, np.array([2, 2]))
        np.testing.assert_allclose(increased, [51e-6, 11])
        decreased = space.apply_actions(values, np.array([0, 0]))
        np.testing.assert_allclose(decreased, [49e-6, 9])
        kept = space.apply_actions(values, np.array([1, 1]))
        np.testing.assert_allclose(kept, values)

    def test_apply_actions_validation(self, space):
        with pytest.raises(ValueError):
            space.apply_actions(np.array([50e-6, 10.0]), np.array([2]))
        with pytest.raises(ValueError):
            space.apply_actions(np.array([50e-6, 10.0]), np.array([3, 0]))

    def test_sample_within_bounds(self, space, rng):
        for _ in range(50):
            sample = space.sample(rng)
            assert np.all(sample >= space.lower_bounds - 1e-12)
            assert np.all(sample <= space.upper_bounds + 1e-12)

    def test_center(self, space):
        center = space.center()
        assert space.lower_bounds[0] < center[0] < space.upper_bounds[0]
        assert center[1] == 17

    def test_as_dict(self, space):
        mapping = space.as_dict(np.array([3e-6, 5]))
        assert mapping == {"M1.width": pytest.approx(3e-6), "M1.fingers": 5.0}


class TestActionDeltas:
    def test_ordering_matches_env_convention(self):
        assert ACTION_DELTAS == (-1, 0, 1)


@settings(max_examples=50, deadline=None)
@given(
    value=st.floats(min_value=-1e-3, max_value=1e-3),
    direction=st.sampled_from([-1, 0, 1]),
)
def test_property_apply_delta_stays_on_grid_and_in_bounds(value, direction):
    """Any starting value, after one action, lands on a grid point in bounds."""
    parameter = DesignParameter("p", "d", "a", minimum=1e-6, maximum=100e-6, step=1e-6)
    result = parameter.apply_delta(value, direction)
    assert parameter.minimum - 1e-12 <= result <= parameter.maximum + 1e-12
    levels = (result - parameter.minimum) / parameter.step
    assert abs(levels - round(levels)) < 1e-6


@settings(max_examples=50, deadline=None)
@given(unit=st.floats(min_value=-0.5, max_value=1.5))
def test_property_denormalize_normalize_consistency(unit):
    """normalize(denormalize(u)) stays within [0, 1] and close to clip(u)."""
    parameter = DesignParameter("p", "d", "a", minimum=0.1e-12, maximum=10e-12, step=0.1e-12)
    value = parameter.denormalize(unit)
    recovered = parameter.normalize(value)
    assert 0.0 <= recovered <= 1.0
    assert abs(recovered - float(np.clip(unit, 0.0, 1.0))) < 0.02
