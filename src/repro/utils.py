"""Small shared utilities with no domain dependencies."""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Union


def atomic_write_json(
    path: Union[str, os.PathLike],
    data: Any,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> None:
    """Write ``data`` as JSON so readers never observe a partial file.

    Writes to a temporary file in the destination directory and publishes it
    with ``os.replace`` — atomic on POSIX — so concurrent readers (cache
    workers, resumed sweeps) see either the old complete document or the new
    one, never a torn write.  The temporary file is removed on failure.
    Used by both the :mod:`repro.orchestrate` artifact store and the
    :class:`repro.parallel.DiskSimulationCache` persistent tier.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=indent, sort_keys=sort_keys)
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, os.PathLike], text: str) -> None:
    """Write ``text`` with the same write-then-replace publication.

    For callers that control their own serialization bytes exactly (e.g. a
    config's ``to_json() + "\\n"``): the text lands in a temporary file in
    the destination directory and is published with ``os.replace``, so
    concurrent readers never observe a torn write.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(temp_name, path)
    except OSError:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
