"""Reward functions for the P2S and FoM optimization problems.

Two reward definitions are used in the paper:

* **P2S reward** (Eq. 1): at each step the reward is the sum over all
  specifications of the clipped normalized difference between intermediate
  and target values, ``r = Σ_j min((g_j − g*_j)/(g_j + g*_j), 0)`` (with the
  sign flipped for "smaller-is-better" specs such as power consumption).
  The sum is upper-bounded by zero so the agent is not pushed to
  over-optimize a spec that is already met, and a large bonus ``R = 10`` is
  granted once *all* specifications are met.

* **FoM reward** (Sec. 4, "FoM Optimization"): for the RF PA the figure of
  merit is ``FoM = P + 3 E``; during training each term is normalized with a
  reference value, ``r_i = (P_i − P_r)/(P_i + P_r) + 3 (E_i − E_r)/(E_i + E_r)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.circuits.specs import SpecificationSpace

#: Bonus granted when every specification of the target group is satisfied.
GOAL_BONUS = 10.0


@dataclass
class RewardOutcome:
    """Reward plus the per-spec diagnostics environments expose in ``info``."""

    reward: float
    goal_reached: bool
    normalized_errors: Dict[str, float]
    met_fraction: float


class P2SReward:
    """The paper's Eq. (1) reward for parameter-to-specification search.

    Parameters
    ----------
    spec_space:
        The circuit's specification space (provides objective directions).
    goal_bonus:
        Reward granted when all specifications are met (``R`` in Eq. 1).
    invalid_penalty:
        Reward returned when the simulator reports a degenerate operating
        point; strongly negative so the policy learns to avoid such regions.
    """

    def __init__(
        self,
        spec_space: SpecificationSpace,
        goal_bonus: float = GOAL_BONUS,
        invalid_penalty: float | None = None,
    ) -> None:
        self.spec_space = spec_space
        self.goal_bonus = goal_bonus
        # Default: one unit of penalty per specification (the worst possible
        # Eq. 1 value), used for invalid simulation results.
        self.invalid_penalty = (
            float(invalid_penalty) if invalid_penalty is not None else -float(len(spec_space))
        )

    def __call__(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float],
        valid: bool = True,
    ) -> RewardOutcome:
        errors = self.spec_space.normalized_errors(measured, targets)
        named_errors = {name: float(e) for name, e in zip(self.spec_space.names, errors)}
        if not valid:
            return RewardOutcome(
                reward=self.invalid_penalty,
                goal_reached=False,
                normalized_errors=named_errors,
                met_fraction=0.0,
            )
        raw = float(errors.sum())
        goal_reached = bool(np.all(errors >= 0.0))
        reward = self.goal_bonus if goal_reached else raw
        return RewardOutcome(
            reward=reward,
            goal_reached=goal_reached,
            normalized_errors=named_errors,
            met_fraction=self.spec_space.met_fraction(measured, targets),
        )


class FomReward:
    """Figure-of-merit reward for the RF PA (``FoM = P + 3 E``).

    Parameters
    ----------
    spec_space:
        Specification space (only used for naming/diagnostics).
    power_reference, efficiency_reference:
        The normalization references ``P_r`` and ``E_r``; the paper uses
        references drawn from the sampling space (we default to its
        midpoints: 2.5 W and 55 %).
    efficiency_weight:
        The factor 3 from the paper's FoM definition.
    """

    def __init__(
        self,
        spec_space: SpecificationSpace,
        power_reference: float = 2.5,
        efficiency_reference: float = 0.55,
        efficiency_weight: float = 3.0,
    ) -> None:
        if power_reference <= 0 or efficiency_reference <= 0:
            raise ValueError("references must be positive")
        self.spec_space = spec_space
        self.power_reference = power_reference
        self.efficiency_reference = efficiency_reference
        self.efficiency_weight = efficiency_weight

    def figure_of_merit(self, measured: Mapping[str, float]) -> float:
        """Un-normalized figure of merit ``P + 3 E`` (what Table 2 reports)."""
        return float(measured["output_power"]) + self.efficiency_weight * float(
            measured["efficiency"]
        )

    def __call__(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float] | None = None,
        valid: bool = True,
    ) -> RewardOutcome:
        if not valid:
            return RewardOutcome(
                reward=-2.0 * (1.0 + self.efficiency_weight),
                goal_reached=False,
                normalized_errors={},
                met_fraction=0.0,
            )
        power = float(measured["output_power"])
        efficiency = float(measured["efficiency"])
        power_term = (power - self.power_reference) / (power + self.power_reference)
        eff_term = (efficiency - self.efficiency_reference) / (
            efficiency + self.efficiency_reference
        )
        reward = power_term + self.efficiency_weight * eff_term
        return RewardOutcome(
            reward=float(reward),
            goal_reached=False,
            normalized_errors={"output_power": power_term, "efficiency": eff_term},
            met_fraction=0.0,
        )
