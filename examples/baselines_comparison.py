"""Head-to-head: every method family through ONE orchestrated sweep.

For a single target specification group on the two-stage op-amp, every
registered optimizer — genetic algorithm, Bayesian optimization, random
search, the supervised one-shot sizer, and the PPO-trained RL policy — runs
as one work unit of a declarative :class:`repro.SweepConfig`, executed by
the ``repro.orchestrate`` run manager::

    sweep = repro.SweepConfig(optimizers=[...], envs=["opamp-p2s-v0"], ...)
    result = repro.run_sweep(sweep, store=..., workers=...)

and reports how many simulator calls it needed and whether the design met
all specifications — the per-design view of Table 2's accuracy/efficiency
trade-off.  Per-method knobs are data (the ``METHODS`` table below, with
each method's budget riding in its ``OptimizerConfig.params``), not separate
code paths.  Re-running with the same ``--store`` skips every completed
method via the artifact store.

Run with:  python examples/baselines_comparison.py [--episodes N] [--workers N]
"""

from __future__ import annotations

import argparse
import tempfile

import repro

TARGET = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}


def method_table(args: argparse.Namespace):
    """(optimizer id, label, budget, constructor params) for every method."""
    return (
        ("genetic", "Genetic Algorithm", args.search_budget, {}),
        ("bayesian", "Bayesian Optimization", max(12, args.search_budget // 4), {}),
        ("random", "Random Search", args.search_budget, {}),
        ("supervised", "Supervised Learning", args.sl_samples, {"epochs": args.sl_epochs}),
        ("ppo", "GCN-FC RL deployment", args.episodes, {"policy": "gcn_fc"}),
    )


def main(args: argparse.Namespace) -> None:
    repro.seed_everything(args.seed)
    methods = method_table(args)
    labels = {method: label for method, label, _, _ in methods}

    sweep = repro.SweepConfig(
        name="baselines-comparison",
        optimizers=[
            repro.OptimizerConfig(method, {**params, "budget": budget})
            for method, _, budget, params in methods
        ],
        envs=[repro.EnvConfig("opamp-p2s-v0", {"seed": args.seed})],
        seeds=[args.seed],
        target_specs=TARGET,
    )
    store = args.store or tempfile.mkdtemp(prefix="baselines_comparison_")

    print(f"Target specification group: {TARGET}")
    print(f"Sweep: {sweep.num_units} units -> artifact store {store}\n")

    progress = {"done": 0}

    def on_progress(event, record):
        progress["done"] += 1
        method = record.payload["run"]["optimizer"]["id"]
        state = "skipped (artifact store)" if event == "skipped" else event
        print(f"[{progress['done']}/{sweep.num_units}] "
              f"{labels.get(method, method)} ... {state}")

    result = repro.run_sweep(
        sweep, store=store, workers=args.workers, on_progress=on_progress
    )

    print("\nPer-design comparison (simulator calls to produce one design):")
    print(f"  {'method':<26s} {'simulator calls':>16s} {'all specs met':>14s}")
    for record in result.records:
        method = record.payload["run"]["optimizer"]["id"]
        if not record.completed:
            print(f"  {labels.get(method, method):<26s} {'FAILED':>16s} {'-':>14s}")
            continue
        summary = record.result["result"]
        print(f"  {labels.get(method, method):<26s} "
              f"{summary['num_simulations']:>16d} "
              f"{str(bool(summary['success'])):>14s}")
    if result.failed:
        for unit_id in result.failed:
            error = (result.record(unit_id).error or "").strip().splitlines()
            print(f"\n{unit_id} failed: {error[-1] if error else 'unknown error'}")
        raise SystemExit(1)
    print("\nNote: the RL row excludes the one-off training cost, exactly as in the paper —")
    print("once trained, the policy is reused for every new specification group.")
    print("The supervised row likewise excludes its offline dataset generation.")
    print(f"\nArtifacts: {result.store_root} — re-run with --store {store!r} to skip "
          "completed methods.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=200,
                        help="RL training episodes (default 200; paper uses 35000)")
    parser.add_argument("--search-budget", type=int, default=400,
                        help="simulator-call budget for the search baselines")
    parser.add_argument("--sl-samples", type=int, default=600,
                        help="training designs for the supervised sizer")
    parser.add_argument("--sl-epochs", type=int, default=60,
                        help="training epochs for the supervised sizer")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: fresh temp dir)")
    main(parser.parse_args())
