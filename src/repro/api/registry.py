"""A generic string-ID component registry (the backbone of :mod:`repro.api`).

Every user-facing component class — environments, policies, optimizers — is
published under a gym-style string ID (``"opamp-p2s-v0"``, ``"gcn_fc"``,
``"ppo"``).  A :class:`Registry` maps those IDs to factory callables,
supports decorator-based registration, aliases, per-entry default keyword
arguments, and raises :class:`UnknownComponentError` with close-match
suggestions when an ID is not found::

    POLICIES = Registry("policy")

    @POLICIES.register("gcn_fc", description="GCN + spec-FCNN multimodal policy")
    def _gcn_fc(env, rng=None, **overrides):
        ...

    POLICIES.make("gcn_fc", env)       # -> policy instance
    POLICIES.ids()                     # -> ["gcn_fc"]
    POLICIES.make("gcn-fc ")           # -> UnknownComponentError with hint
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class UnknownComponentError(ValueError):
    """Raised when a registry lookup fails.

    Subclasses :class:`ValueError` so callers of the legacy factories (which
    raised ``ValueError`` for unknown names) keep working unchanged.
    """


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory plus discovery metadata."""

    id: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    defaults: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)


class Registry:
    """Maps string IDs to component factories.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"environment"``, ``"policy"``,
        ``"optimizer"``) — used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, RegistryEntry] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        id: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        description: str = "",
        aliases: Sequence[str] = (),
        defaults: Optional[Dict[str, Any]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        overwrite: bool = False,
    ) -> Callable[..., Any]:
        """Register ``factory`` under ``id`` (usable as a decorator).

        ``aliases`` are alternative IDs resolving to the same entry (useful
        for legacy names such as ``"genetic_algorithm"`` -> ``"genetic"``).
        ``defaults`` are keyword arguments merged under any caller-provided
        keywords at :meth:`make` time.
        """

        def _do_register(fn: Callable[..., Any]) -> Callable[..., Any]:
            if not id or not isinstance(id, str):
                raise ValueError(f"{self.kind} id must be a non-empty string, got {id!r}")
            for name in (id, *aliases):
                if not overwrite and name in self._entries:
                    raise ValueError(
                        f"{self.kind} id '{name}' is already registered; "
                        f"pass overwrite=True to replace it"
                    )
                if not overwrite and name in self._aliases:
                    raise ValueError(
                        f"'{name}' is already an alias for {self.kind} "
                        f"'{self._aliases[name]}'; pass overwrite=True to replace it"
                    )
            if overwrite:
                # Every claimed name must actually repoint: drop any entry
                # registered under one of them (with its stale aliases) and
                # any alias mapping that would otherwise shadow the new one.
                for name in (id, *aliases):
                    if name in self._entries:
                        self.unregister(name)
                    self._aliases.pop(name, None)
            doc_lines = (fn.__doc__ or "").strip().splitlines()
            entry = RegistryEntry(
                id=id,
                factory=fn,
                description=description or (doc_lines[0] if doc_lines else ""),
                aliases=tuple(aliases),
                defaults=dict(defaults or {}),
                metadata=dict(metadata or {}),
            )
            self._entries[id] = entry
            for alias in aliases:
                self._aliases[alias] = id
            return fn

        if factory is not None:
            return _do_register(factory)
        return _do_register

    def unregister(self, id: str) -> None:
        """Remove an entry and all of its aliases (mainly for tests)."""
        canonical = self.resolve(id)
        entry = self._entries.pop(canonical)
        for alias in entry.aliases:
            self._aliases.pop(alias, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def resolve(self, id: str) -> str:
        """Resolve an ID or alias to the canonical ID, or raise."""
        if id in self._entries:
            return id
        if id in self._aliases:
            return self._aliases[id]
        raise self._unknown(id)

    def get(self, id: str) -> RegistryEntry:
        """Look up the :class:`RegistryEntry` for an ID or alias."""
        return self._entries[self.resolve(id)]

    def make(self, id: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component registered under ``id``.

        Entry ``defaults`` are applied first; caller keywords win.
        """
        entry = self.get(id)
        merged = {**entry.defaults, **kwargs}
        return entry.factory(*args, **merged)

    def ids(self) -> List[str]:
        """Sorted canonical IDs (aliases excluded)."""
        return sorted(self._entries)

    def describe(self) -> Dict[str, str]:
        """Canonical ID -> one-line description (for discovery helpers)."""
        return {id: self._entries[id].description for id in self.ids()}

    # ------------------------------------------------------------------
    # Protocol sugar
    # ------------------------------------------------------------------
    def __contains__(self, id: object) -> bool:
        return isinstance(id, str) and (id in self._entries or id in self._aliases)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    def items(self) -> List[Tuple[str, RegistryEntry]]:
        """``(id, entry)`` pairs for every registered component, sorted by ID."""
        return [(id, self._entries[id]) for id in self.ids()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, ids={self.ids()})"

    # ------------------------------------------------------------------
    def _unknown(self, id: str) -> UnknownComponentError:
        known = sorted({*self._entries, *self._aliases})
        suggestions = difflib.get_close_matches(id, known, n=3, cutoff=0.4)
        hint = f" Did you mean {' or '.join(repr(s) for s in suggestions)}?" if suggestions else ""
        return UnknownComponentError(
            f"unknown {self.kind} id '{id}'.{hint} "
            f"Available {self.kind} ids: {self.ids()}"
        )
