"""``python -m repro.run deploy`` / ``serve`` — the serving command line.

``deploy`` runs a finite request document to completion::

    python -m repro.run deploy ckpt/latest.npz requests.json
    python -m repro.run deploy ckpt/latest.npz requests.json --batch-size 16
    python -m repro.run deploy ckpt/latest.npz requests.json --output results.json

``serve`` keeps a :class:`~repro.serve.gateway.Gateway` running and speaks
the versioned wire protocol (:mod:`repro.serve.protocol`) over one of two
dependency-free transports::

    python -m repro.run serve ckpt/latest.npz --stdin     # NDJSON in/out
    python -m repro.run serve ckpt/latest.npz --port 8080 # stdlib HTTP

In ``--stdin`` mode every input line is one ``ServeRequest`` JSON object and
every output line one ``ServeResponse`` (responses print in submission
order; malformed lines get a structured ``bad_request`` response without
stopping the loop).  In HTTP mode ``POST /v1/serve`` takes a single request
object or a ``{"requests": [...]}`` document, ``GET /v1/stats`` returns the
gateway stats document, and ``GET /v1/healthz`` answers liveness probes.
Both transports drain cleanly on EOF / Ctrl-C: accepted requests are
answered before exit.

Request-document formats are documented in :mod:`repro.serve.protocol`
(the legacy ``specs.json`` shapes still parse, with a ``DeprecationWarning``).
Exit status: 0 when the transport shut down cleanly (designs that miss
their specs are results, not errors), 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import queue
import sys
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, Optional, Sequence, TextIO

from repro.agents.checkpoint import CheckpointError, load_checkpoint
from repro.serve.protocol import (
    SCHEMA_VERSION,
    ServeRequest,
    ServeResponse,
    load_requests_document,
    parse_requests_document,
)
from repro.serve.service import DeploymentService
from repro.utils import atomic_write_text


# ----------------------------------------------------------------------
# deploy
# ----------------------------------------------------------------------
def build_deploy_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run deploy",
        description="Deploy a checkpointed policy over a batch of specification targets.",
    )
    parser.add_argument("checkpoint", help="path to a policy checkpoint (.npz)")
    parser.add_argument("specs", help="path to the request-document JSON file")
    parser.add_argument("--batch-size", type=int, default=8, dest="batch_size",
                        help="episodes run lock-step per topology (default 8; "
                             "1 = sequential deployment)")
    parser.add_argument("--env", default=None,
                        help="environment ID override (default: the checkpoint's "
                             "recorded env id)")
    parser.add_argument("--max-steps", type=int, default=None, dest="max_steps",
                        help="episode step budget override for every target")
    parser.add_argument("--surrogate", default=None,
                        help="trained surrogate checkpoint (.npz from "
                             "'repro.run surrogate train'); trusted design steps "
                             "are answered by the learned tier")
    parser.add_argument("--surrogate-dir", default=None, dest="surrogate_dir",
                        help="persistent simulation-corpus directory shared with "
                             "the exact tier")
    parser.add_argument("--output", default=None,
                        help="write per-target results as JSON to this file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-target lines (summary still prints)")
    return parser


def main_deploy(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_deploy_parser()
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.max_steps is not None and args.max_steps < 1:
        print("error: --max-steps must be >= 1", file=sys.stderr)
        return 2
    try:
        requests = load_requests_document(args.specs)
        if args.max_steps is not None:
            for request in requests:
                request.max_steps = int(args.max_steps)
        service = DeploymentService.from_checkpoint(
            args.checkpoint,
            env_id=args.env,
            batch_size=args.batch_size,
            surrogate=args.surrogate,
            surrogate_dir=args.surrogate_dir,
        )
    except (OSError, ValueError, CheckpointError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    env_ids = ", ".join(service.env_ids)
    print(f"deploy: {len(requests)} targets -> {env_ids} (batch size {args.batch_size})")
    start = time.perf_counter()
    try:
        responses = service.serve(requests)
    except ValueError as exc:  # e.g. a target routed to an unregistered env id
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start

    if not args.quiet:
        for response in responses:
            status = "MET " if response.success else "miss"
            specs = ", ".join(
                f"{name}={value:.4g}" for name, value in response.target_specs.items()
            )
            print(f"[{response.index:>3d}] {status} in {response.steps:>3d} steps  ({specs})")

    stats = service.stats.snapshot()
    cache = service.cache_stats()
    print()
    print(
        f"served {stats.episodes} episodes in {elapsed:.2f}s "
        f"({stats.episodes / elapsed:.1f} episodes/s, "
        f"{stats.design_steps} design steps) | "
        f"accuracy {stats.accuracy:.2%}, mean steps "
        f"{stats.design_steps / stats.episodes:.1f} | "
        f"simulation cache hit rate {cache.hit_rate:.2%}"
    )
    if stats.surrogate_hits or stats.trust_rejections:
        print(
            f"surrogate tier: {stats.surrogate_hits} answered, "
            f"{stats.trust_rejections} trust-rejected, "
            f"{stats.exact_fallbacks} exact fallbacks"
        )

    if args.output is not None:
        document = {
            "checkpoint": args.checkpoint,
            "batch_size": args.batch_size,
            "accuracy": stats.accuracy,
            "mean_steps": stats.design_steps / stats.episodes,
            "wall_time_s": elapsed,
            "service": service.stats_dict(),
            "results": [response.to_dict() for response in responses],
        }
        atomic_write_text(args.output, json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run serve",
        description="Run the async serving gateway over a checkpoint "
                    "(NDJSON on stdin/stdout, or a stdlib HTTP endpoint).",
    )
    parser.add_argument("checkpoint", help="path to a policy checkpoint (.npz)")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--stdin", action="store_true",
                      help="NDJSON mode: one ServeRequest JSON object per input "
                           "line, one ServeResponse per output line")
    mode.add_argument("--port", type=int, default=None,
                      help="HTTP mode: listen on this port (0 picks a free one; "
                           "POST /v1/serve, GET /v1/stats, GET /v1/healthz)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind address (default 127.0.0.1)")
    parser.add_argument("--env", default=None,
                        help="environment ID override (default: the checkpoint's "
                             "recorded env id)")
    parser.add_argument("--batch-size", type=int, default=8, dest="batch_size",
                        help="maximum requests coalesced into one lock-step batch "
                             "(default 8)")
    parser.add_argument("--workers", type=int, default=2,
                        help="gateway worker threads; topologies shard over them "
                             "(default 2)")
    parser.add_argument("--max-batch-delay-ms", type=float, default=25.0,
                        dest="max_batch_delay_ms",
                        help="default coalescing budget for requests without their "
                             "own deadline_ms (default 25; 0 disables batching delay)")
    parser.add_argument("--request-timeout", type=float, default=None,
                        dest="request_timeout",
                        help="hard per-request budget in seconds; expired requests "
                             "get a structured timeout error instead of running")
    parser.add_argument("--cache-responses", action="store_true", dest="cache_responses",
                        help="memoize completed responses and answer repeated "
                             "identical requests from the cache (deployment is "
                             "deterministic, so replays are exact)")
    parser.add_argument("--surrogate", default=None,
                        help="trained surrogate checkpoint for the learned "
                             "simulation tier")
    parser.add_argument("--surrogate-dir", default=None, dest="surrogate_dir",
                        help="persistent simulation-corpus directory")
    parser.add_argument("--shards", type=int, default=None,
                        help="process-shard mode: dispatch batches to this many "
                             "persistent worker processes (each holding its own "
                             "service; --surrogate-dir becomes their shared "
                             "on-disk corpus)")
    parser.add_argument("--stats-output", default=None, dest="stats_output",
                        help="write the final gateway stats document as JSON to "
                             "this file on shutdown")
    return parser


def _bad_request_response(message: str) -> ServeResponse:
    return ServeResponse.failure(None, "bad_request", message)


def _serve_stdin(gateway: Any, input_stream: TextIO, output_stream: TextIO) -> int:
    """NDJSON loop: submit as lines arrive, print in submission order.

    Submission (the reader) is decoupled from printing (a thread resolving
    futures in FIFO order), so consecutive lines actually coalesce into
    batches instead of being served one at a time.
    """
    results: "queue.Queue[Optional[Future]]" = queue.Queue()

    def printer() -> None:
        while True:
            future = results.get()
            if future is None:
                return
            response = future.result()
            print(response.to_json(), file=output_stream, flush=True)

    thread = threading.Thread(target=printer, name="gateway-stdout", daemon=True)
    thread.start()
    submitted = 0
    try:
        for line in input_stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = ServeRequest.from_json(line)
            except ValueError as exc:
                gateway.stats.record_error("bad_request")
                failed: Future = Future()
                failed.set_result(_bad_request_response(str(exc)))
                results.put(failed)
                continue
            results.put(gateway.submit(request))
            submitted += 1
    except KeyboardInterrupt:
        pass
    results.put(None)
    gateway.close(drain=True)
    thread.join()
    return submitted


def _build_http_server(host: str, port: int, gateway: Any):
    """The stdlib HTTP front end (no dependencies beyond http.server)."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class GatewayHandler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *_args: Any) -> None:  # keep stdout/stderr quiet
            pass

        def _send_json(self, status: int, document: Dict[str, Any]) -> None:
            payload = json.dumps(document, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_error_json(self, status: int, code: str, message: str) -> None:
            gateway.stats.record_error(code)
            self._send_json(
                status,
                {
                    "schema_version": SCHEMA_VERSION,
                    "error": {"code": code, "message": message},
                },
            )

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/v1/stats":
                self._send_json(200, gateway.stats_dict())
            elif self.path == "/v1/healthz":
                self._send_json(200, {"ok": True, "schema_version": SCHEMA_VERSION})
            else:
                self._send_error_json(404, "bad_request", f"unknown path {self.path!r}")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path != "/v1/serve":
                self._send_error_json(404, "bad_request", f"unknown path {self.path!r}")
                return
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length)
            try:
                document = json.loads(body) if body else None
            except json.JSONDecodeError as exc:
                self._send_error_json(400, "bad_request", f"body is not valid JSON: {exc}")
                return
            try:
                if isinstance(document, dict) and "requests" in document:
                    requests = parse_requests_document(document)
                    responses = gateway.serve(requests)
                    self._send_json(
                        200,
                        {
                            "schema_version": SCHEMA_VERSION,
                            "responses": [response.to_dict() for response in responses],
                        },
                    )
                else:
                    request = ServeRequest.from_dict(document)
                    response = gateway.serve([request])[0]
                    self._send_json(200, response.to_dict())
            except (ValueError, TypeError) as exc:
                self._send_error_json(400, "bad_request", str(exc))

    class GatewayHTTPServer(ThreadingHTTPServer):
        daemon_threads = True

    return GatewayHTTPServer((host, port), GatewayHandler)


def main_serve(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2

    from repro.serve.gateway import Gateway, ProcessShardPool

    backend: Any = None
    try:
        if args.shards is not None:
            env_id = args.env or load_checkpoint(args.checkpoint).env_id
            if env_id is None:
                print(
                    "error: the checkpoint does not record an environment ID; "
                    "pass --env to route its requests",
                    file=sys.stderr,
                )
                return 2
            backend = ProcessShardPool(
                {env_id: args.checkpoint},
                shards=args.shards,
                batch_size=args.batch_size,
                cache_dir=args.surrogate_dir,
                surrogates={env_id: args.surrogate} if args.surrogate else None,
            )
        else:
            backend = DeploymentService.from_checkpoint(
                args.checkpoint,
                env_id=args.env,
                batch_size=args.batch_size,
                surrogate=args.surrogate,
                surrogate_dir=args.surrogate_dir,
            )
    except (OSError, ValueError, CheckpointError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    gateway = Gateway(
        backend,
        num_workers=args.workers,
        max_batch_delay_ms=args.max_batch_delay_ms,
        request_timeout_s=args.request_timeout,
        cache_responses=args.cache_responses,
    )
    mode = f"{args.shards} process shards" if args.shards else "in-process threads"
    env_ids = ", ".join(backend.env_ids)
    print(
        f"gateway: {env_ids} | batch size {args.batch_size}, {args.workers} workers "
        f"({mode}), {args.max_batch_delay_ms:g} ms batching budget",
        file=sys.stderr,
        flush=True,
    )

    try:
        if args.stdin:
            submitted = _serve_stdin(gateway, sys.stdin, sys.stdout)
            print(f"served {submitted} requests; draining done", file=sys.stderr)
        else:
            server = _build_http_server(args.host, args.port, gateway)
            host, port = server.server_address[:2]
            print(
                f"serving on http://{host}:{port} (schema v{SCHEMA_VERSION}); "
                "Ctrl-C drains and exits",
                file=sys.stderr,
                flush=True,
            )
            try:
                server.serve_forever(poll_interval=0.1)
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
    finally:
        gateway.close(drain=True)
        if args.stats_output is not None:
            atomic_write_text(
                args.stats_output,
                json.dumps(gateway.stats_dict(), indent=2, sort_keys=True) + "\n",
            )
        if hasattr(backend, "close"):
            backend.close()
    return 0
