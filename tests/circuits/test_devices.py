"""Tests for device primitives."""

from __future__ import annotations

import pytest

from repro.circuits.devices import (
    DEVICE_TYPE_ORDER,
    Device,
    DeviceType,
    bias,
    capacitor,
    current_source,
    gan_hemt,
    ground,
    inductor,
    nmos,
    pmos,
    resistor,
    supply,
)


class TestDeviceType:
    def test_classification_flags(self):
        assert DeviceType.NMOS.is_transistor
        assert DeviceType.PMOS.is_transistor
        assert DeviceType.GAN_HEMT.is_transistor
        assert DeviceType.CAPACITOR.is_passive
        assert DeviceType.RESISTOR.is_passive
        assert DeviceType.INDUCTOR.is_passive
        assert DeviceType.SUPPLY.is_source
        assert DeviceType.GROUND.is_source
        assert DeviceType.BIAS.is_source
        assert not DeviceType.NMOS.is_passive
        assert not DeviceType.CAPACITOR.is_transistor

    def test_order_is_stable(self):
        # The one-hot node encoding depends on this exact ordering.
        assert DEVICE_TYPE_ORDER[0] is DeviceType.NMOS
        assert len(DEVICE_TYPE_ORDER) == len(DeviceType)


class TestDeviceConstruction:
    def test_nmos_defaults(self):
        device = nmos("M1", "d", "g", "s")
        assert device.dtype is DeviceType.NMOS
        assert device.terminals == {"d": "d", "g": "g", "s": "s", "b": "s"}
        assert device.get_parameter("width") == pytest.approx(10e-6)
        assert device.get_parameter("fingers") == 2

    def test_pmos_explicit_bulk(self):
        device = pmos("M3", "net1", "net1", "vdd", bulk="vdd", width=5e-6, fingers=4)
        assert device.terminals["b"] == "vdd"
        assert device.get_parameter("fingers") == 4

    def test_gan_hemt_three_terminals(self):
        device = gan_hemt("D1", "drn", "gt", "vgnd")
        assert set(device.terminals) == {"d", "g", "s"}

    def test_passives_and_sources(self):
        assert resistor("R1", "a", "b", 100.0).get_parameter("value") == 100.0
        assert capacitor("C1", "a", "b", 1e-12).dtype is DeviceType.CAPACITOR
        assert inductor("L1", "a", "b", 1e-9).dtype is DeviceType.INDUCTOR
        assert supply("VP", "vdd", 1.2).get_parameter("voltage") == 1.2
        assert ground("VGND").get_parameter("voltage") == 0.0
        assert bias("VB", "vb", 0.6).dtype is DeviceType.BIAS
        assert current_source("I1", "a", "b", 1e-6).get_parameter("current") == 1e-6

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Device(name="", dtype=DeviceType.RESISTOR, terminals={"p": "a"})

    def test_empty_terminals_rejected(self):
        with pytest.raises(ValueError):
            Device(name="R1", dtype=DeviceType.RESISTOR, terminals={})


class TestDeviceBehaviour:
    def test_parameter_get_set(self):
        device = nmos("M1", "d", "g", "s", width=2e-6)
        device.set_parameter("width", 3e-6)
        assert device.get_parameter("width") == pytest.approx(3e-6)

    def test_unknown_parameter_raises(self):
        device = nmos("M1", "d", "g", "s")
        with pytest.raises(KeyError):
            device.get_parameter("length")
        with pytest.raises(KeyError):
            device.set_parameter("length", 1.0)

    def test_nets_deduplicated(self):
        device = nmos("M1", "out", "in", "vgnd")
        assert device.nets == ("out", "in", "vgnd")
        assert device.connects_to("out")
        assert not device.connects_to("vdd")

    def test_copy_is_independent(self):
        device = nmos("M1", "d", "g", "s", width=1e-6)
        clone = device.copy()
        clone.set_parameter("width", 9e-6)
        assert device.get_parameter("width") == pytest.approx(1e-6)
