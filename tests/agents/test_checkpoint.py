"""On-disk policy checkpoints: round trips, fresh-process identity, errors."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.agents.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.agents.deployment import deploy_policy
from repro.agents.ppo import PPOConfig, PPOTrainer

POLICY_IDS = sorted(repro.list_policies())

#: Run in a *fresh interpreter*: load a checkpoint, deploy toward a fixed
#: target, print the per-step parameter trajectory as JSON.
_FRESH_PROCESS_DEPLOY = """
import json, sys
import numpy as np
import repro
from repro.agents.deployment import deploy_policy

checkpoint = repro.load_checkpoint(sys.argv[1])
env = repro.make_env(checkpoint.env_id, seed=0, max_steps=8)
target = json.loads(sys.argv[2])
result = deploy_policy(env, checkpoint.policy, target)
print(json.dumps({
    "steps": result.steps,
    "success": bool(result.success),
    "parameters": [record.parameters.tolist() for record in result.trajectory.records],
    "final_specs": result.final_specs,
}))
"""


@pytest.fixture
def env():
    return repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)


@pytest.fixture
def target(env):
    return env.benchmark.spec_space.sample(np.random.default_rng(7))


class TestRoundTrip:
    @pytest.mark.parametrize("policy_id", POLICY_IDS)
    def test_in_process_round_trip_is_bitwise(self, tmp_path, env, target, policy_id):
        policy = repro.make_policy(policy_id, env, np.random.default_rng(3))
        path = save_checkpoint(
            tmp_path / f"{policy_id}.npz", policy,
            policy_id=policy_id, env_id="opamp-p2s-v0",
        )
        restored = load_checkpoint(path)
        assert restored.policy_id == policy_id
        assert restored.env_id == "opamp-p2s-v0"
        for (name_a, param_a), (name_b, param_b) in zip(
            policy.named_parameters(), restored.policy.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)
        original = deploy_policy(env, policy, target)
        reloaded = deploy_policy(env, restored.policy, target)
        assert original.steps == reloaded.steps
        for record_a, record_b in zip(
            original.trajectory.records, reloaded.trajectory.records
        ):
            np.testing.assert_array_equal(record_a.parameters, record_b.parameters)

    @pytest.mark.parametrize("policy_id", POLICY_IDS)
    def test_fresh_process_round_trip_is_bitwise(self, tmp_path, env, target, policy_id):
        """Save -> load in a *fresh interpreter* reproduces the trajectory."""
        policy = repro.make_policy(policy_id, env, np.random.default_rng(3))
        path = save_checkpoint(
            tmp_path / f"{policy_id}.npz", policy,
            policy_id=policy_id, env_id="opamp-p2s-v0",
        )
        reference = deploy_policy(env, policy, target)

        process_env = dict(os.environ)
        repo_src = str(Path(repro.__file__).resolve().parents[1])
        process_env["PYTHONPATH"] = repo_src + os.pathsep + process_env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", _FRESH_PROCESS_DEPLOY, str(path), json.dumps(target)],
            capture_output=True, text=True, env=process_env, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        observed = json.loads(completed.stdout)
        assert observed["steps"] == reference.steps
        assert observed["success"] == reference.success
        expected = [record.parameters.tolist() for record in reference.trajectory.records]
        assert observed["parameters"] == expected
        assert observed["final_specs"] == reference.final_specs

    def test_identical_policies_write_identical_bytes(self, tmp_path, env):
        policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        a = save_checkpoint(tmp_path / "a.npz", policy, env_id="opamp-p2s-v0")
        b = save_checkpoint(tmp_path / "b.npz", policy, env_id="opamp-p2s-v0")
        assert a.read_bytes() == b.read_bytes()

    def test_run_config_rides_along(self, tmp_path, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        config = repro.RunConfig(
            env={"id": "opamp-p2s-v0", "params": {"seed": 0}},
            optimizer="ppo", budget=16, seed=4,
        )
        path = save_checkpoint(tmp_path / "c.npz", policy, run_config=config)
        restored = load_checkpoint(path)
        assert restored.run_config() == config

    def test_load_into_matching_policy_instance(self, tmp_path, env):
        policy = repro.make_policy("gcn_fc", env, np.random.default_rng(5))
        path = save_checkpoint(tmp_path / "d.npz", policy)
        other = repro.make_policy("gcn_fc", env, np.random.default_rng(99))
        load_checkpoint(path, policy=other)
        for (_, param_a), (_, param_b) in zip(
            policy.named_parameters(), other.named_parameters()
        ):
            np.testing.assert_array_equal(param_a.data, param_b.data)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="not a readable checkpoint"):
            load_checkpoint(path)

    def test_truncated_archive(self, tmp_path, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        path = save_checkpoint(tmp_path / "t.npz", policy)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        with open(path, "wb") as handle:
            np.savez(handle, weights=np.zeros(3))
        with pytest.raises(CheckpointError, match="not a repro policy checkpoint"):
            load_checkpoint(path)

    def test_mismatched_policy_architecture(self, tmp_path, env):
        gat = repro.make_policy("gat_fc", env, np.random.default_rng(0))
        path = save_checkpoint(tmp_path / "gat.npz", gat, policy_id="gat_fc")
        gcn = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        with pytest.raises(CheckpointError, match="gat_fc") as excinfo:
            load_checkpoint(path, policy=gcn)
        assert "graph_kind" in str(excinfo.value)

    def test_mismatched_circuit_size(self, tmp_path, env):
        policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        path = save_checkpoint(tmp_path / "opamp.npz", policy)
        lna_env = repro.make_env("common_source_lna-p2s-v0", seed=0)
        lna_policy = repro.make_policy("gcn_fc", lna_env, np.random.default_rng(0))
        with pytest.raises(CheckpointError, match="differing config fields"):
            load_checkpoint(path, policy=lna_policy)

    def test_unsupported_version(self, tmp_path, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        path = save_checkpoint(tmp_path / "v.npz", policy)
        archive = dict(np.load(path, allow_pickle=False))
        metadata = json.loads(str(archive["__checkpoint__"][()]))
        metadata["version"] = 999
        archive["__checkpoint__"] = np.array(json.dumps(metadata))
        with open(path, "wb") as handle:
            np.savez(handle, **archive)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_version_skew_warns(self, tmp_path, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        path = save_checkpoint(tmp_path / "w.npz", policy)
        archive = dict(np.load(path, allow_pickle=False))
        metadata = json.loads(str(archive["__checkpoint__"][()]))
        metadata["repro_version"] = "0.0.1"
        archive["__checkpoint__"] = np.array(json.dumps(metadata))
        with open(path, "wb") as handle:
            np.savez(handle, **archive)
        with pytest.warns(UserWarning, match="0.0.1"):
            load_checkpoint(path)


class TestTrainerEmission:
    def test_periodic_and_final_checkpoints(self, tmp_path, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        trainer = PPOTrainer(
            env, policy, config=PPOConfig(minibatch_size=16), seed=0,
            method_name="baseline_a", checkpoint_dir=tmp_path / "ckpt",
            checkpoint_interval=2, env_id="opamp-p2s-v0",
        )
        trainer.train(total_episodes=12, episodes_per_update=4, eval_interval=None)
        names = sorted(path.name for path in (tmp_path / "ckpt").glob("*.npz"))
        assert names == ["latest.npz", "update_00002.npz"]
        latest = load_checkpoint(tmp_path / "ckpt" / "latest.npz")
        assert latest.policy_id == "baseline_a"
        assert latest.env_id == "opamp-p2s-v0"
        assert latest.extra["episodes_seen"] == 12
        # latest.npz always matches the policy the trainer ended with.
        for (_, param_a), (_, param_b) in zip(
            policy.named_parameters(), latest.policy.named_parameters()
        ):
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_interrupted_training_still_leaves_latest(self, tmp_path, env):
        """The finally-block emission covers mid-training exceptions."""
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        trainer = PPOTrainer(
            env, policy, config=PPOConfig(minibatch_size=16), seed=0,
            method_name="baseline_a", checkpoint_dir=tmp_path / "ckpt",
            checkpoint_interval=50, env_id="opamp-p2s-v0",
        )

        class Boom(RuntimeError):
            pass

        original_update = trainer.update
        calls = []

        def exploding_update(buffer):
            calls.append(None)
            if len(calls) == 2:
                raise Boom()
            return original_update(buffer)

        trainer.update = exploding_update
        with pytest.raises(Boom):
            trainer.train(total_episodes=20, episodes_per_update=4, eval_interval=None)
        latest = load_checkpoint(tmp_path / "ckpt" / "latest.npz")
        assert latest.extra["update"] == 1  # the newest completed update

    def test_deployment_example_rejects_mismatched_checkpoint(self, tmp_path):
        from repro.experiments.evaluation import deployment_example

        lna_env = repro.make_env("common_source_lna-p2s-v0", seed=0)
        lna_policy = repro.make_policy("gcn_fc", lna_env, np.random.default_rng(0))
        path = save_checkpoint(
            tmp_path / "lna.npz", lna_policy,
            policy_id="gcn_fc", env_id="common_source_lna-p2s-v0",
        )
        with pytest.raises(CheckpointError, match="two_stage_opamp"):
            deployment_example("two_stage_opamp", checkpoint=str(path))

    def test_save_checkpoint_needs_dir_or_path(self, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        trainer = PPOTrainer(env, policy, seed=0)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            trainer.save_checkpoint()

    def test_rejects_bad_interval(self, env):
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        with pytest.raises(ValueError, match="checkpoint_interval"):
            PPOTrainer(env, policy, checkpoint_interval=0)
