"""Train once, serve many: checkpoints + the micro-batched deployment service.

Walks the full ``repro.serve`` workflow end to end:

1. train a GCN-FC policy briefly on the two-stage op-amp, with the PPO
   trainer emitting on-disk checkpoints as it goes;
2. reload the final checkpoint (as a fresh process would);
3. stand up a :class:`repro.serve.DeploymentService` around it and serve a
   batch of sampled specification targets, micro-batched through the shared
   simulation cache;
4. compare grad-free vs grad-recording deployment wall-clock for one target.

Run with:  python examples/serve_policy.py [--episodes N] [--targets K]
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    DeploymentService,
    load_checkpoint,
    make_env,
    make_policy,
    seed_everything,
)
from repro.agents import PPOTrainer, deploy_policy
from repro.experiments import rl_hyperparameters


def main(episodes: int, targets: int, batch_size: int, seed: int = 0) -> None:
    rng = seed_everything(seed)
    env = make_env("opamp-p2s-v0", seed=seed)
    policy = make_policy("gcn_fc", env, rng)
    hyper = rl_hyperparameters("two_stage_opamp")

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        checkpoint_dir = Path(tmp) / "checkpoints"
        print(f"Training GCN-FC for {episodes} episodes, checkpointing to "
              f"{checkpoint_dir.name}/ every 2 updates ...")
        trainer = PPOTrainer(
            env, policy, config=hyper["ppo"], seed=seed, method_name="gcn_fc",
            checkpoint_dir=checkpoint_dir, checkpoint_interval=2,
            env_id="opamp-p2s-v0",
        )
        trainer.train(total_episodes=episodes, episodes_per_update=10)
        emitted = sorted(path.name for path in checkpoint_dir.glob("*.npz"))
        print(f"  emitted checkpoints: {', '.join(emitted)}")

        print("\nReloading latest.npz (what a serving process would do) ...")
        checkpoint = load_checkpoint(checkpoint_dir / "latest.npz")
        print(f"  policy id : {checkpoint.policy_id}")
        print(f"  env id    : {checkpoint.env_id}")
        print(f"  trained   : {checkpoint.extra.get('episodes_seen')} episodes "
              f"({checkpoint.extra.get('update')} updates)")

        print(f"\nServing {targets} sampled spec targets "
              f"(micro-batches of {batch_size}) ...")
        service = DeploymentService.from_checkpoint(
            checkpoint_dir / "latest.npz", batch_size=batch_size
        )
        spec_rng = np.random.default_rng(seed + 123)
        requests = env.benchmark.spec_space.sample_batch(spec_rng, targets)
        responses = service.serve(requests)
        for response in responses:
            status = "MET " if response.success else "miss"
            print(f"  [{response.index}] {status} in {response.steps:>3d} steps")
        stats = service.stats
        print(f"  accuracy {stats.accuracy:.0%}, mean steps "
              f"{stats.design_steps / stats.episodes:.1f}, "
              f"{stats.episodes_per_second:.1f} episodes/s, "
              f"cache hit rate {service.cache_stats().hit_rate:.0%}")

        print("\nGrad-recording vs grad-free deployment (one target):")
        target = dict(requests[0])
        start = time.perf_counter()
        deploy_policy(env, checkpoint.policy, target, inference=False)
        grad_s = time.perf_counter() - start
        start = time.perf_counter()
        deploy_policy(env, checkpoint.policy, target)
        inference_s = time.perf_counter() - start
        print(f"  grad-recording: {grad_s * 1e3:7.1f} ms")
        print(f"  inference mode: {inference_s * 1e3:7.1f} ms "
              f"({grad_s / inference_s:.1f}x faster, identical episode)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=40,
                        help="training episodes before serving (default 40)")
    parser.add_argument("--targets", type=int, default=8,
                        help="number of spec targets to serve (default 8)")
    parser.add_argument("--batch-size", type=int, default=4,
                        help="micro-batch width of the deployment service")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    args = parser.parse_args()
    main(args.episodes, args.targets, args.batch_size, seed=args.seed)
