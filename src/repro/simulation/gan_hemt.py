"""Behavioural GaN HEMT model used by the RF power-amplifier simulators.

The RF PA of Fig. 4 is built from 150 nm GaN high-electron-mobility
transistors.  For harmonic-balance-style waveform analysis we only need the
static transfer characteristic ``i_D(v_GS)`` and the output limit set by the
knee voltage, so the model is a smooth saturating transconductance curve:

* below pinch-off (``v_GS <= V_th``) the device is off,
* above pinch-off the current rises with slope ``gm`` and saturates at
  ``I_max`` (both proportional to total gate width),
* the drain swing available to the load is ``V_DD − V_knee``.

This captures exactly the nonlinearities (clipping at zero and at ``I_max``)
that determine output power and efficiency of a class-AB PA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.technology import GanTechnology


@dataclass(frozen=True)
class GanOperatingPoint:
    """Quiescent bias summary of one GaN device."""

    quiescent_current: float
    max_current: float
    transconductance: float
    conduction_ratio: float


class GanHemtModel:
    """Saturating-transconductance model of a GaN HEMT.

    Parameters
    ----------
    technology:
        GaN process constants.
    width, fingers:
        Geometry; total gate width is ``width * fingers``.
    """

    def __init__(self, technology: GanTechnology, width: float, fingers: float) -> None:
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        self.technology = technology
        self.width = float(width)
        self.fingers = float(fingers)
        self.total_width = self.width * self.fingers
        self.imax = technology.imax(width, fingers)
        self.gm = technology.gm(width, fingers)
        self.vth = technology.vth
        self.knee_voltage = technology.knee_voltage

    # ------------------------------------------------------------------
    # Static characteristic
    # ------------------------------------------------------------------
    def drain_current(self, vgs: float | np.ndarray) -> np.ndarray:
        """Drain current for a gate voltage (scalar or waveform array).

        The transfer curve is piecewise linear with hard clipping at zero and
        at ``I_max`` — the classic idealized HEMT characteristic used in PA
        design texts for conduction-angle analysis.
        """
        vgs = np.asarray(vgs, dtype=np.float64)
        linear = self.gm * (vgs - self.vth)
        return np.clip(linear, 0.0, self.imax)

    def saturated_gain_voltage(self) -> float:
        """Gate overdrive at which the device reaches ``I_max``."""
        return self.imax / self.gm

    def operating_point(self, gate_bias: float) -> GanOperatingPoint:
        """Quiescent current and conduction ratio at a DC gate bias."""
        quiescent = float(self.drain_current(gate_bias))
        return GanOperatingPoint(
            quiescent_current=quiescent,
            max_current=self.imax,
            transconductance=self.gm,
            conduction_ratio=quiescent / self.imax if self.imax > 0 else 0.0,
        )

    # ------------------------------------------------------------------
    # Waveform helpers for the harmonic-balance-like simulator
    # ------------------------------------------------------------------
    def current_waveform(
        self, gate_bias: float, drive_amplitude: float, num_points: int = 256
    ) -> np.ndarray:
        """Drain-current waveform over one RF period.

        Parameters
        ----------
        gate_bias:
            DC gate voltage (V).
        drive_amplitude:
            Amplitude of the sinusoidal gate drive (V).
        num_points:
            Number of uniformly spaced phase samples over ``[0, 2π)``.
        """
        if num_points < 8:
            raise ValueError("waveform needs at least 8 phase points")
        theta = np.linspace(0.0, 2.0 * np.pi, num_points, endpoint=False)
        vgs = gate_bias + drive_amplitude * np.cos(theta)
        return self.drain_current(vgs)

    @staticmethod
    def fourier_components(waveform: np.ndarray, num_harmonics: int = 5) -> np.ndarray:
        """DC plus cosine-harmonic amplitudes of a periodic waveform.

        Returns ``[I_dc, I_1, ..., I_H]`` where ``I_k`` is the amplitude of
        the ``cos(kθ)`` component; this is the harmonic-balance current
        spectrum used to compute output power.
        """
        waveform = np.asarray(waveform, dtype=np.float64)
        num_points = waveform.size
        theta = np.linspace(0.0, 2.0 * np.pi, num_points, endpoint=False)
        components = np.empty(num_harmonics + 1)
        components[0] = waveform.mean()
        for harmonic in range(1, num_harmonics + 1):
            components[harmonic] = 2.0 * np.mean(waveform * np.cos(harmonic * theta))
        return components
