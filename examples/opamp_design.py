"""Op-amp sizing with the domain knowledge-infused RL agent (Fig. 3 / Fig. 5).

Trains the GCN-FC policy on the two-stage op-amp for a configurable number of
episodes, then deploys it toward the Fig. 5 target group (gain 350, bandwidth
18 MHz, phase margin 55 deg, power 4 mW) and prints the per-step trajectory of
every specification — the data behind Fig. 5's left half.

Run with:  python examples/opamp_design.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import make_env, make_policy, seed_everything
from repro.agents import PPOTrainer, deploy_policy, evaluate_deployment
from repro.experiments import FIG5_OPAMP_TARGET, rl_hyperparameters


def main(episodes: int, eval_targets: int, seed: int = 0) -> None:
    rng = seed_everything(seed)
    env = make_env("opamp-p2s-v0", seed=seed)
    policy = make_policy("gcn_fc", env, rng)
    hyper = rl_hyperparameters("two_stage_opamp")

    print(f"Training GCN-FC policy for {episodes} episodes "
          f"(paper scale: 35,000 episodes) ...")
    trainer = PPOTrainer(env, policy, config=hyper["ppo"], seed=seed, method_name="gcn_fc")
    history = trainer.train(total_episodes=episodes, episodes_per_update=10)
    print(f"  final mean episode reward : {history.final_mean_reward:8.2f}")
    print(f"  final mean episode length : {history.final_mean_length:8.1f}")

    print(f"\nEvaluating deployment accuracy on {eval_targets} sampled spec groups ...")
    evaluation = evaluate_deployment(env, policy, num_targets=eval_targets, seed=seed + 123)
    print(f"  design accuracy  : {evaluation.accuracy:.0%}")
    print(f"  mean design steps: {evaluation.mean_steps:.1f}")

    print("\nDeployment example toward the Fig. 5 target group:")
    print(f"  targets: {FIG5_OPAMP_TARGET}")
    result = deploy_policy(env, policy, FIG5_OPAMP_TARGET, rng=np.random.default_rng(seed + 1))
    header = f"  {'step':>4s} {'gain':>9s} {'bandwidth':>12s} {'PM (deg)':>9s} {'power (W)':>11s}"
    print(header)
    for record in result.trajectory.records:
        print(f"  {record.step:>4d} {record.specs['gain']:>9.1f} "
              f"{record.specs['bandwidth']:>12.3e} {record.specs['phase_margin']:>9.1f} "
              f"{record.specs['power']:>11.3e}")
    outcome = "SUCCESS" if result.success else "not all specs met within the step budget"
    print(f"  -> {outcome} after {result.steps} steps")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=200,
                        help="training episodes (default 200; paper uses 35000)")
    parser.add_argument("--eval-targets", type=int, default=20,
                        help="number of spec groups for the accuracy evaluation")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    args = parser.parse_args()
    main(args.episodes, args.eval_targets, args.seed)
