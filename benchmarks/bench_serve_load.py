"""``repro.serve.gateway`` — throughput under a replayed request load.

The serving claim of the gateway redesign, measured directly: the gateway
must beat the serial one-request-at-a-time baseline — ``deploy_policy``
against one environment, the pre-gateway way to answer requests as they
arrive — by ≥3× requests/s on a duplicate-heavy request stream.

The workload replays ``NUM_REQUESTS`` requests sampled (with repetition)
from a pool of ``UNIQUE_SPECS`` unique specification groups — the serving
regime the paper's train-once/deploy-many story implies: many clients
asking for recurring specification targets.  The gateway runs with
deadline-based dynamic batching (the unique pool executes as full
lock-step batches) and ``cache_responses=True`` (deployment is
deterministic, so repeated identical requests replay their memoized
response instead of re-running the episode); the serial baseline re-deploys
every request from scratch, which is exactly what the gateway exists to
avoid.  A parity check asserts the replayed responses are identical to
fresh serial deployment before any throughput is compared.

At the default per-PR scale the replay is a few thousand requests; under
``REPRO_BENCH_SCALE=bench``/``paper`` (the nightly suite) it is the full
10^5-request replay.  The serial baseline is measured on a subset and
normalized to requests/s.

Recorded in the benchmark JSON via ``extra_info``: gateway and serial
requests/s, the speedup, and the gateway's p50/p99 request latency.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.agents import deploy_policy
from repro.serve import DeploymentService, Gateway, ServeRequest

#: Unique specification groups in the pool; requests replay these.
UNIQUE_SPECS = 64

#: Episode budget per request (short: throughput ratios are per-step).
MAX_STEPS = 6

#: Lock-step width of the gateway's service.
BATCH_SIZE = 16

#: Serial-baseline subset (normalized to requests/s, then compared).
SERIAL_SAMPLE = 64

#: How many requests resolve in flight at once (bounds future/result memory).
CHUNK = 2000

#: The redesign's acceptance floor: gateway serving ≥3× serial.
MIN_SPEEDUP = 3.0


def _num_requests(scale) -> int:
    if scale.name in ("bench", "paper"):
        return 100_000
    return 4000


def _checkpointed_service(tmp_path, batch_size: int) -> DeploymentService:
    env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
    policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
    checkpoint = repro.save_checkpoint(
        tmp_path / "policy.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
    )
    return DeploymentService.from_checkpoint(checkpoint, batch_size=batch_size)


def _request_stream(num_requests: int):
    env = repro.make_env("opamp-p2s-v0", seed=0)
    pool = [
        dict(t) for t in env.benchmark.spec_space.sample_batch(
            np.random.default_rng(1), UNIQUE_SPECS
        )
    ]
    order = np.random.default_rng(2).integers(0, UNIQUE_SPECS, size=num_requests)
    return pool, [int(i) for i in order]


def test_gateway_load_throughput_vs_serial(benchmark, scale, tmp_path):
    num_requests = _num_requests(scale)
    pool, order = _request_stream(num_requests)

    gateway_service = _checkpointed_service(tmp_path, BATCH_SIZE)
    serial_env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=MAX_STEPS)
    serial_policy = gateway_service._policies["opamp-p2s-v0"]

    def run():
        outcomes = []
        with Gateway(
            gateway_service, num_workers=2, max_batch_delay_ms=50.0,
            cache_responses=True,
        ) as gw:
            # Warm phase: the unique-spec pool arrives first and executes as
            # full lock-step batches — a long-lived service is warm by the
            # time replay traffic dominates.
            for response in gw.serve(
                [ServeRequest(target_specs=dict(t), max_steps=MAX_STEPS)
                 for t in pool],
                timeout=600,
            ):
                assert response.ok
            # Replay phase (timed): the sampled request stream.
            start = time.perf_counter()
            for begin in range(0, num_requests, CHUNK):
                futures = [
                    gw.submit(ServeRequest(target_specs=dict(pool[i]),
                                           max_steps=MAX_STEPS))
                    for i in order[begin:begin + CHUNK]
                ]
                for future in futures:
                    response = future.result(timeout=600)
                    assert response.ok
                    outcomes.append((response.steps, response.success,
                                     response.final_specs))
            gateway_s = time.perf_counter() - start
            snapshot = gw.stats.snapshot()

        start = time.perf_counter()
        serial_outcomes = []
        for i in order[:SERIAL_SAMPLE]:
            result = deploy_policy(serial_env, serial_policy, pool[i])
            serial_outcomes.append((result.steps, result.success, result.final_specs))
        serial_s = time.perf_counter() - start
        return outcomes, serial_outcomes, gateway_s, serial_s, snapshot

    outcomes, serial_outcomes, gateway_s, serial_s, snapshot = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Replayed results are identical to serial one-at-a-time deployment.
    assert outcomes[:SERIAL_SAMPLE] == serial_outcomes
    assert len(outcomes) == num_requests
    # Only the unique pool ran as episodes; the replay hit the response cache.
    assert snapshot.episodes == UNIQUE_SPECS
    assert snapshot.cache_hits == num_requests
    assert snapshot.max_coalesce == BATCH_SIZE  # batching actually engaged

    gateway_rps = num_requests / gateway_s
    serial_rps = SERIAL_SAMPLE / serial_s
    speedup = gateway_rps / serial_rps
    benchmark.extra_info.update(
        num_requests=num_requests,
        unique_specs=UNIQUE_SPECS,
        batch_size=BATCH_SIZE,
        gateway_requests_per_s=round(gateway_rps, 1),
        serial_requests_per_s=round(serial_rps, 1),
        speedup_vs_serial=round(speedup, 2),
        latency_p50_ms=round(snapshot.latency_p50_ms, 3),
        latency_p99_ms=round(snapshot.latency_p99_ms, 3),
        mean_coalesce=round(snapshot.mean_coalesce, 2),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"gateway served {gateway_rps:.0f} req/s vs {serial_rps:.0f} req/s serial "
        f"({speedup:.2f}x) — below the {MIN_SPEEDUP:.0f}x floor"
    )
