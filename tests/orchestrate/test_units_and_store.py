"""WorkUnit content addressing and the ArtifactStore."""

from __future__ import annotations

import json

import pytest

from repro.orchestrate import ArtifactStore, UnitRecord, WorkUnit


def _unit(tag="a", runner="repro.orchestrate.testing:echo_unit", **execution):
    return WorkUnit(
        unit_id=f"unit-{tag}", runner=runner, payload={"tag": tag}, execution=execution
    )


def _record(unit, status="completed", **kwargs):
    return UnitRecord(
        unit_id=unit.unit_id,
        key=unit.key(),
        runner=unit.runner,
        payload=dict(unit.payload),
        status=status,
        **kwargs,
    )


class TestWorkUnitKey:
    def test_key_is_stable_and_payload_sensitive(self):
        assert _unit("a").key() == _unit("a").key()
        assert _unit("a").key() != _unit("b").key()

    def test_key_ignores_execution_details(self):
        # Cache directories etc. do not change what the unit computes.
        assert _unit("a").key() == _unit("a", disk_cache={"dir": "/tmp/x"}).key()

    def test_key_depends_on_runner(self):
        other = _unit("a", runner="repro.orchestrate.testing:marker_unit")
        assert _unit("a").key() != other.key()

    def test_key_insensitive_to_dict_ordering(self):
        first = WorkUnit(unit_id="u", payload={"x": 1, "y": 2})
        second = WorkUnit(unit_id="u", payload={"y": 2, "x": 1})
        assert first.key() == second.key()

    def test_round_trip(self):
        unit = _unit("a", disk_cache={"dir": "d"})
        clone = WorkUnit.from_dict(unit.to_dict())
        assert clone == unit

    def test_rejects_bad_runner_path(self):
        with pytest.raises(ValueError, match="package.module:function"):
            WorkUnit(unit_id="u", runner="no-colon-here")


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        unit = _unit("a")
        record = _record(unit, result={"echo": "a"}, wall_time_s=0.5)
        store.put(record)
        loaded = store.get(unit.key())
        assert loaded == record
        assert store.has_completed(unit.key())

    def test_missing_and_corrupt_entries_are_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        unit = _unit("a")
        assert store.get(unit.key()) is None
        path = store.unit_path(unit.key())
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(unit.key()) is None
        assert not store.has_completed(unit.key())

    def test_failed_records_never_satisfy_resume(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        unit = _unit("a")
        store.put(_record(unit, status="failed", error="boom"))
        assert store.get(unit.key()) is not None
        assert not store.has_completed(unit.key())

    def test_manifest_tracks_and_rebuilds(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        units = [_unit(tag) for tag in "abc"]
        for unit in units:
            store.put(_record(unit))
        manifest = store.load_manifest()
        assert set(manifest) == {unit.key() for unit in units}
        # Deleting the manifest loses nothing: the unit files are the truth.
        (store.root / "manifest.json").unlink()
        rebuilt = store.rebuild_manifest()
        assert rebuilt == manifest

    def test_records_iterates_everything(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for tag in "abcd":
            store.put(_record(_unit(tag)))
        assert len(store) == 4
        assert {record.unit_id for record in store.records()} == {
            "unit-a", "unit-b", "unit-c", "unit-d"
        }

    def test_sweep_manifest_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        manifest = {"name": "demo", "units": {"u": {"key": "k", "status": "completed"}}}
        store.put_sweep("deadbeef", manifest)
        assert store.get_sweep("deadbeef") == manifest
        assert store.get_sweep("feedface") is None
        # The file itself is valid JSON on disk.
        with open(store.sweep_path("deadbeef"), encoding="utf-8") as handle:
            assert json.load(handle) == manifest
