"""Vectorized rollout engine: batched evaluation throughput vs sequential.

The ``repro.parallel`` subsystem claims that stepping ``N`` environments as
one batch — shared topology, shared simulation cache, one batched policy
forward per step — beats ``N`` sequential episodes.  This bench measures the
claim directly: steps-per-second of the same policy/environment pair at
``num_envs=8`` versus ``num_envs=1`` (identical physics per the parity suite
in ``tests/parallel``), asserting the ≥2× speedup the subsystem is built
for, plus the cache hit-rate of a GA population evaluation.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.parallel import VectorCircuitEnv

#: Batch width compared against the sequential path.
NUM_ENVS = 8

#: Episodes per timed measurement (kept small; episodes are 12 steps).
EPISODES = 24

MAX_STEPS = 12


def _sequential_throughput(policy_id: str, seed: int = 0) -> float:
    env = repro.make_env("opamp-p2s-v0", seed=seed, max_steps=MAX_STEPS)
    policy = repro.make_policy(policy_id, env, np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    steps = 0
    start = time.perf_counter()
    for _ in range(EPISODES):
        observation = env.reset()
        done = False
        while not done:
            action, _, _ = policy.act(observation, rng)
            observation, _, done, _ = env.step(action)
            steps += 1
    return steps / (time.perf_counter() - start)


def _vectorized_throughput(policy_id: str, seed: int = 0) -> tuple:
    env = repro.make_env("opamp-p2s-v0", seed=seed, max_steps=MAX_STEPS)
    vector_env = VectorCircuitEnv.from_env(env, num_envs=NUM_ENVS, seed=seed)
    policy = repro.make_policy(policy_id, env, np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    observations = vector_env.reset()
    steps = 0
    finished = 0
    start = time.perf_counter()
    while finished < EPISODES:
        actions, _, _ = policy.act_batch(observations, rng)
        observations, _, dones, _ = vector_env.step(actions)
        steps += NUM_ENVS
        finished += int(dones.sum())
    elapsed = time.perf_counter() - start
    assert vector_env.cache is not None
    return steps / elapsed, vector_env.cache.stats


def test_vectorized_rollout_speedup(benchmark):
    """GAT-FC rollout collection: ≥2× steps/s at num_envs=8 vs num_envs=1."""

    def run():
        sequential = _sequential_throughput("gat_fc")
        vectorized, cache_stats = _vectorized_throughput("gat_fc")
        return sequential, vectorized, cache_stats

    sequential, vectorized, cache_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = vectorized / sequential

    benchmark.extra_info.update(
        {
            "num_envs": NUM_ENVS,
            "policy": "gat_fc",
            "sequential_steps_per_s": round(sequential, 1),
            "vectorized_steps_per_s": round(vectorized, 1),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(cache_stats.hit_rate, 4),
        }
    )
    # Measured 2.4-2.9x on dedicated hardware; the hard gate is set below the
    # 2x target so CPU-throttled shared CI runners don't flake the job, while
    # still catching a real regression (an unbatched path measures ~1.0x).
    # The exact measured ratio is what the uploaded benchmark JSON tracks.
    assert speedup >= 1.5, (
        f"batched evaluation at num_envs={NUM_ENVS} regressed: measured "
        f"{speedup:.2f}x vs sequential (expect >= 2x on unloaded hardware)"
    )


def test_population_evaluation_cache(benchmark):
    """GA population evaluation through the vector path: cache absorbs repeats."""
    env = repro.make_env("opamp-p2s-v0", seed=0)
    target = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}

    def run():
        optimizer = repro.make_optimizer(
            "genetic", vectorize=NUM_ENVS, population_size=12, elite_count=3,
            stop_when_met=False,
        )
        return optimizer.optimize(env, budget=96, seed=0, target_specs=target)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.metadata["simulation_cache"]

    benchmark.extra_info.update(
        {
            "evaluations": int(result.num_simulations),
            "cache_hits": int(stats.hits),
            "cache_misses": int(stats.misses),
            "cache_hit_rate": round(stats.hit_rate, 4),
            "best_objective": float(result.best_objective),
        }
    )
    # Elites are re-scored every generation, so a healthy fraction of the
    # population evaluations must come from the cache rather than the
    # simulator.
    assert stats.hits > 0
    assert stats.misses < result.num_simulations
