"""Tests for specifications and the sampling space."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.specs import Objective, Specification, SpecificationSpace


@pytest.fixture
def gain_spec() -> Specification:
    return Specification("gain", 300.0, 500.0, Objective.MAXIMIZE)


@pytest.fixture
def power_spec() -> Specification:
    return Specification("power", 1e-4, 1e-2, Objective.MINIMIZE, log_uniform=True)


@pytest.fixture
def space(gain_spec, power_spec) -> SpecificationSpace:
    return SpecificationSpace([gain_spec, power_spec])


class TestSpecification:
    def test_validation(self):
        with pytest.raises(ValueError):
            Specification("x", 2.0, 1.0)
        with pytest.raises(ValueError):
            Specification("x", -1.0, 1.0, log_uniform=True)

    def test_sampling_ranges(self, gain_spec, power_spec, rng):
        for _ in range(100):
            assert 300.0 <= gain_spec.sample(rng) <= 500.0
            assert 1e-4 <= power_spec.sample(rng) <= 1e-2

    def test_is_met_maximize(self, gain_spec):
        assert gain_spec.is_met(measured=400.0, target=350.0)
        assert not gain_spec.is_met(measured=300.0, target=350.0)
        assert gain_spec.is_met(measured=349.0, target=350.0, rel_tol=0.01)

    def test_is_met_minimize(self, power_spec):
        assert power_spec.is_met(measured=1e-3, target=5e-3)
        assert not power_spec.is_met(measured=1e-2, target=5e-3)

    def test_normalized_error_signs(self, gain_spec, power_spec):
        # Meeting or exceeding the target gives exactly zero.
        assert gain_spec.normalized_error(400.0, 350.0) == 0.0
        assert power_spec.normalized_error(1e-3, 5e-3) == 0.0
        # Missing the target gives a negative value bounded by -1.
        assert -1.0 <= gain_spec.normalized_error(300.0, 500.0) < 0.0
        assert -1.0 <= power_spec.normalized_error(1e-2, 1e-4) < 0.0

    def test_normalized_error_matches_paper_formula(self, gain_spec):
        measured, target = 320.0, 400.0
        expected = (measured - target) / (measured + target)
        assert gain_spec.normalized_error(measured, target) == pytest.approx(expected)

    def test_normalize_value(self, gain_spec):
        assert gain_spec.normalize_value(300.0) == pytest.approx(0.0)
        assert gain_spec.normalize_value(500.0) == pytest.approx(1.0)
        assert gain_spec.normalize_value(400.0) == pytest.approx(0.5)


class TestSpecificationSpace:
    def test_basic(self, space):
        assert len(space) == 2
        assert space.names == ["gain", "power"]
        assert space["gain"].objective is Objective.MAXIMIZE
        assert space[1].name == "power"

    def test_unique_names(self, gain_spec):
        with pytest.raises(ValueError):
            SpecificationSpace([gain_spec, gain_spec])

    def test_sample_and_vector_roundtrip(self, space, rng):
        group = space.sample(rng)
        vector = space.to_vector(group)
        assert vector.shape == (2,)
        assert space.to_dict(vector) == pytest.approx(group)

    def test_to_vector_missing_key(self, space):
        with pytest.raises(KeyError):
            space.to_vector({"gain": 400.0})

    def test_sample_batch(self, space, rng):
        batch = space.sample_batch(rng, 10)
        assert len(batch) == 10
        assert all(set(group) == {"gain", "power"} for group in batch)

    def test_all_met_and_fraction(self, space):
        targets = {"gain": 400.0, "power": 1e-3}
        met = {"gain": 450.0, "power": 5e-4}
        half = {"gain": 450.0, "power": 5e-3}
        none = {"gain": 350.0, "power": 5e-3}
        assert space.all_met(met, targets)
        assert not space.all_met(half, targets)
        assert space.met_fraction(half, targets) == pytest.approx(0.5)
        assert space.met_fraction(none, targets) == pytest.approx(0.0)

    def test_normalized_errors_vector(self, space):
        targets = {"gain": 400.0, "power": 1e-3}
        errors = space.normalized_errors({"gain": 450.0, "power": 5e-3}, targets)
        assert errors[0] == 0.0
        assert errors[1] < 0.0

    def test_scale_targets_direction(self, space):
        targets = {"gain": 400.0, "power": 1e-3}
        harder = space.scale_targets(targets, 1.5)
        assert harder["gain"] == pytest.approx(600.0)
        assert harder["power"] == pytest.approx(1e-3 / 1.5)
        with pytest.raises(ValueError):
            space.scale_targets(targets, 0.0)


@settings(max_examples=60, deadline=None)
@given(
    measured=st.floats(min_value=1e-6, max_value=1e6),
    target=st.floats(min_value=1e-6, max_value=1e6),
    maximize=st.booleans(),
)
def test_property_normalized_error_bounded_and_consistent(measured, target, maximize):
    """The Eq. (1) error term is always in [-1, 0] and zero iff the spec is met."""
    spec = Specification(
        "s", 1e-6, 1e7, Objective.MAXIMIZE if maximize else Objective.MINIMIZE
    )
    error = spec.normalized_error(measured, target)
    assert -1.0 <= error <= 0.0
    if spec.is_met(measured, target):
        assert error == 0.0
    else:
        assert error < 0.0
