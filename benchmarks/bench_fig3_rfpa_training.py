"""Fig. 3, bottom row (GaN RF PA) — RL training curves with transfer learning.

RF PA agents train against the coarse (DC-estimate) simulator and are
evaluated by deployment on the fine (harmonic-balance-like) simulator, per
the paper's transfer-learning protocol.  Episode budget is 30 steps.
"""

from __future__ import annotations

import pytest

from repro.agents import evaluate_deployment
from repro import make_env
from repro.experiments import run_training_experiment
from repro.experiments.configs import RL_METHODS


@pytest.mark.parametrize("method", RL_METHODS)
def test_fig3_rfpa_training_curves(benchmark, scale, method):
    def run():
        result = run_training_experiment(
            "rf_pa", method, scale=scale, seed=0, track_accuracy=False
        )
        fine_env = make_env("rf_pa-fine-v0", seed=0)
        evaluation = evaluate_deployment(
            fine_env, result.policy, num_targets=scale.eval_specs, seed=999
        )
        return result, evaluation

    result, evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    history = result.history

    assert result.env.simulator.name == "rf_pa_coarse", "training must use the coarse simulator"
    lengths = history.series("mean_episode_length")
    assert 1.0 <= lengths[-1] <= 30.0
    assert 0.0 <= evaluation.accuracy <= 1.0

    benchmark.extra_info.update(
        {
            "method": method,
            "episodes": int(history.records[-1].episodes_seen),
            "final_mean_episode_reward": float(history.final_mean_reward),
            "final_mean_episode_length": float(history.final_mean_length),
            "fine_deployment_accuracy": float(evaluation.accuracy),
            "mean_deployment_steps": float(evaluation.mean_steps),
        }
    )
