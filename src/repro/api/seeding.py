"""One seeding entry point for scripts, benchmarks, and orchestrated runs.

Every script used to hand-roll its own seeding (a ``seed=0`` here, a
``default_rng(123)`` there), which made "the same config" mean subtly
different things depending on which entry point ran it.
:func:`seed_everything` is the single knob: it seeds every random source
this codebase can draw from and hands back the
:class:`numpy.random.Generator` scripts should thread through their own
sampling, so an orchestrated unit and a standalone invocation of the same
config are bit-identical.

This module is also the **only** place allowed to touch the *global* RNGs
(the ``random`` module and numpy's legacy ``np.random`` state) — the
REP-DET01 allowlist of ``python -m repro.run analyze``.  Nothing in this
library draws from the globals; they are seeded purely as a legacy-compat
courtesy to user code and third-party helpers, concentrated here in
:func:`seed_legacy_globals` so the whole global-state surface stays one
auditable location.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional

import numpy as np


def seed_legacy_globals(seed: int, _library_seeded: bool = False) -> None:
    """Legacy-compat shim: seed the *global* stdlib and numpy RNGs.

    The library itself never draws from these hidden global streams — every
    component consumes an explicit :class:`numpy.random.Generator` — so
    seeding only the globals does **not** make a run of this library
    reproducible.  Calling this directly therefore warns: it means global
    seeding is the only seeding performed, and the caller should migrate to
    :func:`seed_everything` (which seeds the globals *and* returns the
    generator the library actually uses, via the non-warning internal
    path).

    This function, and the module that holds it, are the single allowlisted
    exception to the analyzer's REP-DET01 no-global-RNG rule.
    """
    if not _library_seeded:
        warnings.warn(
            "seed_legacy_globals() only seeds the hidden global RNGs, which "
            "this library never draws from; use repro.seed_everything(seed) "
            "and thread its returned Generator instead",
            DeprecationWarning,
            stacklevel=2,
        )
    seed = int(seed)
    random.seed(seed)
    # The legacy global RandomState only accepts 32-bit seeds.
    np.random.seed(seed % (2**32))


def seed_everything(seed: Optional[int] = 0) -> np.random.Generator:
    """Seed every random source and return a fresh :class:`Generator`.

    Seeds, in order:

    * :mod:`random` — the Python stdlib generator;
    * ``np.random`` — numpy's *legacy* global state (nothing in this library
      draws from it, but user code and third-party helpers might); both via
      the :func:`seed_legacy_globals` compat shim;
    * the returned ``np.random.default_rng(seed)`` — the generator the
      library's own components consume.

    ``seed=None`` leaves entropy-based seeding in place for all three (a
    deliberately irreproducible run).  Calling with the same seed always
    reproduces the same streams, so two scripts that both start with
    ``rng = repro.seed_everything(7)`` sample identically.
    """
    if seed is not None:
        seed = int(seed)
        seed_legacy_globals(seed, _library_seeded=True)
    return np.random.default_rng(seed)
