"""The project-specific rule catalog for the invariant lint engine.

Each rule is a small visitor over the shared :class:`~repro.analysis.engine.
ModuleContext` with an ID, a one-paragraph rationale (rendered by
``analyze --rules`` and mirrored in ``docs/analysis-rules.md``), and a fix
hint.  The IDs are stable — suppressions and baselines reference them — so
rules are retired, never renumbered.

Determinism-critical code (cache keys, simulation, checkpoint bytes) is
identified by module path: everything under ``simulation/``, ``parallel/``,
``surrogate/``, ``circuits/``, ``graph/``, ``nn/``, ``env/``, plus the
checkpoint and artifact-store modules.  Serving/metrics code is *not* in
that set: wall-clock reads are legitimate there, and ``monotonic``/
``perf_counter`` are legitimate everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, ModuleContext, _self_attr

#: Module-path fragments marking determinism-critical code (cache keys,
#: simulation results, checkpoint/artifact bytes must be pure functions of
#: their inputs — never of when they ran).
DETERMINISM_CRITICAL = (
    "/simulation/",
    "/parallel/",
    "/surrogate/",
    "/circuits/",
    "/graph/",
    "/nn/",
    "/env/",
    "checkpoint",
    "/orchestrate/units",
    "/orchestrate/store",
    "cache",
)

#: The one module allowed to touch the global RNGs (the legacy-compat shim).
SEEDING_ALLOWLIST = ("api/seeding.py",)

#: numpy.random module-level functions that read or mutate the hidden
#: global RandomState (the legacy API `default_rng` replaced).
NUMPY_GLOBAL_RNG = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "random_integers", "uniform", "normal", "standard_normal",
    "choice", "shuffle", "permutation", "bytes", "beta", "binomial",
    "chisquare", "dirichlet", "exponential", "f", "gamma", "geometric",
    "get_state", "set_state", "gumbel", "hypergeometric", "laplace",
    "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "pareto", "poisson", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_t", "triangular", "vonmises", "wald", "weibull", "zipf",
}

#: stdlib ``random`` module-level functions (all drive one hidden global
#: ``Random`` instance; ``random.Random(seed)`` instances are fine).
STDLIB_GLOBAL_RNG = {
    "seed", "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "gammavariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "getstate", "setstate", "randbytes", "binomialvariate",
}

#: Wall-clock reads that leak "when it ran" into whatever consumes them.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Deprecation-shim modules internal code must not import (external callers
#: get the shims; src/ gets the real entry points).
SHIM_MODULES = ("repro.serve.specs",)


def is_determinism_critical(path: str) -> bool:
    posix = "/" + path.replace("\\", "/")
    return any(fragment in posix for fragment in DETERMINISM_CRITICAL)


def is_seeding_allowlisted(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(posix.endswith(entry) for entry in SEEDING_ALLOWLIST)


class Rule:
    """Base: one invariant, one stable ID, one fix hint."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    hint: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=self.hint,
            source_line=ctx.line_text(line),
        )


class GlobalRngRule(Rule):
    """REP-DET01 — no global-RNG calls outside the seeding shim."""

    rule_id = "REP-DET01"
    title = "global RNG call outside the allowlisted seeding shim"
    rationale = (
        "Bitwise reproducibility rests on every random draw flowing from an "
        "explicit, threadable np.random.Generator (default_rng/SeedSequence). "
        "Module-level np.random.* and random.* calls mutate hidden global "
        "state shared across the whole process, so one stray call reorders "
        "every stream after it — across optimizers, vector envs, and worker "
        "processes.  The only place allowed to touch the globals is the "
        "documented legacy-compat shim in repro/api/seeding.py."
    )
    hint = (
        "thread an np.random.default_rng(seed) / SeedSequence-spawned "
        "Generator through instead; global seeding belongs only in "
        "repro.api.seeding"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if is_seeding_allowlisted(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if (
                len(parts) >= 2
                and ".".join(parts[:-1]) == "numpy.random"
                and parts[-1] in NUMPY_GLOBAL_RNG
            ):
                yield self.finding(
                    ctx, node, f"call to the numpy global RNG ({name})"
                )
            elif (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in STDLIB_GLOBAL_RNG
            ):
                yield self.finding(
                    ctx, node, f"call to the stdlib global RNG ({name})"
                )


class WallClockRule(Rule):
    """REP-DET02 — no wall-clock reads in determinism-critical code."""

    rule_id = "REP-DET02"
    title = "wall-clock read in determinism-critical code"
    rationale = (
        "Cache keys, simulation results, and checkpoint bytes must be pure "
        "functions of their inputs: a time.time()/datetime.now() value woven "
        "into any of them makes two identical runs produce different "
        "artifacts, silently breaking the content-addressed store, the "
        "quantized simulation-cache keys, and bitwise checkpoint round-trip "
        "guarantees.  Interval timing belongs to time.monotonic()/"
        "perf_counter(), which are fine everywhere; wall-clock timestamps "
        "are fine only outside the determinism-critical module set."
    )
    hint = (
        "use time.monotonic()/time.perf_counter() for durations; if a real "
        "timestamp is required, take it outside the critical path and pass "
        "it in as data"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not is_determinism_critical(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None:
                continue
            # `from datetime import datetime` resolves to datetime.datetime,
            # so both spellings land on the qualified forms listed above.
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {name}() in determinism-critical code",
                )


class LockDisciplineRule(Rule):
    """REP-LOCK01 — writes to lock-guarded attributes must hold the lock."""

    rule_id = "REP-LOCK01"
    title = "write to a lock-guarded attribute outside `with self._lock`"
    rationale = (
        "In a class owning a threading.Lock/RLock/Condition, the attributes "
        "it writes under `with self._lock` are its shared mutable state.  A "
        "write to any of them outside the lock is a data race against every "
        "locked reader/writer — exactly the pre-gateway ServeStats bug where "
        "the per-env tier-delta fold mutated shared counters outside the env "
        "lock and concurrent serve() calls double-counted.  __init__ is "
        "exempt: the instance is not shared yet."
    )
    hint = (
        "move the write inside `with self.<lock>:`, or annotate with "
        "`# repro: noqa[REP-LOCK01] <which caller holds the lock>` when the "
        "lock is provably held up-stack"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for info in ctx.classes:
            if not info.lock_attrs or not info.guarded_attrs:
                continue
            yield from self._check_class(ctx, info)

    def _check_class(self, ctx: ModuleContext, info) -> Iterator[Finding]:
        rule = self

        class Walker(ast.NodeVisitor):
            def __init__(self) -> None:
                self.lock_depth = 0
                self.method: List[str] = []
                self.out: List[Tuple[ast.AST, str]] = []

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                if node is not info.node:
                    return  # nested classes get their own ClassLockInfo
                self.generic_visit(node)

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self.method.append(node.name)
                self.generic_visit(node)
                self.method.pop()

            visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

            def visit_With(self, node: ast.With) -> None:
                locked = any(
                    _self_attr(item.context_expr) in info.lock_attrs
                    for item in node.items
                )
                if locked:
                    self.lock_depth += 1
                self.generic_visit(node)
                if locked:
                    self.lock_depth -= 1

            def _note(self, target: ast.AST) -> None:
                if self.lock_depth > 0 or (self.method and self.method[0] == "__init__"):
                    return
                attr = _self_attr(target)
                if attr in info.guarded_attrs:
                    self.out.append((target, attr))

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._note(target)
                self.generic_visit(node)

            def visit_AugAssign(self, node: ast.AugAssign) -> None:
                self._note(node.target)
                self.generic_visit(node)

            def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
                if node.value is not None:
                    self._note(node.target)
                self.generic_visit(node)

        walker = Walker()
        walker.visit(info.node)
        locks = ", ".join(sorted(info.lock_attrs))
        for node, attr in walker.out:
            yield rule.finding(
                ctx,
                node,
                f"{info.name}.{attr} is written under `with self.{locks}` "
                f"elsewhere but mutated here without the lock",
            )


class AtomicWriteRule(Rule):
    """REP-IO01 — on-disk artifacts are published atomically."""

    rule_id = "REP-IO01"
    title = "raw file write instead of the atomic write-then-replace helper"
    rationale = (
        "Checkpoints, simulation-corpus entries, artifact-store records, and "
        "stats documents are read concurrently by cache workers, resumed "
        "sweeps, and serving shards.  A raw open(path, 'w') exposes a torn, "
        "half-written file to those readers; every artifact write must go "
        "through repro.utils.atomic_write_json/atomic_write_text (write to a "
        "scratch file, publish with os.replace).  Functions that implement "
        "the scratch-then-os.replace pattern themselves are recognized and "
        "exempt."
    )
    hint = (
        "use repro.utils.atomic_write_json/atomic_write_text, or write to a "
        "scratch path and publish it with os.replace in the same function"
    )

    WRITE_MODE_CHARS = ("w", "a", "x", "+")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, in_atomic=False)

    def _walk(self, ctx: ModuleContext, node: ast.AST, in_atomic: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_atomic = in_atomic
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_atomic = in_atomic or id(child) in ctx.atomic_functions
            if isinstance(child, ast.Call) and not child_atomic:
                finding = self._check_call(ctx, child)
                if finding is not None:
                    yield finding
            yield from self._walk(ctx, child, child_atomic)

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Optional[Finding]:
        name = ctx.resolve(node.func)
        if name in ("open", "io.open"):
            mode = self._mode_literal(node)
            if mode is not None and any(c in mode for c in self.WRITE_MODE_CHARS):
                return self.finding(
                    ctx, node, f"raw open(..., {mode!r}) publishes a torn file to readers"
                )
            return None
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text",
            "write_bytes",
        ):
            return self.finding(
                ctx, node, f"raw Path.{node.func.attr}() publishes a torn file to readers"
            )
        return None

    @staticmethod
    def _mode_literal(node: ast.Call) -> Optional[str]:
        for keyword in node.keywords:
            if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                value = keyword.value.value
                return value if isinstance(value, str) else None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            value = node.args[1].value
            return value if isinstance(value, str) else None
        return None


class ShimImportRule(Rule):
    """REP-API01 — internal modules import real entry points, not shims."""

    rule_id = "REP-API01"
    title = "internal import of a deprecation shim"
    rationale = (
        "Deprecation shims (e.g. repro.serve.specs) exist so *external* "
        "callers migrate on their own schedule; they forward to the real "
        "entry points and warn.  Internal src/ code importing a shim "
        "re-entrenches the legacy surface, defeats the deprecation-clean CI "
        "gate (-W error::DeprecationWarning), and hides how much of the old "
        "API is actually still load-bearing."
    )
    hint = "import the replacement entry point (see the shim's docstring) instead"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_shim(alias.name):
                        yield self.finding(
                            ctx, node, f"import of deprecation shim {alias.name}"
                        )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package = ctx.module_name()
                    prefix = (
                        package[: len(package) - (node.level - 1)]
                        if node.level > 1
                        else package
                    )
                    base = ".".join(prefix + ([node.module] if node.module else []))
                if self._is_shim(base):
                    yield self.finding(
                        ctx, node, f"import from deprecation shim {base}"
                    )
                    continue
                for alias in node.names:
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    if self._is_shim(dotted):
                        yield self.finding(
                            ctx, node, f"import of deprecation shim {dotted}"
                        )

    @staticmethod
    def _is_shim(module: str) -> bool:
        return any(
            module == shim or module.startswith(shim + ".") for shim in SHIM_MODULES
        )


class FloatEqualityRule(Rule):
    """REP-FLT01 — no ==/!= against float literals without a sentinel note."""

    rule_id = "REP-FLT01"
    title = "equality comparison against a float literal"
    rationale = (
        "Almost every float that *looks* like 0.1 or 1e-12 is not exactly "
        "that value, so ==/!= against a float literal is usually a latent "
        "always-false (or flakily-true) branch — the cache-key quantizer's "
        "pre-rewrite splitting of 9.99999999999995e-13 vs 1e-12 is the house "
        "example.  The legitimate cases are exact sentinels (a value that is "
        "*assigned* 0.0 and compared to 0.0 unchanged); those must carry a "
        "`# repro: noqa[REP-FLT01] <why exact>` annotation so every exact "
        "comparison in the tree is a documented decision."
    )
    hint = (
        "compare with a tolerance (math.isclose / np.isclose / abs(a-b) < "
        "eps), or annotate the exact-sentinel comparison with "
        "`# repro: noqa[REP-FLT01] reason`"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[index], operands[index + 1]):
                    if isinstance(side, ast.Constant) and isinstance(side.value, float):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            ctx,
                            node,
                            f"exact {symbol} against float literal {side.value!r}",
                        )
                        break


#: The shipped rule set, in catalog order.
ALL_RULES = [
    GlobalRngRule(),
    WallClockRule(),
    LockDisciplineRule(),
    AtomicWriteRule(),
    ShimImportRule(),
    FloatEqualityRule(),
]

RULES_BY_ID = {rule.rule_id: rule for rule in ALL_RULES}
