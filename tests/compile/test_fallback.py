"""Degrades gracefully, never wrongly: untraceable configs and runtime guards.

``compile=True`` is a pure throughput knob — a configuration the tracer
does not understand must silently fall back to the interpreted path (with
an inspectable reason), and a compiled plan must hand back any step its
preconditions cannot vouch for.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.env.reward import P2SReward
from repro.parallel import VectorCircuitEnv


def _vector(env_id, num_envs=2, compile=True, **kwargs):
    template = repro.make_env(env_id, seed=None, **kwargs)
    return VectorCircuitEnv.from_env(
        template, num_envs=num_envs, seed=0, compile=compile
    )


class TestUntraceableConfigurations:
    @pytest.mark.parametrize("env_id", ["folded_cascode-p2s-v0", "common_source_lna-p2s-v0"])
    def test_zoo_simulators_fall_back_to_interpreted(self, env_id):
        """No kernel exists for the zoo simulators: negative entry + fallback."""
        compiled = _vector(env_id, compile=True)
        interpreted = _vector(env_id, compile=False)
        batch_c = compiled.reset()
        batch_i = interpreted.reset()
        actions = np.zeros((2, compiled.num_parameters), dtype=np.int64)
        for _ in range(3):
            batch_c, rewards_c, dones_c, _ = compiled.step(actions)
            batch_i, rewards_i, dones_i, _ = interpreted.step(actions)
            assert np.asarray(rewards_c).tobytes() == np.asarray(rewards_i).tobytes()
            assert np.array_equal(dones_c, dones_i)
            assert batch_c.spec_features.tobytes() == batch_i.spec_features.tobytes()
        assert compiled.compiled_plan is None
        reason = compiled.compiled_fallback_reason
        assert reason is not None and "kernel" in reason
        stats = compiled.plan_cache.stats
        assert stats.failures == 1  # the failed trace is cached, not repeated
        assert stats.misses == 1

    def test_interpreted_env_has_no_plan_state(self):
        env = _vector("opamp-p2s-v0", compile=False)
        env.reset()
        assert env.compiled_plan is None
        assert env.compiled_fallback_reason is None


class TestRuntimeGuards:
    def test_out_of_range_actions_fall_back(self):
        env = _vector("opamp-p2s-v0")
        env.reset()
        good = np.ones((2, env.num_parameters), dtype=np.int64)
        env.step(good)
        plan = env.compiled_plan
        assert plan is not None and plan.steps_compiled == 1
        bad = good.copy()
        bad[0, 0] = 7  # not a valid decrease/keep/increase index
        reference = _vector("opamp-p2s-v0", compile=False)
        reference.reset()
        reference.step(good)
        # The compiled plan hands the step to the interpreted path, which
        # raises exactly as it would have without compilation.
        with pytest.raises(ValueError) as compiled_error:
            env.step(bad)
        with pytest.raises(ValueError) as interpreted_error:
            reference.step(bad)
        assert str(compiled_error.value) == str(interpreted_error.value)
        assert plan.fallback_steps == 1
        assert plan.last_fallback_reason == "action index out of range"

    def test_wrong_shape_still_raises(self):
        env = _vector("opamp-p2s-v0")
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.ones(env.num_parameters, dtype=np.int64))


class TestConfigInvalidation:
    def test_swapping_the_reward_fn_rebuilds_the_plan(self):
        env = _vector("opamp-p2s-v0")
        env.reset()
        actions = np.ones((2, env.num_parameters), dtype=np.int64)
        env.step(actions)
        stats = env.plan_cache.stats
        assert (stats.misses, stats.invalidations) == (1, 0)
        # Mutate the live configuration: swap in a fresh (equal but
        # distinct) shared reward function, so the identity snapshot drifts.
        new_reward = P2SReward(env.benchmark.spec_space)
        for sub_env in env.envs:
            sub_env.reward_fn = new_reward
        env.step(actions)
        stats = env.plan_cache.stats
        assert stats.invalidations == 1
        assert stats.misses == 2  # rebuilt against the new snapshot
        assert env.compiled_plan is not None
