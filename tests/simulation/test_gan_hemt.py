"""Tests for the GaN HEMT behavioural model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.gan_hemt import GanHemtModel
from repro.simulation.technology import GAN_150NM


@pytest.fixture
def device() -> GanHemtModel:
    return GanHemtModel(GAN_150NM, width=50e-6, fingers=8)


class TestStaticCharacteristic:
    def test_geometry_scaling(self, device):
        assert device.total_width == pytest.approx(400e-6)
        assert device.imax == pytest.approx(GAN_150NM.imax_per_width * 400e-6)
        assert device.gm == pytest.approx(GAN_150NM.gm_per_width * 400e-6)

    def test_cutoff_below_threshold(self, device):
        assert device.drain_current(GAN_150NM.vth - 0.5) == 0.0

    def test_linear_region_slope(self, device):
        low = float(device.drain_current(GAN_150NM.vth + 0.1))
        high = float(device.drain_current(GAN_150NM.vth + 0.2))
        assert (high - low) == pytest.approx(device.gm * 0.1, rel=1e-9)

    def test_saturation_at_imax(self, device):
        assert float(device.drain_current(10.0)) == pytest.approx(device.imax)

    def test_operating_point(self, device):
        op = device.operating_point(GAN_150NM.vth + 0.05)
        assert op.quiescent_current == pytest.approx(device.gm * 0.05)
        assert 0.0 < op.conduction_ratio < 1.0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            GanHemtModel(GAN_150NM, width=-1.0, fingers=2)


class TestWaveformAnalysis:
    def test_waveform_clipped_between_zero_and_imax(self, device):
        waveform = device.current_waveform(GAN_150NM.vth + 0.1, drive_amplitude=5.0)
        assert np.all(waveform >= 0.0)
        assert np.all(waveform <= device.imax + 1e-12)

    def test_waveform_needs_enough_points(self, device):
        with pytest.raises(ValueError):
            device.current_waveform(-2.9, 1.0, num_points=4)

    def test_fourier_of_constant_waveform(self, device):
        components = device.fourier_components(np.full(256, 2.0), num_harmonics=3)
        assert components[0] == pytest.approx(2.0)
        np.testing.assert_allclose(components[1:], 0.0, atol=1e-12)

    def test_fourier_of_pure_cosine(self, device):
        theta = np.linspace(0.0, 2 * np.pi, 256, endpoint=False)
        waveform = 1.5 + 0.7 * np.cos(theta)
        components = device.fourier_components(waveform, num_harmonics=3)
        assert components[0] == pytest.approx(1.5)
        assert components[1] == pytest.approx(0.7)
        np.testing.assert_allclose(components[2:], 0.0, atol=1e-9)

    def test_fourier_of_ideal_class_b_half_sine(self, device):
        """Half-rectified cosine: I_dc = Ip/pi and I_1 = Ip/2 (textbook)."""
        theta = np.linspace(0.0, 2 * np.pi, 4096, endpoint=False)
        peak = 1.0
        waveform = np.maximum(peak * np.cos(theta), 0.0)
        components = device.fourier_components(waveform, num_harmonics=2)
        assert components[0] == pytest.approx(peak / np.pi, rel=1e-3)
        assert components[1] == pytest.approx(peak / 2.0, rel=1e-3)

    def test_larger_drive_increases_fundamental(self, device):
        bias = GAN_150NM.vth + 0.05
        small = device.fourier_components(device.current_waveform(bias, 0.5))[1]
        large = device.fourier_components(device.current_waveform(bias, 2.0))[1]
        assert large > small
