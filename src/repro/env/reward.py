"""Reward functions for the P2S and FoM optimization problems.

Two reward definitions are used in the paper:

* **P2S reward** (Eq. 1): at each step the reward is the sum over all
  specifications of the clipped normalized difference between intermediate
  and target values, ``r = Σ_j min((g_j − g*_j)/(g_j + g*_j), 0)`` (with the
  sign flipped for "smaller-is-better" specs such as power consumption).
  The sum is upper-bounded by zero so the agent is not pushed to
  over-optimize a spec that is already met, and a large bonus ``R = 10`` is
  granted once *all* specifications are met.

* **FoM reward** (Sec. 4, "FoM Optimization"): for the RF PA the figure of
  merit is ``FoM = P + 3 E``; during training each term is normalized with a
  reference value, ``r_i = (P_i − P_r)/(P_i + P_r) + 3 (E_i − E_r)/(E_i + E_r)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.circuits.specs import SpecificationSpace

#: Bonus granted when every specification of the target group is satisfied.
GOAL_BONUS = 10.0


def _defensive_errors(
    spec_space: SpecificationSpace,
    measured: Mapping[str, float],
    targets: Mapping[str, float],
) -> Tuple[Dict[str, float], bool]:
    """Per-spec clipped normalized errors, tolerating bad *measured* entries.

    A simulator that marks a result ``valid=True`` but omits a required
    specification (or reports NaN/inf for one) must not crash the reward —
    it is an invalid outcome in disguise.  Returns the per-spec error dict
    (worst-case ``-1.0`` for unusable entries, so diagnostics stay fully
    named) and whether every measurement was present and finite.

    Targets are the *caller's* input: a missing target key is a bug (e.g. a
    typo'd spec name in a deployment target group) and raises ``KeyError``
    exactly like the pre-hardening path, rather than silently scoring every
    step as invalid.  A non-finite target value, which previously poisoned
    the reward with NaN, takes the invalid path.
    """
    missing_targets = [spec.name for spec in spec_space if spec.name not in targets]
    if missing_targets:
        raise KeyError(f"missing target specifications: {missing_targets}")
    errors: Dict[str, float] = {}
    complete = True
    for spec in spec_space:
        measured_value = measured.get(spec.name)
        target_value = float(targets[spec.name])
        if (
            measured_value is None
            or not math.isfinite(float(measured_value))
            or not math.isfinite(target_value)
        ):
            errors[spec.name] = -1.0
            complete = False
        else:
            errors[spec.name] = spec.normalized_error(float(measured_value), target_value)
    return errors, complete


@dataclass
class RewardOutcome:
    """Reward plus the per-spec diagnostics environments expose in ``info``."""

    reward: float
    goal_reached: bool
    normalized_errors: Dict[str, float]
    met_fraction: float


class P2SReward:
    """The paper's Eq. (1) reward for parameter-to-specification search.

    Parameters
    ----------
    spec_space:
        The circuit's specification space (provides objective directions).
    goal_bonus:
        Reward granted when all specifications are met (``R`` in Eq. 1).
    invalid_penalty:
        Reward returned when the simulator reports a degenerate operating
        point; strongly negative so the policy learns to avoid such regions.
    """

    def __init__(
        self,
        spec_space: SpecificationSpace,
        goal_bonus: float = GOAL_BONUS,
        invalid_penalty: float | None = None,
    ) -> None:
        self.spec_space = spec_space
        self.goal_bonus = goal_bonus
        # Default: one unit of penalty per specification (the worst possible
        # Eq. 1 value), used for invalid simulation results.
        self.invalid_penalty = (
            float(invalid_penalty) if invalid_penalty is not None else -float(len(spec_space))
        )

    def __call__(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float],
        valid: bool = True,
    ) -> RewardOutcome:
        named_errors, complete = _defensive_errors(self.spec_space, measured, targets)
        if not valid or not complete:
            # Missing or non-finite required specs are an invalid outcome in
            # disguise; both take the invalid-penalty path.
            return RewardOutcome(
                reward=self.invalid_penalty,
                goal_reached=False,
                normalized_errors=named_errors,
                met_fraction=0.0,
            )
        errors = np.array([named_errors[name] for name in self.spec_space.names])
        raw = float(errors.sum())
        goal_reached = bool(np.all(errors >= 0.0))
        reward = self.goal_bonus if goal_reached else raw
        return RewardOutcome(
            reward=reward,
            goal_reached=goal_reached,
            normalized_errors=named_errors,
            met_fraction=self.spec_space.met_fraction(measured, targets),
        )


class FomReward:
    """Figure-of-merit reward for the RF PA (``FoM = P + 3 E``).

    Parameters
    ----------
    spec_space:
        Specification space (only used for naming/diagnostics).
    power_reference, efficiency_reference:
        The normalization references ``P_r`` and ``E_r``; the paper uses
        references drawn from the sampling space (we default to its
        midpoints: 2.5 W and 55 %).
    efficiency_weight:
        The factor 3 from the paper's FoM definition.
    """

    def __init__(
        self,
        spec_space: SpecificationSpace,
        power_reference: float = 2.5,
        efficiency_reference: float = 0.55,
        efficiency_weight: float = 3.0,
    ) -> None:
        if power_reference <= 0 or efficiency_reference <= 0:
            raise ValueError("references must be positive")
        self.spec_space = spec_space
        self.power_reference = power_reference
        self.efficiency_reference = efficiency_reference
        self.efficiency_weight = efficiency_weight

    #: Specs a simulation result must report for the FoM to be computable.
    REQUIRED_SPECS = ("output_power", "efficiency")

    def figure_of_merit(self, measured: Mapping[str, float]) -> float:
        """Un-normalized figure of merit ``P + 3 E`` (what Table 2 reports).

        NaN when the result omits a required spec, so diagnostics consumers
        (e.g. the environment's ``info`` dict) degrade instead of raising.
        """
        if not self._usable(measured):
            return float("nan")
        return float(measured["output_power"]) + self.efficiency_weight * float(
            measured["efficiency"]
        )

    @classmethod
    def _usable(cls, measured: Mapping[str, float]) -> bool:
        return all(
            measured.get(name) is not None and math.isfinite(float(measured[name]))
            for name in cls.REQUIRED_SPECS
        )

    @property
    def invalid_penalty(self) -> float:
        """Reward of an invalid (or spec-incomplete) simulation outcome."""
        return -2.0 * (1.0 + self.efficiency_weight)

    def __call__(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float] | None = None,
        valid: bool = True,
    ) -> RewardOutcome:
        if not valid or not self._usable(measured):
            # A result marked valid but missing output_power/efficiency (or
            # carrying NaN) cannot be scored; treat it as invalid instead of
            # raising out of the middle of a rollout.
            return RewardOutcome(
                reward=self.invalid_penalty,
                goal_reached=False,
                normalized_errors={},
                met_fraction=0.0,
            )
        power = float(measured["output_power"])
        efficiency = float(measured["efficiency"])
        power_term = (power - self.power_reference) / (power + self.power_reference)
        eff_term = (efficiency - self.efficiency_reference) / (
            efficiency + self.efficiency_reference
        )
        reward = power_term + self.efficiency_weight * eff_term
        return RewardOutcome(
            reward=float(reward),
            goal_reached=False,
            normalized_errors={"output_power": power_term, "efficiency": eff_term},
            met_fraction=0.0,
        )
