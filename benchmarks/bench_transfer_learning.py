"""Transfer learning (Sec. 3) — coarse-simulation training, fine-simulation deployment.

Two claims are exercised:

1. Eq. (1) rewards computed from the coarse (DC-estimate) PA simulator track
   the fine (harmonic-balance-like) rewards closely — the paper reports
   roughly ±10 % error.
2. A policy trained entirely against the coarse simulator can be deployed on
   the fine simulator without collapsing (the learned experiences transfer).
"""

from __future__ import annotations

import numpy as np
from repro import make_env, make_policy
from repro.agents import PPOConfig
from repro.agents.transfer import TransferLearningWorkflow, reward_fidelity_report


def test_coarse_vs_fine_reward_fidelity(benchmark):
    coarse_env = make_env("rf_pa-coarse-v0", seed=0)
    fine_env = make_env("rf_pa-fine-v0", seed=0)

    def run():
        return reward_fidelity_report(coarse_env, fine_env, num_samples=150, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.mean_abs_relative_error < 0.25
    benchmark.extra_info.update(
        {
            "mean_abs_reward_error": float(report.mean_abs_error),
            "p90_abs_reward_error": float(report.p90_abs_error),
            "mean_abs_relative_error": float(report.mean_abs_relative_error),
            "num_samples": int(report.num_samples),
        }
    )


def test_coarse_train_fine_deploy_workflow(benchmark, scale):
    def run():
        coarse_env = make_env("rf_pa-coarse-v0", seed=0)
        fine_env = make_env("rf_pa-fine-v0", seed=0)
        policy = make_policy("gcn_fc", coarse_env, np.random.default_rng(0))
        workflow = TransferLearningWorkflow(
            coarse_env, fine_env, policy,
            config=PPOConfig(learning_rate=1e-3, minibatch_size=64, update_epochs=4),
            seed=0,
        )
        return workflow.run(
            coarse_episodes=scale.rf_pa_training_episodes,
            episodes_per_update=scale.episodes_per_update,
            eval_targets=scale.deployment_specs,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 <= result.coarse_accuracy <= 1.0
    assert 0.0 <= result.fine_accuracy <= 1.0
    # The transferred policy must not collapse on the fine simulator: its
    # accuracy stays within a generous band of the coarse-environment figure.
    assert result.fine_accuracy >= result.coarse_accuracy - 0.5
    benchmark.extra_info.update(
        {
            "coarse_accuracy": float(result.coarse_accuracy),
            "fine_accuracy": float(result.fine_accuracy),
            "fine_mean_steps": float(result.fine_evaluation.mean_steps),
        }
    )
