"""The calibrated trust gate deciding when a surrogate answer is served.

A learned tier is only admissible in front of an exact simulator if it knows
when *not* to answer.  The gate's confidence signal is ensemble
disagreement: the per-query standard deviation across the surrogate's
independently-initialized members (in standardized spec units, worst spec
taken).  Disagreement correlates with prediction error — members agree where
the corpus constrains them and diverge off-distribution — so a single
threshold on it separates "interpolating" from "extrapolating" queries.

The threshold is *calibrated*, not hand-set: :func:`calibrate_threshold`
picks the loosest disagreement cutoff whose accepted validation queries keep
their error quantile below a tolerance.  A cold or hopeless fit yields no
admissible cutoff, and an uncalibrated gate rejects every query — the tier
then degrades to the pure exact path, never to silently wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def calibrate_threshold(
    disagreement: np.ndarray,
    errors: np.ndarray,
    tolerance: float,
    quantile: float = 0.9,
) -> Optional[float]:
    """Loosest disagreement cutoff keeping accepted-set error in tolerance.

    Sorts the validation queries by disagreement and finds the largest
    prefix whose ``quantile``-quantile error is at most ``tolerance``; the
    returned threshold is that prefix's worst disagreement.  Returns ``None``
    when even the single most-confident query misses the tolerance (the gate
    then rejects everything).
    """
    disagreement = np.asarray(disagreement, dtype=np.float64).ravel()
    errors = np.asarray(errors, dtype=np.float64).ravel()
    if disagreement.size == 0 or disagreement.size != errors.size:
        return None
    if tolerance <= 0.0 or not 0.0 < quantile <= 1.0:
        raise ValueError("tolerance must be positive and quantile in (0, 1]")
    order = np.argsort(disagreement, kind="stable")
    ordered_errors = errors[order]
    threshold: Optional[float] = None
    # Validation sets are small (a fraction of the corpus), so the O(n^2
    # log n) exact running quantile is cheaper than being clever.  A NaN
    # error poisons its prefix quantile into NaN, which never passes the
    # tolerance test — exactly the conservative behaviour wanted.
    for count in range(1, order.size + 1):
        if float(np.quantile(ordered_errors[:count], quantile)) <= tolerance:
            threshold = float(disagreement[order[count - 1]])
    return threshold


@dataclass
class TrustGate:
    """Accept/reject surrogate answers on calibrated ensemble disagreement.

    ``threshold`` is ``None`` until calibration succeeds — an uncalibrated
    gate rejects everything, which makes the cold-corpus tier exactly the
    no-surrogate path.  ``min_train_points`` additionally refuses models
    trained on corpora too small to trust their own validation estimate.
    """

    threshold: Optional[float] = None
    min_train_points: int = 32
    tolerance: float = 0.1
    quantile: float = 0.9

    def __post_init__(self) -> None:
        if self.min_train_points < 1:
            raise ValueError("min_train_points must be >= 1")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")

    def ready(self, num_train_points: int) -> bool:
        """Whether the gate can accept anything at all."""
        return self.threshold is not None and num_train_points >= self.min_train_points

    def accept(self, disagreement: np.ndarray, num_train_points: int) -> np.ndarray:
        """Boolean accept mask for a batch of disagreement values."""
        disagreement = np.asarray(disagreement, dtype=np.float64)
        if not self.ready(num_train_points):
            return np.zeros(disagreement.shape, dtype=bool)
        return disagreement <= self.threshold

    def calibrate(self, disagreement: np.ndarray, errors: np.ndarray) -> Optional[float]:
        """Set (and return) the threshold from validation evidence."""
        self.threshold = calibrate_threshold(
            disagreement, errors, tolerance=self.tolerance, quantile=self.quantile
        )
        return self.threshold
