"""Protocol conformance: all five optimizer families behind one optimize() loop."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import OptimizationCallback, OptimizationResult, Optimizer
from repro.baselines.base import OptimizationTrace

TARGET = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}

#: (optimizer id, budget, constructor params) — budgets sized for test speed.
METHODS = (
    ("genetic", 12, {"population_size": 6}),
    ("bayesian", 13, {"num_initial": 3, "candidate_pool": 50, "local_candidates": 20}),
    ("random", 6, {}),
    ("supervised", 60, {"epochs": 3}),
    ("ppo", 4, {"episodes_per_update": 2}),
)


class _Recorder(OptimizationCallback):
    def __init__(self):
        self.started = []
        self.evaluations = []
        self.results = []

    def on_start(self, optimizer_id, env, budget):
        self.started.append((optimizer_id, budget))

    def on_evaluation(self, index, objective, best):
        self.evaluations.append((index, objective, best))

    def on_result(self, result):
        self.results.append(result)


@pytest.fixture(scope="module")
def small_env():
    return repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)


class TestProtocolConformance:
    @pytest.mark.parametrize("method,budget,params", METHODS, ids=[m[0] for m in METHODS])
    def test_shared_optimize_loop(self, small_env, method, budget, params):
        """The acceptance loop: one code path drives every method family."""
        optimizer = repro.make_optimizer(method, **params)
        assert isinstance(optimizer, Optimizer)
        recorder = _Recorder()
        result = optimizer.optimize(
            small_env, budget=budget, seed=0, callbacks=[recorder], target_specs=TARGET
        )

        assert isinstance(result, OptimizationResult)
        assert result.method == method
        assert result.seed == 0
        assert result.budget == budget
        assert result.best_parameters.shape == (small_env.num_parameters,)
        assert np.isfinite(result.best_objective)
        assert set(result.best_specs) == set(TARGET)
        assert isinstance(result.success, bool) or result.success in (True, False)
        assert result.num_simulations >= 1
        assert isinstance(result.trace, OptimizationTrace)

        # Callback contract: exactly one start, one result, >= 1 evaluation.
        assert recorder.started == [(method, budget)]
        assert recorder.results == [result]
        assert len(recorder.evaluations) >= 1
        # best-so-far stream is monotone non-decreasing
        bests = [b for _, _, b in recorder.evaluations]
        assert all(b2 >= b1 - 1e-12 for b1, b2 in zip(bests, bests[1:]))

    @pytest.mark.parametrize("method,budget,params", METHODS[:3], ids=[m[0] for m in METHODS[:3]])
    def test_search_methods_are_seed_deterministic(self, small_env, method, budget, params):
        optimizer = repro.make_optimizer(method, **params)
        first = optimizer.optimize(small_env, budget=budget, seed=3, target_specs=TARGET)
        second = repro.make_optimizer(method, **params).optimize(
            small_env, budget=budget, seed=3, target_specs=TARGET
        )
        assert first.best_objective == second.best_objective
        np.testing.assert_array_equal(first.best_parameters, second.best_parameters)

    def test_target_sampled_deterministically_when_omitted(self, small_env):
        result_a = repro.make_optimizer("random").optimize(small_env, budget=4, seed=11)
        result_b = repro.make_optimizer("random").optimize(small_env, budget=4, seed=11)
        assert result_a.metadata["target_specs"] == result_b.metadata["target_specs"]

    def test_stale_reset_target_does_not_leak_into_seeded_runs(self):
        """Same (env id, budget, seed) -> same target, reset history or not."""
        pristine = repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)
        reset_first = repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)
        reset_first.reset(target_specs=TARGET)  # user inspected the env first
        result_a = repro.make_optimizer("random").optimize(pristine, budget=4, seed=11)
        result_b = repro.make_optimizer("random").optimize(reset_first, budget=4, seed=11)
        assert result_a.metadata["target_specs"] == result_b.metadata["target_specs"]
        assert result_b.metadata["target_specs"] != TARGET

    def test_genetic_budget_bounds_simulator_calls(self, small_env):
        result = repro.make_optimizer("genetic").optimize(
            small_env, budget=60, seed=0, target_specs=TARGET
        )
        # initial population + num_generations populations + 1 verification
        # call; stop_when_met may end earlier, never later.
        assert result.num_simulations <= 60 + 1

    def test_ppo_result_carries_policy_and_history(self, small_env):
        result = repro.make_optimizer("ppo", episodes_per_update=2).optimize(
            small_env, budget=4, seed=0, target_specs=TARGET
        )
        from repro.agents.policy import ActorCriticPolicy
        from repro.agents.ppo import TrainingHistory

        assert isinstance(result.metadata["policy"], ActorCriticPolicy)
        assert isinstance(result.metadata["training_history"], TrainingHistory)
        assert result.metadata["policy_id"] == "gcn_fc"
        # RL accounting: deployment steps only, bounded by the episode budget.
        assert 1 <= result.num_simulations <= small_env.max_steps

    def test_ppo_policy_id_selects_architecture(self, small_env):
        result = repro.make_optimizer("ppo", policy="baseline_a", episodes_per_update=2).optimize(
            small_env, budget=2, seed=0, target_specs=TARGET
        )
        names = [name for name, _ in result.metadata["policy"].named_parameters()]
        assert not any("graph_encoder" in name for name in names)


class TestFomMode:
    def test_search_optimizer_on_fom_env(self):
        env = repro.make_env("rf_pa-fom-v0", seed=0, max_steps=5)
        result = repro.make_optimizer("random").optimize(env, budget=5, seed=0)
        assert result.method == "random"
        assert np.isfinite(result.best_objective)
        assert result.success  # FoM mode has no pass/fail targets

    def test_ppo_on_fom_env_reports_best_fom(self):
        env = repro.make_env("rf_pa-fom-v0", seed=0, max_steps=4)
        result = repro.make_optimizer("ppo", episodes_per_update=2, fom_episodes=1).optimize(
            env, budget=2, seed=0
        )
        assert result.best_objective == max(result.trace.objective_values)

    def test_supervised_rejects_fom_env(self):
        env = repro.make_env("rf_pa-fom-v0", seed=0, max_steps=4)
        with pytest.raises(ValueError, match="FoM"):
            repro.make_optimizer("supervised").optimize(env, budget=20, seed=0)
