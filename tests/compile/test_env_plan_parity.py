"""Compiled episode plans: bitwise parity with the interpreted vector path.

The CI ``parity`` job runs this file per topology (one matrix leg each via
``-k``): every registered compiled topology is driven through full episodes
— autoresets included — at several batch widths and seeds, compiled and
interpreted side by side, and every observable (observations, rewards, done
flags, info dicts, terminal observations, netlist state, shared-cache
statistics) must match bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.parallel import VectorCircuitEnv

#: Every environment the compiled path has kernels for, by circuit family.
COMPILED_ENV_IDS = [
    "opamp-p2s-v0",
    "opamp-mna-v0",
    "current_mirror_ota-p2s-v0",
    "current_mirror_ota-mna-v0",
]

STEPS = 12
MAX_STEPS = 5  # short episodes so the run crosses several autoresets


def _build(env_id, num_envs, seed, compile, cache_size):
    template = repro.make_env(env_id, seed=None, max_steps=MAX_STEPS)
    return VectorCircuitEnv.from_env(
        template, num_envs=num_envs, seed=seed, cache_size=cache_size, compile=compile
    )


def _observations_equal(a, b):
    assert a.node_features.tobytes() == b.node_features.tobytes()
    assert a.static_node_features.tobytes() == b.static_node_features.tobytes()
    assert a.adjacency.tobytes() == b.adjacency.tobytes()
    assert a.spec_features.tobytes() == b.spec_features.tobytes()
    assert a.normalized_parameters.tobytes() == b.normalized_parameters.tobytes()
    assert a.measured_specs == b.measured_specs
    assert a.target_specs == b.target_specs


def _infos_equal(a, b):
    assert set(a) == set(b)
    for key, value in a.items():
        if key == "terminal_observation":
            _observations_equal(value, b[key])
        else:
            assert value == b[key], key


def _run_parity(env_id, num_envs, seed, cache_size):
    compiled = _build(env_id, num_envs, seed, True, cache_size)
    interpreted = _build(env_id, num_envs, seed, False, cache_size)
    batch_c = compiled.reset()
    batch_i = interpreted.reset()
    rng = np.random.default_rng(seed + 1000)
    for _ in range(STEPS):
        for i in range(num_envs):
            _observations_equal(batch_c[i], batch_i[i])
        actions = rng.integers(0, 3, size=(num_envs, compiled.num_parameters))
        batch_c, rewards_c, dones_c, infos_c = compiled.step(actions)
        batch_i, rewards_i, dones_i, infos_i = interpreted.step(actions)
        assert np.asarray(rewards_c).tobytes() == np.asarray(rewards_i).tobytes()
        assert np.array_equal(dones_c, dones_i)
        for info_c, info_i in zip(infos_c, infos_i):
            _infos_equal(info_c, info_i)
    for env_c, env_i in zip(compiled.envs, interpreted.envs):
        values_c = env_c.data_processor.parameter_values
        values_i = env_i.data_processor.parameter_values
        assert values_c.tobytes() == values_i.tobytes()
    plan = compiled.compiled_plan
    assert plan is not None
    assert plan.steps_compiled == STEPS
    assert plan.fallback_steps == 0
    if cache_size is not None:
        assert compiled.cache is not None and interpreted.cache is not None
        assert compiled.cache.stats == interpreted.cache.stats
    return compiled


@pytest.mark.parametrize("env_id", COMPILED_ENV_IDS)
@pytest.mark.parametrize("num_envs", [2, 8])
@pytest.mark.parametrize("seed", [0, 123])
def test_bitwise_parity(env_id, num_envs, seed):
    _run_parity(env_id, num_envs, seed, cache_size=64)


@pytest.mark.parametrize("env_id", COMPILED_ENV_IDS)
def test_bitwise_parity_without_cache(env_id):
    """No shared cache: the batched fresh-results shortcut path."""
    _run_parity(env_id, 4, 7, cache_size=None)


@pytest.mark.parametrize("env_id", ["opamp-p2s-v0", "current_mirror_ota-mna-v0"])
def test_plan_is_cached_across_steps(env_id):
    env = _build(env_id, 2, 0, True, 64)
    env.reset()
    actions = np.ones((2, env.num_parameters), dtype=np.int64)
    for _ in range(3):
        env.step(actions)
    stats = env.plan_cache.stats
    assert stats.misses == 1  # one build (first step), then hits
    assert stats.hits == 2
    assert stats.failures == 0


def test_make_env_compile_flag_round_trip():
    env = repro.make_env("opamp-p2s-v0", seed=0, num_envs=3, compile=True)
    assert isinstance(env, VectorCircuitEnv)
    assert env.compile
    env.reset()
    actions = np.zeros((3, env.num_parameters), dtype=np.int64)
    env.step(actions)
    assert env.compiled_plan is not None
    assert env.compiled_fallback_reason is None
