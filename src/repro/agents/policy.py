"""Actor-critic policy networks: the paper's GNN-FC multimodal policy and the
prior-art baselines it is compared against.

The proposed policy (Fig. 2, "Agent") has two input branches:

* a **GNN branch** (GCN or GAT) over the full circuit graph whose node
  features contain the *dynamic* device parameters — this distills the
  circuit's "underlying physics" into a graph embedding;
* an **FCNN branch** over the specification context (desired and intermediate
  specifications) — this extracts the couplings / trade-offs between
  specifications;

whose embeddings are concatenated and processed by final FC layers into an
``M × 3`` matrix of action logits (decrease / keep / increase per tunable
parameter).  The critic shares the same structure but ends in a scalar value
head.

The baselines reproduce the prior RL methods as the paper describes them
(Sec. 4, "conservative comparisons"):

* **Baseline A** (AutoCkt [10]) — a plain FCNN over the vectorized
  specification context and normalized device parameters; no circuit graph.
* **Baseline B** (GCN-RL [11]) — a GNN over the circuit graph but *without*
  the specification-coupling FCNN branch; the raw specification vector is
  appended to the graph embedding just before the output layers.  Flags allow
  the original paper's weaker variants (partial topology, static technology
  node features) to be reproduced for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.env.spaces import NUM_ACTION_CHOICES, BatchedObservation, Observation
from repro.nn.distributions import BatchedMultiCategorical, MultiCategorical, sample_from_probs
from repro.nn.graph_layers import GraphEncoder
from repro.nn.layers import MLP, log_softmax_array
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concatenate, inference_mode


@dataclass
class PolicyConfig:
    """Hyper-parameters describing one actor-critic architecture.

    Parameters mirror the knobs compared in the paper:

    * ``use_graph`` / ``graph_kind`` — whether a GNN branch is present and
      whether it is a GCN or a GAT (GCN-FC vs GAT-FC vs Baseline A).
    * ``use_spec_encoder`` — whether the specification context is embedded by
      a dedicated FCNN branch (ours) or appended raw (Baseline B).
    * ``use_dynamic_node_features`` — dynamic device parameters (ours /
      upgraded Baseline B) versus static technology constants (original
      Baseline B).
    * ``include_parameters`` — whether the normalized parameter vector is part
      of the flat input (AutoCkt-style observation).
    """

    num_parameters: int
    spec_feature_dim: int
    node_feature_dim: int = 0
    num_graph_nodes: int = 0
    use_graph: bool = True
    graph_kind: str = "gcn"
    use_spec_encoder: bool = True
    use_dynamic_node_features: bool = True
    include_parameters: bool = True
    graph_hidden: Tuple[int, ...] = (32, 16)
    graph_readout: str = "concat"
    spec_hidden: Tuple[int, ...] = (32, 32)
    head_hidden: Tuple[int, ...] = (64,)
    gat_heads: int = 2
    activation: str = "tanh"

    def __post_init__(self) -> None:
        if self.num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        if self.spec_feature_dim <= 0:
            raise ValueError("spec_feature_dim must be positive")
        if self.use_graph and self.node_feature_dim <= 0:
            raise ValueError("node_feature_dim must be positive when use_graph=True")
        if self.use_graph and self.graph_readout == "concat" and self.num_graph_nodes <= 0:
            raise ValueError("num_graph_nodes must be positive for the concat readout")
        if self.graph_kind not in {"gcn", "gat"}:
            raise ValueError("graph_kind must be 'gcn' or 'gat'")


class _FeatureTrunk(Module):
    """Shared feature-extraction trunk (graph branch + spec branch + merge)."""

    def __init__(self, config: PolicyConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        merged_dim = 0

        if config.use_graph:
            self.graph_encoder = GraphEncoder(
                layer_sizes=(config.node_feature_dim, *config.graph_hidden),
                rng=rng,
                kind=config.graph_kind,
                num_heads=config.gat_heads,
                activation=config.activation,
                readout=config.graph_readout,
                num_nodes=config.num_graph_nodes or None,
            )
            merged_dim += self.graph_encoder.out_features

        flat_dim = config.spec_feature_dim
        if config.include_parameters:
            flat_dim += config.num_parameters
        self.flat_input_dim = flat_dim

        if config.use_spec_encoder:
            self.spec_encoder = MLP(
                (flat_dim, *config.spec_hidden),
                rng=rng,
                hidden_activation=config.activation,
                output_activation=config.activation,
            )
            merged_dim += config.spec_hidden[-1]
        else:
            merged_dim += flat_dim

        self.output_dim = merged_dim

    def _flat_input(self, observation: Observation) -> Tensor:
        parts = [observation.spec_features]
        if self.config.include_parameters:
            parts.append(observation.normalized_parameters)
        return Tensor(np.concatenate(parts).reshape(1, -1))

    def forward(self, observation: Observation) -> Tensor:
        pieces = []
        if self.config.use_graph:
            if self.config.use_dynamic_node_features:
                node_features = observation.node_features
            else:
                node_features = observation.static_node_features
            graph_embedding = self.graph_encoder(
                Tensor(node_features), observation.adjacency
            )
            pieces.append(graph_embedding)
        flat = self._flat_input(observation)
        if self.config.use_spec_encoder:
            pieces.append(self.spec_encoder(flat))
        else:
            pieces.append(flat)
        if len(pieces) == 1:
            return pieces[0]
        return concatenate(pieces, axis=-1)

    def forward_array(self, observation: Observation) -> np.ndarray:
        """Pure-numpy trunk forward (grad-free inference fast path).

        Mirrors :meth:`forward` operation-for-operation, so the returned
        ``(1, output_dim)`` features are bitwise identical to
        ``forward(observation).numpy()`` — without building any tensors.
        """
        pieces = []
        if self.config.use_graph:
            if self.config.use_dynamic_node_features:
                node_features = observation.node_features
            else:
                node_features = observation.static_node_features
            pieces.append(self.graph_encoder.forward_array(node_features, observation.adjacency))
        parts = [observation.spec_features]
        if self.config.include_parameters:
            parts.append(observation.normalized_parameters)
        flat = np.concatenate(parts).reshape(1, -1)
        if self.config.use_spec_encoder:
            pieces.append(self.spec_encoder.forward_array(flat))
        else:
            pieces.append(flat)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces, axis=-1)

    def forward_array_batch(self, batch: BatchedObservation) -> np.ndarray:
        """Pure-numpy twin of :meth:`forward_batch`, shape ``(B, output_dim)``."""
        pieces = []
        if self.config.use_graph:
            if self.config.use_dynamic_node_features:
                node_features = batch.node_features
            else:
                node_features = batch.static_node_features
            pieces.append(self.graph_encoder.forward_array(node_features, batch.adjacency))
        flat = batch.flat_matrix() if self.config.include_parameters else batch.spec_features
        if self.config.use_spec_encoder:
            pieces.append(self.spec_encoder.forward_array(flat))
        else:
            pieces.append(flat)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces, axis=-1)

    def forward_batch(self, batch: BatchedObservation) -> Tensor:
        """Batched trunk features, shape ``(B, output_dim)``.

        One autograd graph covers the whole batch — the GNN branch runs a
        stacked ``(B, n, d)`` forward over the shared adjacency and the flat
        branch a single ``(B, flat)`` matmul — so the per-environment Python
        and graph-construction overhead is paid once per *batch* instead of
        once per environment.
        """
        pieces = []
        if self.config.use_graph:
            if self.config.use_dynamic_node_features:
                node_features = batch.node_features
            else:
                node_features = batch.static_node_features
            pieces.append(self.graph_encoder(Tensor(node_features), batch.adjacency))
        flat = Tensor(batch.flat_matrix() if self.config.include_parameters
                      else batch.spec_features)
        if self.config.use_spec_encoder:
            pieces.append(self.spec_encoder(flat))
        else:
            pieces.append(flat)
        if len(pieces) == 1:
            return pieces[0]
        return concatenate(pieces, axis=-1)


class ActorCriticPolicy(Module):
    """Actor-critic with independent actor and critic trunks.

    The actor ends in an ``M × 3`` logits head; the critic "preserves the
    same structure as the policy network except of the last layer" (paper,
    Sec. 3) and ends in a scalar state-value head.
    """

    def __init__(self, config: PolicyConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.config = config
        self.actor_trunk = _FeatureTrunk(config, rng)
        self.critic_trunk = _FeatureTrunk(config, rng)
        action_dim = config.num_parameters * NUM_ACTION_CHOICES
        self.actor_head = MLP(
            (self.actor_trunk.output_dim, *config.head_hidden, action_dim),
            rng=rng,
            hidden_activation=config.activation,
            output_gain=0.1,
        )
        self.critic_head = MLP(
            (self.critic_trunk.output_dim, *config.head_hidden, 1),
            rng=rng,
            hidden_activation=config.activation,
        )

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def action_distribution(self, observation: Observation) -> MultiCategorical:
        """Per-parameter categorical distribution over the three moves."""
        features = self.actor_trunk(observation)
        logits = self.actor_head(features).reshape(
            self.config.num_parameters, NUM_ACTION_CHOICES
        )
        return MultiCategorical(logits)

    def value(self, observation: Observation) -> Tensor:
        """State-value estimate (scalar tensor)."""
        features = self.critic_trunk(observation)
        return self.critic_head(features).reshape(1)[0]

    # ------------------------------------------------------------------
    # Acting / evaluating
    # ------------------------------------------------------------------
    def act(
        self,
        observation: Observation,
        rng: np.random.Generator,
        deterministic: bool = False,
        inference: bool = True,
    ) -> Tuple[np.ndarray, float, float]:
        """Select an action; returns ``(action, log_prob, value)`` (detached).

        All three outputs are plain floats/arrays, so by default the forward
        passes run under :func:`repro.nn.inference_mode` (no graph recording;
        identical numbers).  Pass ``inference=False`` to force the
        grad-recording path — PPO re-evaluates actions during its update via
        :meth:`evaluate_actions`, so this is only useful for benchmarking the
        two paths against each other.
        """
        if inference:
            with inference_mode():
                return self.act(observation, rng, deterministic=deterministic, inference=False)
        distribution = self.action_distribution(observation)
        if deterministic:
            action = distribution.mode()
        else:
            action = distribution.sample(rng)
        log_prob = float(distribution.log_prob(action).item())
        value = float(self.value(observation).item())
        return action, log_prob, value

    def evaluate_actions(
        self, observation: Observation, action: np.ndarray
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Differentiable ``(log_prob, value, entropy)`` for PPO updates."""
        distribution = self.action_distribution(observation)
        log_prob = distribution.log_prob(action)
        entropy = distribution.entropy()
        value = self.value(observation)
        return log_prob, value, entropy

    # ------------------------------------------------------------------
    # Batched acting (the VectorCircuitEnv fast path)
    # ------------------------------------------------------------------
    def action_distribution_batch(self, batch: BatchedObservation) -> BatchedMultiCategorical:
        """Batched ``(B, M, 3)`` action distribution over stacked observations."""
        features = self.actor_trunk.forward_batch(batch)
        logits = self.actor_head(features).reshape(
            len(batch), self.config.num_parameters, NUM_ACTION_CHOICES
        )
        return BatchedMultiCategorical(logits)

    def value_batch(self, batch: BatchedObservation) -> Tensor:
        """Batched state-value estimates, shape ``(B,)``."""
        features = self.critic_trunk.forward_batch(batch)
        return self.critic_head(features).reshape(len(batch))

    def act_batch(
        self,
        batch: BatchedObservation,
        rng: np.random.Generator,
        deterministic: bool = False,
        inference: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`act`: ``(actions (B, M), log_probs (B,), values (B,))``.

        Numerically equivalent to calling :meth:`act` per environment (same
        weights, same float64 operations over each row) while paying the
        network-forward overhead once per batch.  Stochastic sampling draws
        from ``rng`` in batch order, so the random stream differs from B
        sequential :meth:`act` calls — seed accounting, not results quality.
        By default the forward runs under :func:`repro.nn.inference_mode`
        (see :meth:`act`).
        """
        if inference:
            with inference_mode():
                return self.act_batch(batch, rng, deterministic=deterministic, inference=False)
        distribution = self.action_distribution_batch(batch)
        if deterministic:
            actions = distribution.mode()
        else:
            actions = distribution.sample(rng)
        log_probs = distribution.log_prob(actions).numpy().copy()
        values = self.value_batch(batch).numpy().copy()
        return actions, log_probs, values

    # ------------------------------------------------------------------
    # Grad-free action selection (the deployment fast path)
    # ------------------------------------------------------------------
    def actor_logits_array(self, observation: Observation) -> np.ndarray:
        """Actor logits ``(M, 3)`` via the pure-numpy forward (no tensors).

        Bitwise identical to ``action_distribution(observation).logits`` —
        every layer mirrors its graded arithmetic exactly — at a fraction of
        the cost: no critic, no graph bookkeeping, no tensor wrappers.
        """
        features = self.actor_trunk.forward_array(observation)
        return self.actor_head.forward_array(features).reshape(
            self.config.num_parameters, NUM_ACTION_CHOICES
        )

    def actor_logits_array_batch(self, batch: BatchedObservation) -> np.ndarray:
        """Batched actor logits ``(B, M, 3)`` via the pure-numpy forward."""
        features = self.actor_trunk.forward_array_batch(batch)
        return self.actor_head.forward_array(features).reshape(
            len(batch), self.config.num_parameters, NUM_ACTION_CHOICES
        )

    def select_action(
        self,
        observation: Observation,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = True,
    ) -> np.ndarray:
        """Action selection without log-prob/value bookkeeping or any graph.

        This is what deployment actually needs: the greedy (or sampled)
        action, nothing else.  Actions are identical to
        ``act(..., deterministic=...)[0]`` — greedy selection argmaxes the
        same probability array :class:`MultiCategorical` builds (identical
        tie-breaking), and sampling shares its
        :func:`~repro.nn.distributions.sample_from_probs` implementation,
        consuming the same draws from ``rng``.
        """
        # The probabilities are derived exactly as MultiCategorical does
        # (exp of the log-softmax twin), so greedy tie-breaking and sampled
        # draws match the distribution-based act() path bit for bit.
        probs = np.exp(log_softmax_array(self.actor_logits_array(observation)))
        if deterministic:
            return np.argmax(probs, axis=-1).astype(np.int64)
        if rng is None:
            raise ValueError("stochastic action selection requires an rng")
        return sample_from_probs(probs, rng)

    def select_action_batch(
        self,
        batch: BatchedObservation,
        rng: Optional[np.random.Generator] = None,
        deterministic: bool = True,
    ) -> np.ndarray:
        """Batched :meth:`select_action`: one ``(B, M)`` action matrix.

        Sampling mirrors :class:`BatchedMultiCategorical` (one ``(B, M, 1)``
        draw block from ``rng``); greedy selection is a per-row argmax of the
        batched logits.
        """
        probs = np.exp(log_softmax_array(self.actor_logits_array_batch(batch)))
        if deterministic:
            return np.argmax(probs, axis=-1).astype(np.int64)
        if rng is None:
            raise ValueError("stochastic action selection requires an rng")
        return sample_from_probs(probs, rng)


# ----------------------------------------------------------------------
# Named constructors for the four compared methods
# ----------------------------------------------------------------------
def _base_config(env, **overrides) -> PolicyConfig:
    config = PolicyConfig(
        num_parameters=env.num_parameters,
        spec_feature_dim=env.spec_feature_dimension,
        node_feature_dim=env.node_feature_dimension,
        num_graph_nodes=env.num_graph_nodes,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    config.__post_init__()
    return config


def _gcn_fc_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """The paper's GCN-FC multimodal policy."""
    config = _base_config(env, use_graph=True, graph_kind="gcn", use_spec_encoder=True, **overrides)
    return ActorCriticPolicy(config, rng)


def _gat_fc_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """The paper's GAT-FC multimodal policy (best-performing variant)."""
    config = _base_config(env, use_graph=True, graph_kind="gat", use_spec_encoder=True, **overrides)
    return ActorCriticPolicy(config, rng)


def _baseline_a_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Baseline A (AutoCkt [10]): FCNN over spec vector + parameters, no graph."""
    config = _base_config(env, use_graph=False, use_spec_encoder=True, **overrides)
    return ActorCriticPolicy(config, rng)


def _baseline_b_policy(
    env,
    rng: Optional[np.random.Generator] = None,
    graph_kind: str = "gcn",
    use_dynamic_node_features: bool = True,
    **overrides,
) -> ActorCriticPolicy:
    """Baseline B (GCN-RL [11]): graph branch only, no spec-coupling FCNN.

    By default this is the paper's "conservative" upgraded implementation
    (full topology, dynamic node features); pass
    ``use_dynamic_node_features=False`` to reproduce the original
    static-technology-feature variant used in the ablation bench.
    """
    config = _base_config(
        env,
        use_graph=True,
        graph_kind=graph_kind,
        use_spec_encoder=False,
        use_dynamic_node_features=use_dynamic_node_features,
        **overrides,
    )
    return ActorCriticPolicy(config, rng)


#: Mapping of method name (as used in figures/tables) to constructor.  The
#: :mod:`repro.api` catalog registers exactly these builders under the same
#: IDs; prefer ``repro.make_policy("gcn_fc", env)`` in new code.
POLICY_FACTORIES = {
    "gcn_fc": _gcn_fc_policy,
    "gat_fc": _gat_fc_policy,
    "baseline_a": _baseline_a_policy,
    "baseline_b": _baseline_b_policy,
}


# ----------------------------------------------------------------------
# Deprecated entry points (kept importable; use repro.make_policy instead)
# ----------------------------------------------------------------------
def make_gcn_fc_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Deprecated: use ``repro.make_policy("gcn_fc", env, ...)``."""
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_gcn_fc_policy", "repro.make_policy('gcn_fc', env, ...)")
    return _gcn_fc_policy(env, rng, **overrides)


def make_gat_fc_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Deprecated: use ``repro.make_policy("gat_fc", env, ...)``."""
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_gat_fc_policy", "repro.make_policy('gat_fc', env, ...)")
    return _gat_fc_policy(env, rng, **overrides)


def make_baseline_a_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Deprecated: use ``repro.make_policy("baseline_a", env, ...)``."""
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_baseline_a_policy", "repro.make_policy('baseline_a', env, ...)")
    return _baseline_a_policy(env, rng, **overrides)


def make_baseline_b_policy(
    env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Deprecated: use ``repro.make_policy("baseline_b", env, ...)``."""
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_baseline_b_policy", "repro.make_policy('baseline_b', env, ...)")
    return _baseline_b_policy(env, rng, **overrides)


def make_policy(
    name: str, env, rng: Optional[np.random.Generator] = None, **overrides
) -> ActorCriticPolicy:
    """Deprecated: use ``repro.make_policy(name, env, ...)`` (registry-backed)."""
    from repro.api.catalog import make_policy as _api_make_policy
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("repro.agents.make_policy", "repro.make_policy(name, env, ...)")
    return _api_make_policy(name, env, rng, **overrides)
