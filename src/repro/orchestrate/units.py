"""Work units: the serializable quantum of orchestrated execution.

A sweep is sharded into independent :class:`WorkUnit`\\ s.  Each unit is pure
data — a dotted-path ``runner`` naming a top-level function importable in any
worker process, plus a JSON ``payload`` the runner consumes — so units cross
process boundaries by value and never drag live objects through pickle.

Content addressing
------------------
``WorkUnit.key()`` is the SHA-256 of the canonical JSON of
``{"runner", "payload"}``.  Two units with the same runner and payload are
*the same experiment*, whoever expanded them and whenever: the artifact store
uses the key as the file name, which is what makes sweeps resumable (re-built
units rediscover their previous results) and deduplicated (two overlapping
sweeps share artifacts).  Runtime knobs that cannot change the result — the
disk-cache directory, worker counts — travel in the separate ``execution``
mapping, which is deliberately excluded from the key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


def canonical_json(data: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _require_mapping(value: Any, what: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise TypeError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


#: Runner executing one serialized :class:`repro.api.RunConfig` (the default
#: unit kind a :class:`~repro.orchestrate.sweep.SweepConfig` expands into).
DEFAULT_RUNNER = "repro.orchestrate.worker:run_config_unit"


@dataclass
class WorkUnit:
    """One independent, serializable piece of a sweep.

    Attributes
    ----------
    unit_id:
        Human-readable name (``"random+opamp-p2s-v0+s0"``); used in progress
        output and manifests.  Not part of the content address.
    runner:
        ``"package.module:function"`` dotted path of the executing function,
        resolved inside the worker process.  The function receives one dict:
        ``{**payload, **execution}``.
    payload:
        JSON data that *defines* the experiment (hashed into the key).
    execution:
        JSON data that only affects *how* the unit runs — cache directories
        and similar — excluded from the key.
    """

    unit_id: str
    runner: str = DEFAULT_RUNNER
    payload: Dict[str, Any] = field(default_factory=dict)
    execution: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.unit_id:
            raise ValueError("WorkUnit.unit_id must be non-empty")
        if ":" not in self.runner:
            raise ValueError(
                f"runner must be a 'package.module:function' path, got {self.runner!r}"
            )
        self.payload = _require_mapping(self.payload, "WorkUnit.payload")
        self.execution = _require_mapping(self.execution, "WorkUnit.execution")

    def key(self) -> str:
        """Content address of the unit (SHA-256 over runner + payload)."""
        identity = canonical_json({"runner": self.runner, "payload": self.payload})
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit_id": self.unit_id,
            "runner": self.runner,
            "payload": dict(self.payload),
            "execution": dict(self.execution),
            "key": self.key(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkUnit":
        data = _require_mapping(data, "WorkUnit")
        return cls(
            unit_id=data["unit_id"],
            runner=data.get("runner", DEFAULT_RUNNER),
            payload=data.get("payload") or {},
            execution=data.get("execution") or {},
        )


@dataclass
class UnitRecord:
    """Outcome of executing one :class:`WorkUnit` (what artifacts persist).

    ``status`` is ``"completed"`` or ``"failed"``; failed records carry the
    worker's full traceback in ``error`` and are *not* treated as done by the
    resume logic — a re-invoked sweep re-runs exactly the failed and missing
    units.
    """

    unit_id: str
    key: str
    runner: str
    payload: Dict[str, Any]
    status: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "unit_id": self.unit_id,
            "key": self.key,
            "runner": self.runner,
            "payload": dict(self.payload),
            "status": self.status,
            "result": self.result,
            "error": self.error,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UnitRecord":
        data = _require_mapping(data, "UnitRecord")
        status = data.get("status")
        if status not in ("completed", "failed"):
            raise ValueError(f"UnitRecord.status must be completed|failed, got {status!r}")
        return cls(
            unit_id=data["unit_id"],
            key=data["key"],
            runner=data.get("runner", DEFAULT_RUNNER),
            payload=data.get("payload") or {},
            status=status,
            result=data.get("result"),
            error=data.get("error"),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
        )
