"""Corner-lane batched PVT sweeps: K corners in one shot vs K clone calls.

``repro.corners`` claims that a five-corner sweep through the batched
kernel path (one kernel, per-lane technology constants) beats looping a
per-corner simulator clone (identical physics per ``tests/corners``'s
bitwise parity suite).  This bench measures sweeps-per-second of the same
:class:`~repro.corners.CornerSimulator` with ``batched=True`` versus
``batched=False`` over a fixed stream of sampled sizings.

The MNA methods carry the hard ≥3× floor — each sequential corner re-builds
and re-solves its own small-signal system, while the batched path stacks
all corners into the one LU solve the compiled kernels were built for (CI
re-asserts the floor from the recorded ``corner_batched_sweeps_per_s`` /
``corner_sequential_sweeps_per_s`` via ``compare_bench.py --floor``).  The
analytic methods are recorded under separate ``*_analytic`` keys with a
sanity floor only: their per-corner cost is a few closed-form scalar
expressions, so the batched path's array tiling buys nothing and costs a
little (measured ~0.8-1.0x) — the corner lanes exist for the solver-bound
methods, and the recorded ratio keeps that trade-off visible.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import BENCHMARK_BUILDERS
from repro.corners import CornerSimulator, default_corner_set
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator

#: Sampled sizings per timed measurement; each sweep is five corners.
NUM_SIZINGS = 40

CASES = {
    "two_stage_opamp-mna": ("two_stage_opamp", lambda: OpAmpSimulator(method="mna")),
    "current_mirror_ota-mna": (
        "current_mirror_ota", lambda: CmOtaSimulator(method="mna")
    ),
    "two_stage_opamp-analytic": ("two_stage_opamp", lambda: OpAmpSimulator()),
    "current_mirror_ota-analytic": ("current_mirror_ota", lambda: CmOtaSimulator()),
}


def _sweep_throughput(case: str) -> tuple:
    """Sweeps/s of the same corner simulator, batched vs sequential."""
    circuit, factory = CASES[case]
    benchmark_def = BENCHMARK_BUILDERS[circuit]()
    rng = np.random.default_rng(0)
    netlists = []
    for _ in range(NUM_SIZINGS):
        netlist = benchmark_def.fresh_netlist()
        benchmark_def.design_space.apply_to_netlist(
            netlist, benchmark_def.design_space.sample(rng)
        )
        netlists.append(netlist)

    throughput = {}
    for batched in (True, False):
        simulator = CornerSimulator(
            factory(), corner_set=default_corner_set(),
            spec_space=benchmark_def.spec_space, batched=batched,
        )
        assert simulator.batched is batched
        simulator.simulate(netlists[0])  # kernel build / warm-up off the clock
        start = time.perf_counter()
        for netlist in netlists:
            simulator.simulate(netlist)
        throughput[batched] = NUM_SIZINGS / (time.perf_counter() - start)
    return throughput[True], throughput[False]


@pytest.mark.parametrize(
    "case", ["two_stage_opamp-mna", "current_mirror_ota-mna"]
)
def test_corner_sweep_batched_speedup_mna(benchmark, case):
    """Corner lanes through the stacked-MNA solve: ≥3× sweeps/s."""
    batched, sequential = benchmark.pedantic(
        lambda: _sweep_throughput(case), rounds=1, iterations=1
    )
    speedup = batched / sequential
    benchmark.extra_info.update(
        {
            "case": case,
            "num_corners": len(default_corner_set()),
            "corner_batched_sweeps_per_s": round(batched, 1),
            "corner_sequential_sweeps_per_s": round(sequential, 1),
            "corner_batched_speedup": round(speedup, 2),
        }
    )
    # Measured 17-20x on dedicated hardware; 3x is the subsystem's
    # acceptance floor (also re-asserted by CI's compare_bench --floor on
    # the recorded extra_info, so the gate survives baseline regeneration).
    assert speedup >= 3.0, (
        f"batched corner sweep of {case} regressed: measured {speedup:.2f}x "
        "vs sequential (floor 3x, expect >= 17x on unloaded hardware)"
    )


@pytest.mark.parametrize(
    "case", ["two_stage_opamp-analytic", "current_mirror_ota-analytic"]
)
def test_corner_sweep_batched_speedup_analytic(benchmark, case):
    """Analytic methods: dispatch-bound, so only a sanity floor."""
    batched, sequential = benchmark.pedantic(
        lambda: _sweep_throughput(case), rounds=1, iterations=1
    )
    speedup = batched / sequential
    benchmark.extra_info.update(
        {
            "case": case,
            "num_corners": len(default_corner_set()),
            # Distinct key names keep these entries out of the CI --floor
            # gate, which asserts the 3x contract on the MNA entries only.
            "corner_batched_sweeps_per_s_analytic": round(batched, 1),
            "corner_sequential_sweeps_per_s_analytic": round(sequential, 1),
            "corner_batched_speedup": round(speedup, 2),
        }
    )
    # Batched analytic sweeps measure ~0.8-1.0x (tiling overhead vs five
    # near-free closed-form evaluations); the floor only rules out a
    # pathologically pessimized batched path.
    assert speedup >= 0.4, (
        f"batched corner sweep of {case} pathologically slow: {speedup:.2f}x"
    )
