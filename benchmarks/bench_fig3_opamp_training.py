"""Fig. 3, top row (two-stage op-amp) — RL training curves.

The paper plots mean episode reward, mean episode length and deployment
accuracy versus trained episodes for GAT-FC, GCN-FC, Baseline A (AutoCkt) and
Baseline B (GCN-RL).  Each parametrized case trains one method at reduced
budget and records the three end-of-training metrics; the expected *shape*
(reward rising from its untrained level, episode length at or below the
50-step budget, accuracy in [0, 1]) is asserted.
"""

from __future__ import annotations

import pytest

from repro.agents import evaluate_deployment
from repro.experiments import run_training_experiment
from repro.experiments.configs import RL_METHODS


@pytest.mark.parametrize("method", RL_METHODS)
def test_fig3_opamp_training_curves(benchmark, scale, method):
    def run():
        result = run_training_experiment(
            "two_stage_opamp", method, scale=scale, seed=0, track_accuracy=False
        )
        evaluation = evaluate_deployment(
            result.env, result.policy, num_targets=scale.eval_specs, seed=999
        )
        return result, evaluation

    result, evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    history = result.history

    rewards = history.series("mean_episode_reward")
    lengths = history.series("mean_episode_length")

    # Shape checks mirroring the paper's curves.
    assert history.records[-1].episodes_seen == scale.opamp_training_episodes
    assert rewards[-1] > rewards[0] - 1e-9 or max(rewards) > rewards[0]
    assert 1.0 <= lengths[-1] <= 50.0
    assert 0.0 <= evaluation.accuracy <= 1.0

    benchmark.extra_info.update(
        {
            "method": method,
            "episodes": int(history.records[-1].episodes_seen),
            "final_mean_episode_reward": float(rewards[-1]),
            "final_mean_episode_length": float(lengths[-1]),
            "deployment_accuracy": float(evaluation.accuracy),
            "mean_deployment_steps": float(evaluation.mean_steps),
        }
    )
