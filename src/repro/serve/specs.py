"""Parsing of the ``specs.json`` documents fed to ``repro.run deploy``.

Two equivalent shapes are accepted (see the README's "Saving and serving
policies" section):

* an object with a ``targets`` list and optional document-wide defaults::

      {"env": "opamp-p2s-v0", "max_steps": 60,
       "targets": [{"gain": 350.0, "bandwidth": 1.8e7, ...}, ...]}

* a bare list of targets.

Each target is either a plain ``{spec name: value}`` mapping, or a wrapper
``{"specs": {...}, "env": ..., "max_steps": ...}`` overriding the document
defaults for that one request.  Targets with no ``env`` anywhere fall back
to the serving checkpoint's recorded environment ID.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Union

from repro.serve.service import ServeRequest


def _parse_target(
    entry: Any,
    position: int,
    default_env: Optional[str],
    default_max_steps: Optional[int],
) -> ServeRequest:
    if not isinstance(entry, Mapping):
        raise ValueError(
            f"target #{position} must be an object, got {type(entry).__name__}"
        )
    if "specs" in entry:
        unknown = set(entry) - {"specs", "env", "max_steps"}
        if unknown:
            raise ValueError(
                f"target #{position} has unknown keys {sorted(unknown)} "
                "(expected 'specs', 'env', 'max_steps')"
            )
        specs = entry["specs"]
        if not isinstance(specs, Mapping):
            raise ValueError(f"target #{position}: 'specs' must be an object")
        env_id = entry.get("env", default_env)
        max_steps = entry.get("max_steps", default_max_steps)
    else:
        specs = entry
        env_id = default_env
        max_steps = default_max_steps
    try:
        target = {str(name): float(value) for name, value in specs.items()}
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"target #{position} has a non-numeric specification value: {exc}"
        ) from exc
    if not target:
        raise ValueError(f"target #{position} is empty")
    return ServeRequest(
        target_specs=target,
        env_id=env_id,
        max_steps=int(max_steps) if max_steps is not None else None,
    )


def parse_spec_requests(document: Any) -> List[ServeRequest]:
    """Turn a parsed ``specs.json`` document into :class:`ServeRequest` objects."""
    default_env: Optional[str] = None
    default_max_steps: Optional[int] = None
    if isinstance(document, Mapping):
        unknown = set(document) - {"targets", "env", "max_steps"}
        if unknown:
            raise ValueError(
                f"unknown top-level keys {sorted(unknown)} "
                "(expected 'targets', 'env', 'max_steps')"
            )
        if "targets" not in document:
            raise ValueError("a spec document object needs a 'targets' list")
        default_env = document.get("env")
        default_max_steps = document.get("max_steps")
        targets: Sequence[Any] = document["targets"]
    elif isinstance(document, Sequence) and not isinstance(document, (str, bytes)):
        targets = document
    else:
        raise ValueError(
            "a spec document must be an object with a 'targets' list or a bare "
            f"list of targets, got {type(document).__name__}"
        )
    if not isinstance(targets, Sequence) or isinstance(targets, (str, bytes)):
        raise ValueError("'targets' must be a list")
    if not targets:
        raise ValueError("the spec document contains no targets")
    return [
        _parse_target(entry, position, default_env, default_max_steps)
        for position, entry in enumerate(targets)
    ]


def load_spec_requests(path: Union[str, Path]) -> List[ServeRequest]:
    """Read and parse a ``specs.json`` file."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    return parse_spec_requests(document)
