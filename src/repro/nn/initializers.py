"""Weight initialization schemes used by the policy/value networks.

The paper trains small networks (a few fully connected and graph layers), so
initialization quality matters for stable PPO training.  We provide the
standard Glorot/Xavier and He schemes plus an orthogonal initializer, which
is the common choice for actor-critic output heads.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def xavier_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0
) -> Tensor:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` matrix."""
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> Tensor:
    """He (Kaiming) normal initialization, appropriate for ReLU layers."""
    std = np.sqrt(2.0 / fan_in)
    data = rng.normal(0.0, std, size=(fan_in, fan_out))
    return Tensor(data, requires_grad=True)


def orthogonal(fan_in: int, fan_out: int, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Orthogonal initialization (rows/columns orthonormal, scaled by ``gain``)."""
    normal = rng.normal(0.0, 1.0, size=(fan_in, fan_out))
    # QR on the taller orientation so Q has orthonormal columns.
    if fan_in < fan_out:
        q, r = np.linalg.qr(normal.T)
        q = q.T
    else:
        q, r = np.linalg.qr(normal)
    # Make the decomposition deterministic in sign.
    q *= np.sign(np.diag(r))[: min(fan_in, fan_out)].reshape(
        (1, -1) if fan_in >= fan_out else (-1, 1)
    )
    return Tensor(gain * q[:fan_in, :fan_out], requires_grad=True)


def zeros(*shape: int) -> Tensor:
    """All-zeros trainable tensor (bias initialization)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def constant(value: float, *shape: int) -> Tensor:
    """Constant-valued trainable tensor."""
    return Tensor(np.full(shape, float(value)), requires_grad=True)


_INITIALIZERS = {
    "xavier": xavier_uniform,
    "he": he_normal,
    "orthogonal": orthogonal,
}


def get_initializer(name: str):
    """Look up an initializer by name (``xavier``, ``he`` or ``orthogonal``)."""
    try:
        return _INITIALIZERS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown initializer '{name}', expected one of {sorted(_INITIALIZERS)}"
        ) from exc
