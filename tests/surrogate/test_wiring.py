"""Surrogate knobs across the front doors: make_env, serving, run configs."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.parallel import VectorCircuitEnv
from repro.serve.service import ServeStats
from repro.surrogate import SurrogateConfig, TieredSimulator, save_surrogate, train_surrogate


class TestMakeEnv:
    def test_surrogate_dir_installs_a_tier(self, tmp_path):
        corpus = tmp_path / "corpus"
        env = repro.make_env("opamp-p2s-v0", seed=0, surrogate_dir=corpus)
        assert isinstance(env.simulator, TieredSimulator)
        assert env.simulator.surrogate is None  # exact-only until trained
        env.reset()
        env.step(np.zeros(env.benchmark.num_parameters, dtype=np.int64))
        assert list(corpus.glob("*.json")), "exact results must persist to the corpus"

    def test_surrogate_path_is_loaded(self, tmp_path):
        corpus = tmp_path / "corpus"
        env = repro.make_env("opamp-p2s-v0", seed=0, surrogate_dir=corpus)
        repro.make_optimizer("random", budget=40, stop_when_met=False).optimize(env, seed=0)
        config = SurrogateConfig(hidden=(8, 8), epochs=60, min_train_points=8, ensemble_size=2)
        surrogate, _ = train_surrogate(repro.harvest_corpus(corpus), config=config)
        path = save_surrogate(tmp_path / "model.npz", surrogate)

        warm = repro.make_env("opamp-p2s-v0", seed=0, surrogate=str(path))
        assert isinstance(warm.simulator, TieredSimulator)
        assert warm.simulator.surrogate is not None
        assert warm.simulator.surrogate.circuit == surrogate.circuit

    def test_vectorized_envs_share_one_tier(self, tmp_path):
        batch = repro.make_env(
            "opamp-p2s-v0", seed=0, num_envs=3, surrogate_dir=tmp_path / "corpus"
        )
        assert isinstance(batch, VectorCircuitEnv)
        assert isinstance(batch.cache, TieredSimulator)

    def test_cache_size_alone_keeps_the_plain_cache(self):
        env = repro.make_env("opamp-p2s-v0", seed=0, cache_size=64)
        assert type(env.simulator).__name__ == "SimulationCache"


class TestServeStats:
    def test_tier_counters_accumulate_and_serialize(self):
        stats = ServeStats()
        stats.record_tiers(3, 2, 2)
        stats.record_tiers(1, 0, 0)
        document = stats.to_dict()
        assert document["surrogate_hits"] == 4
        assert document["trust_rejections"] == 2
        assert document["exact_fallbacks"] == 2
        assert {"episodes", "design_steps", "accuracy", "by_env"} <= set(document)


class TestDeploymentService:
    @pytest.fixture
    def checkpoint_path(self, tmp_path):
        env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=6)
        policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        return repro.save_checkpoint(
            tmp_path / "policy.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
        )

    def test_surrogate_dir_routes_to_a_tier(self, checkpoint_path, tmp_path):
        service = repro.DeploymentService.from_checkpoint(
            checkpoint_path, batch_size=2, surrogate_dir=tmp_path / "corpus"
        )
        targets = repro.make_env("opamp-p2s-v0", seed=0).benchmark.spec_space.sample_batch(
            np.random.default_rng(1), 3
        )
        responses = service.serve([dict(target) for target in targets])
        assert len(responses) == 3
        assert list((tmp_path / "corpus").glob("*.json"))
        document = service.stats_dict()
        assert document["surrogate_hits"] == 0  # no model attached: exact only
        cache_stats = document["caches"]["opamp-p2s-v0"]
        assert cache_stats["misses"] > 0
        assert {"surrogate_hits", "trust_rejections", "exact_fallbacks"} <= set(cache_stats)

    def test_serving_is_identical_with_and_without_an_untrained_tier(
        self, checkpoint_path, tmp_path
    ):
        targets = repro.make_env("opamp-p2s-v0", seed=0).benchmark.spec_space.sample_batch(
            np.random.default_rng(2), 3
        )
        plain = repro.DeploymentService.from_checkpoint(checkpoint_path, batch_size=2)
        tiered = repro.DeploymentService.from_checkpoint(
            checkpoint_path, batch_size=2, surrogate_dir=tmp_path / "corpus"
        )
        for a, b in zip(
            plain.serve([dict(target) for target in targets]),
            tiered.serve([dict(target) for target in targets]),
        ):
            assert a.steps == b.steps
            assert a.success == b.success
            assert a.final_specs == b.final_specs
