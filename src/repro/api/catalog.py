"""The component catalog: every environment, policy, and optimizer ID.

This module is the single front door to the codebase.  It owns the three
global registries and the canonical builder functions behind the public
``repro.make_env`` / ``repro.make_policy`` / ``repro.make_optimizer``
helpers:

=============  =====================================================
kind           registered IDs
=============  =====================================================
environments   ``opamp-p2s-v0``, ``rf_pa-fine-v0``, ``rf_pa-coarse-v0``,
               ``rf_pa-fom-v0``, ``rf_pa-fom-coarse-v0``, and the
               topology zoo: ``folded_cascode-p2s-v0``,
               ``current_mirror_ota-p2s-v0``,
               ``common_source_lna-p2s-v0`` (each also as a
               ``*-random-v0`` variant starting episodes from random
               grid points)
policies       ``gcn_fc``, ``gat_fc``, ``baseline_a``, ``baseline_b``
optimizers     ``ppo``, ``genetic``, ``bayesian``, ``random``,
               ``supervised``
=============  =====================================================

Environment IDs follow the gym convention ``<circuit>-<task/fidelity>-v<N>``;
legacy names (``"genetic_algorithm"``, ``"bayesian_optimization"``, ...) are
registered as aliases so strings stored in old experiment configs keep
resolving.  Third parties extend the catalog with the same decorators::

    @register_env("my_lna-p2s-v0", description="LNA sizing environment")
    def _my_lna(seed=None, **kwargs):
        return CircuitDesignEnv(...)
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.api.registry import Registry
from repro.circuits.library.common_source_lna import build_common_source_lna
from repro.circuits.library.current_mirror_ota import build_current_mirror_ota
from repro.circuits.library.folded_cascode import build_folded_cascode
from repro.circuits.library.rf_pa import build_rf_pa
from repro.circuits.library.two_stage_opamp import build_two_stage_opamp
from repro.corners import CornerSimulator, YieldP2SReward, default_corner_set
from repro.env.circuit_env import CircuitDesignEnv
from repro.env.reward import FomReward, P2SReward
from repro.parallel.cache import DEFAULT_CACHE_SIZE, SimulationCache
from repro.parallel.vector_env import VectorCircuitEnv
from repro.simulation.folded_cascode_sim import FoldedCascodeSimulator
from repro.simulation.lna_sim import LnaSimulator
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator
from repro.simulation.pa_sim import RfPaCoarseSimulator, RfPaFineSimulator

#: What an environment factory may hand back: the sequential environment, or
#: a vectorized batch of them when ``num_envs > 1`` is requested.
EnvironmentLike = Union[CircuitDesignEnv, VectorCircuitEnv]

#: The three global registries behind the ``repro.make_*`` helpers.
ENVS = Registry("environment")
POLICIES = Registry("policy")
OPTIMIZERS = Registry("optimizer")

# Decorator aliases for third-party registration.
register_env = ENVS.register
register_policy = POLICIES.register
register_optimizer = OPTIMIZERS.register


# ----------------------------------------------------------------------
# Environments
# ----------------------------------------------------------------------
def vectorizable(builder: Callable[..., CircuitDesignEnv]) -> Callable[..., EnvironmentLike]:
    """Give an environment factory the ``num_envs`` / ``cache_size`` /
    ``compile`` / ``surrogate`` / ``surrogate_dir`` knobs.

    ``make_env(id, num_envs=k)`` then returns a
    :class:`repro.parallel.VectorCircuitEnv` of ``k`` sub-environments
    (seeded ``seed, seed + 1, ...``) sharing one
    :class:`~repro.parallel.SimulationCache`; ``num_envs=1`` (the default)
    returns the plain sequential environment, optionally with a cached
    simulator when ``cache_size`` is set.

    ``surrogate`` (a trained :class:`repro.surrogate.SpecSurrogate` or a
    checkpoint path) and/or ``surrogate_dir`` (a persistent corpus
    directory) wrap the simulator in a
    :class:`repro.surrogate.TieredSimulator` instead — the learned tier
    answers trusted queries, exact results are persisted into the corpus —
    and a vectorized batch shares that one tier.  Third-party factories
    registered via :func:`register_env` can apply the same decorator.

    ``compile=True`` (with ``num_envs > 1``) turns on the compiled episode
    plan of :mod:`repro.compile`: the vectorized batch is stepped through a
    traced, bitwise-verified fast path when the topology supports it, and
    falls back to the interpreted loop when it does not.
    """

    @functools.wraps(builder)
    def factory(
        seed: Optional[int] = None,
        num_envs: int = 1,
        cache_size: Optional[int] = None,
        compile: bool = False,
        surrogate: Any = None,
        surrogate_dir: Optional[str] = None,
        **kwargs: Any,
    ) -> EnvironmentLike:
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        env = builder(seed=seed, **kwargs)
        if surrogate is not None or surrogate_dir is not None:
            # Local import: the surrogate package pulls the nn stack, which
            # plain environment construction should not pay for.
            from repro.surrogate import TieredSimulator

            env.simulator = TieredSimulator(
                env.simulator,
                surrogate=surrogate,
                directory=surrogate_dir,
                max_entries=cache_size if cache_size is not None else DEFAULT_CACHE_SIZE,
            )
        elif num_envs == 1 and cache_size is not None:
            env.simulator = SimulationCache(env.simulator, max_entries=cache_size)
        if num_envs == 1:
            return env
        # from_env reuses an existing SimulationCache (which the tiered
        # simulator is) rather than double-wrapping it.
        return VectorCircuitEnv.from_env(
            env,
            num_envs=num_envs,
            seed=seed,
            cache_size=cache_size if cache_size is not None else DEFAULT_CACHE_SIZE,
            compile=compile,
        )

    return factory


@register_env(
    "opamp-p2s-v0",
    description="Two-stage op-amp, P2S (Eq. 1) reward, analytic simulator, 50-step episodes",
    aliases=("opamp-v0",),
    metadata={"circuit": "two_stage_opamp", "task": "p2s", "fidelity": "fine"},
)
@vectorizable
def _opamp_p2s_v0(
    seed: Optional[int] = None,
    max_steps: int = 50,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    benchmark = build_two_stage_opamp()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=OpAmpSimulator(),
        reward_fn=P2SReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


@register_env(
    "opamp-mna-v0",
    description="Two-stage op-amp, P2S reward, MNA small-signal AC simulator, 50-step episodes",
    metadata={"circuit": "two_stage_opamp", "task": "p2s", "fidelity": "mna"},
)
@vectorizable
def _opamp_mna_p2s_v0(
    seed: Optional[int] = None,
    max_steps: int = 50,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    benchmark = build_two_stage_opamp()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=OpAmpSimulator(method="mna"),
        reward_fn=P2SReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


@register_env(
    "current_mirror_ota-mna-v0",
    description="Current-mirror OTA, P2S reward, MNA small-signal AC simulator, 40-step episodes",
    metadata={"circuit": "current_mirror_ota", "task": "p2s", "fidelity": "mna"},
)
@vectorizable
def _cm_ota_mna_p2s_v0(
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    benchmark = build_current_mirror_ota()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=CmOtaSimulator(method="mna"),
        reward_fn=P2SReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


def _rf_pa_env(
    simulator,
    reward_kind: str,
    seed: Optional[int],
    max_steps: int,
    initial_sizing: str,
    goal_tolerance: float,
) -> CircuitDesignEnv:
    benchmark = build_rf_pa()
    if reward_kind == "fom":
        reward_fn = FomReward(benchmark.spec_space)
    else:
        reward_fn = P2SReward(benchmark.spec_space)
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=simulator,
        reward_fn=reward_fn,
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


@register_env(
    "rf_pa-fine-v0",
    description="GaN RF PA, P2S reward, fine (harmonic-balance style) simulator, 30-step episodes",
    aliases=("rf_pa-p2s-v0", "rf_pa-v0"),
    metadata={"circuit": "rf_pa", "task": "p2s", "fidelity": "fine"},
)
@vectorizable
def _rf_pa_fine_v0(
    seed: Optional[int] = None,
    max_steps: int = 30,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    return _rf_pa_env(RfPaFineSimulator(), "p2s", seed, max_steps, initial_sizing, goal_tolerance)


@register_env(
    "rf_pa-coarse-v0",
    description="GaN RF PA, P2S reward, coarse (DC-estimate) training simulator, 30-step episodes",
    metadata={"circuit": "rf_pa", "task": "p2s", "fidelity": "coarse"},
)
@vectorizable
def _rf_pa_coarse_v0(
    seed: Optional[int] = None,
    max_steps: int = 30,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    return _rf_pa_env(RfPaCoarseSimulator(), "p2s", seed, max_steps, initial_sizing, goal_tolerance)


@register_env(
    "rf_pa-fom-v0",
    description="GaN RF PA, FoM (P + 3E) reward, fine simulator (Fig. 7 scoring)",
    aliases=("rf_pa-fom-fine-v0",),
    metadata={"circuit": "rf_pa", "task": "fom", "fidelity": "fine"},
)
@vectorizable
def _rf_pa_fom_v0(
    seed: Optional[int] = None,
    max_steps: int = 30,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    return _rf_pa_env(RfPaFineSimulator(), "fom", seed, max_steps, initial_sizing, goal_tolerance)


@register_env(
    "rf_pa-fom-coarse-v0",
    description="GaN RF PA, FoM reward, coarse simulator (Fig. 7 transfer training)",
    metadata={"circuit": "rf_pa", "task": "fom", "fidelity": "coarse"},
)
@vectorizable
def _rf_pa_fom_coarse_v0(
    seed: Optional[int] = None,
    max_steps: int = 30,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    return _rf_pa_env(RfPaCoarseSimulator(), "fom", seed, max_steps, initial_sizing, goal_tolerance)


# ----------------------------------------------------------------------
# Topology zoo: the three PR 3 circuits, each with a P2S environment that
# starts episodes from the center sizing and a ``-random-v0`` variant that
# starts from a uniformly sampled grid point (scenario diversity for
# training; both accept the usual num_envs / cache_size knobs).
# ----------------------------------------------------------------------
def _register_zoo_circuit(
    circuit: str, builder: Callable[[], Any], simulator_factory: Callable[[], Any],
    description: str,
) -> None:
    def _build_env(
        seed: Optional[int] = None,
        max_steps: Optional[int] = None,
        initial_sizing: str = "center",
        goal_tolerance: float = 0.0,
    ) -> CircuitDesignEnv:
        benchmark = builder()
        return CircuitDesignEnv(
            benchmark=benchmark,
            simulator=simulator_factory(),
            reward_fn=P2SReward(benchmark.spec_space),
            max_steps=max_steps,
            initial_sizing=initial_sizing,
            goal_tolerance=goal_tolerance,
            seed=seed,
        )

    register_env(
        f"{circuit}-p2s-v0",
        vectorizable(_build_env),
        description=description,
        aliases=(f"{circuit}-v0",),
        metadata={"circuit": circuit, "task": "p2s", "fidelity": "fine"},
    )
    register_env(
        f"{circuit}-random-v0",
        vectorizable(_build_env),
        description=f"{description} (episodes start from random grid points)",
        defaults={"initial_sizing": "random"},
        metadata={"circuit": circuit, "task": "p2s", "fidelity": "fine",
                  "initial_sizing": "random"},
    )


_register_zoo_circuit(
    "folded_cascode", build_folded_cascode, FoldedCascodeSimulator,
    "Folded-cascode op-amp, P2S reward, analytic simulator, 50-step episodes",
)
_register_zoo_circuit(
    "current_mirror_ota", build_current_mirror_ota, CmOtaSimulator,
    "Current-mirror OTA, P2S reward (slew-rate spec), analytic simulator, 40-step episodes",
)
_register_zoo_circuit(
    "common_source_lna", build_common_source_lna, LnaSimulator,
    "Common-source LNA at 2.4 GHz, P2S reward (noise-figure spec), 30-step episodes",
)


# ----------------------------------------------------------------------
# PVT corner variants: every zoo topology as a ``*-corners-v0`` environment
# whose simulator sweeps the default five-corner set per step (batched as
# extra kernel/MNA lanes where a compiled twin exists) and whose reward is
# the yield-aware worst-corner P2S reward.  Same machinery as the rest of
# the catalog, so num_envs / cache_size / compile / surrogate knobs apply
# (compiled episode plans fall back to the interpreted path — the corner
# simulator type has no traced twin).
# ----------------------------------------------------------------------
def _register_corner_variant(
    env_id: str, circuit: str, builder: Callable[[], Any],
    simulator_factory: Callable[[], Any], description: str,
) -> None:
    def _build_env(
        seed: Optional[int] = None,
        max_steps: Optional[int] = None,
        initial_sizing: str = "center",
        goal_tolerance: float = 0.0,
        corner_set: Optional[Any] = None,
        batched_corners: bool = True,
    ) -> CircuitDesignEnv:
        benchmark = builder()
        corners = corner_set if corner_set is not None else default_corner_set()
        simulator = CornerSimulator(
            simulator_factory(),
            corner_set=corners,
            spec_space=benchmark.spec_space,
            batched=batched_corners,
        )
        return CircuitDesignEnv(
            benchmark=benchmark,
            simulator=simulator,
            reward_fn=YieldP2SReward(benchmark.spec_space, corner_set=corners),
            max_steps=max_steps,
            initial_sizing=initial_sizing,
            goal_tolerance=goal_tolerance,
            seed=seed,
        )

    register_env(
        env_id,
        vectorizable(_build_env),
        description=description,
        metadata={"circuit": circuit, "task": "p2s-corners", "fidelity": "fine"},
    )


_register_corner_variant(
    "opamp-corners-v0", "two_stage_opamp", build_two_stage_opamp, OpAmpSimulator,
    "Two-stage op-amp, yield-aware P2S reward over the five-corner PVT sweep",
)
_register_corner_variant(
    "folded_cascode-corners-v0", "folded_cascode", build_folded_cascode,
    FoldedCascodeSimulator,
    "Folded-cascode op-amp, yield-aware P2S reward over the five-corner PVT sweep",
)
_register_corner_variant(
    "current_mirror_ota-corners-v0", "current_mirror_ota", build_current_mirror_ota,
    CmOtaSimulator,
    "Current-mirror OTA, yield-aware P2S reward over the five-corner PVT sweep",
)
_register_corner_variant(
    "common_source_lna-corners-v0", "common_source_lna", build_common_source_lna,
    LnaSimulator,
    "Common-source LNA, yield-aware P2S reward over the five-corner PVT sweep",
)
_register_corner_variant(
    "rf_pa-corners-v0", "rf_pa", build_rf_pa, RfPaFineSimulator,
    "GaN RF PA, yield-aware P2S reward over the five-corner PVT sweep (fine simulator)",
)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def _register_policies() -> None:
    # Imported lazily so that ``repro.agents`` (which itself imports the nn
    # stack) only loads when the catalog module does, keeping import order
    # free of cycles with the legacy shims in repro.agents.policy.
    from repro.agents.policy import POLICY_FACTORIES

    descriptions = {
        "gcn_fc": "GCN + spec-FCNN multimodal policy (ours)",
        "gat_fc": "GAT + spec-FCNN multimodal policy (ours, best variant)",
        "baseline_a": "Baseline A (AutoCkt): FCNN over specs + parameters, no graph",
        "baseline_b": "Baseline B (GCN-RL): graph branch only, raw spec vector",
    }
    aliases = {
        "gcn_fc": ("gcn-fc",),
        "gat_fc": ("gat-fc",),
        "baseline_a": ("autockt",),
        "baseline_b": ("gcn_rl", "gcn-rl"),
    }
    for name, factory in POLICY_FACTORIES.items():
        POLICIES.register(
            name,
            factory,
            description=descriptions.get(name, ""),
            aliases=aliases.get(name, ()),
        )


_register_policies()


def _register_optimizers() -> None:
    # Late import: repro.api.optimizers imports the catalog for make_policy.
    from repro.api.optimizers import (
        BayesianOptimizer,
        GeneticOptimizer,
        PPOOptimizer,
        RandomSearchOptimizer,
        SupervisedOptimizer,
    )

    OPTIMIZERS.register(
        "ppo",
        PPOOptimizer,
        description="PPO-trained RL policy (GNN-FC by default), deployed per target group",
        aliases=("rl",),
    )
    OPTIMIZERS.register(
        "genetic",
        GeneticOptimizer,
        description="Real-coded genetic algorithm over the normalized design space",
        aliases=("genetic_algorithm", "ga"),
    )
    OPTIMIZERS.register(
        "bayesian",
        BayesianOptimizer,
        description="Gaussian-process Bayesian optimization with expected improvement",
        aliases=("bayesian_optimization", "bo"),
    )
    OPTIMIZERS.register(
        "random",
        RandomSearchOptimizer,
        description="Uniform random search (sanity-check lower bound)",
        aliases=("random_search", "rs"),
    )
    OPTIMIZERS.register(
        "supervised",
        SupervisedOptimizer,
        description="Supervised inverse spec-to-parameter regressor (one-shot design)",
        aliases=("supervised_learning", "sl"),
    )


_register_optimizers()


# ----------------------------------------------------------------------
# Public factory / discovery helpers (re-exported as repro.make_* etc.)
# ----------------------------------------------------------------------
def make_env(id: str, **kwargs: Any) -> EnvironmentLike:
    """Build an environment by string ID, e.g. ``make_env("opamp-p2s-v0", seed=0)``.

    All built-in environments accept ``num_envs``, ``cache_size`` and
    ``compile``: ``make_env("opamp-p2s-v0", seed=0, num_envs=8)`` returns an
    8-wide :class:`repro.parallel.VectorCircuitEnv` with a shared simulation
    cache, while ``num_envs=1`` (default) returns the sequential
    environment.  ``compile=True`` additionally replays steps through
    compiled per-topology episode plans (see :mod:`repro.compile`) —
    bitwise identical to the interpreted path, falling back transparently
    for configurations that cannot be traced.
    """
    return ENVS.make(id, **kwargs)


def make_policy(
    id: str, env: CircuitDesignEnv, rng: Optional[np.random.Generator] = None, **overrides: Any
):
    """Build a policy by string ID for an environment, e.g. ``make_policy("gcn_fc", env)``."""
    return POLICIES.make(id, env, rng, **overrides)


def make_optimizer(id: str, **kwargs: Any):
    """Build an optimizer by string ID, e.g. ``make_optimizer("ppo", policy="gat_fc")``.

    Every returned object implements the common :class:`repro.api.Optimizer`
    protocol: ``optimize(env, budget=..., seed=..., callbacks=...)``.
    """
    return OPTIMIZERS.make(id, **kwargs)


def list_envs() -> List[str]:
    """Registered environment IDs."""
    return ENVS.ids()


def list_policies() -> List[str]:
    """Registered policy IDs."""
    return POLICIES.ids()


def list_optimizers() -> List[str]:
    """Registered optimizer IDs."""
    return OPTIMIZERS.ids()


def describe_components() -> Dict[str, Dict[str, str]]:
    """Full catalog: kind -> {id: one-line description} (discovery helper)."""
    return {
        "environments": ENVS.describe(),
        "policies": POLICIES.describe(),
        "optimizers": OPTIMIZERS.describe(),
    }
