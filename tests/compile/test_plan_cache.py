"""PlanCache: keying, config-snapshot invalidation, negative caching, LRU."""

from __future__ import annotations

import pytest

from repro.compile import PlanCache, UntraceableError


class TestKeyingAndInvalidation:
    def test_builds_once_per_key(self):
        cache = PlanCache()
        built = []

        def builder():
            built.append(1)
            return "plan"

        assert cache.get_or_build("k", builder, config=(1, 2)) == "plan"
        assert cache.get_or_build("k", builder, config=(1, 2)) == "plan"
        assert built == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_keys_build_independently(self):
        cache = PlanCache()
        assert cache.get_or_build("a", lambda: "A", config=()) == "A"
        assert cache.get_or_build("b", lambda: "B", config=()) == "B"
        assert len(cache) == 2

    def test_config_drift_rebuilds(self):
        cache = PlanCache()
        versions = iter(["v1", "v2"])
        builder = lambda: next(versions)  # noqa: E731
        assert cache.get_or_build("k", builder, config=("cfg", 1)) == "v1"
        # Same key, drifted snapshot: the stale plan must never be replayed.
        assert cache.get_or_build("k", builder, config=("cfg", 2)) == "v2"
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 2
        # The new snapshot is now the cached one.
        assert cache.get_or_build("k", builder, config=("cfg", 2)) == "v2"
        assert cache.stats.hits == 1

    def test_explicit_invalidate(self):
        cache = PlanCache()
        cache.get_or_build("k", lambda: "plan", config=())
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert len(cache) == 0
        assert cache.stats.invalidations == 1


class TestNegativeCaching:
    def test_untraceable_build_is_cached_as_failure(self):
        cache = PlanCache()
        attempts = []

        def builder():
            attempts.append(1)
            raise UntraceableError("no kernel for this simulator")

        assert cache.get_or_build("k", builder, config=("cfg",)) is None
        # The failed trace is not retried while the snapshot is unchanged.
        assert cache.get_or_build("k", builder, config=("cfg",)) is None
        assert attempts == [1]
        assert cache.stats.failures == 1
        assert cache.failure_reason("k") == "no kernel for this simulator"
        assert cache.failure_reason("missing") is None

    def test_config_change_retries_a_failed_build(self):
        cache = PlanCache()
        outcomes = iter([UntraceableError("transiently wrong config"), "plan"])

        def builder():
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        assert cache.get_or_build("k", builder, config=("old",)) is None
        assert cache.get_or_build("k", builder, config=("new",)) == "plan"
        assert cache.failure_reason("k") is None

    def test_unexpected_exceptions_propagate(self):
        cache = PlanCache()
        with pytest.raises(ZeroDivisionError):
            cache.get_or_build("k", lambda: 1 // 0, config=())
        # Nothing cached: the error was not an UntraceableError.
        assert len(cache) == 0


class TestLruAndLimits:
    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.get_or_build("a", lambda: "A", config=())
        cache.get_or_build("b", lambda: "B", config=())
        cache.get_or_build("a", lambda: "A", config=())  # refresh a
        cache.get_or_build("c", lambda: "C", config=())  # evicts b
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        rebuilt = []
        cache.get_or_build("b", lambda: rebuilt.append(1) or "B2", config=())
        assert rebuilt == [1]

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_clear(self):
        cache = PlanCache()
        cache.get_or_build("a", lambda: "A", config=())
        cache.clear()
        assert len(cache) == 0
