"""SweepConfig: JSON round trips, grid expansion, and seed derivation."""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.orchestrate import SweepConfig, sweep_from_document


def small_sweep(**overrides) -> SweepConfig:
    base = dict(
        name="test-sweep",
        optimizers=["random", {"id": "genetic", "params": {"population_size": 4}}],
        envs=["opamp-p2s-v0", "common_source_lna-p2s-v0"],
        seeds=[0, 1],
        budget=6,
    )
    base.update(overrides)
    return SweepConfig(**base)


class TestSweepConfigSerialization:
    def test_json_round_trip(self):
        sweep = small_sweep(disk_cache="cache_dir", workers=3)
        clone = SweepConfig.from_json(sweep.to_json())
        assert clone == sweep

    def test_save_load(self, tmp_path):
        sweep = small_sweep()
        path = tmp_path / "sweep.json"
        sweep.save(path)
        assert SweepConfig.load(path) == sweep

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepConfig keys"):
            SweepConfig.from_dict({"optimizers": ["random"], "envs": ["opamp-p2s-v0"],
                                   "sedes": [0]})

    def test_empty_grid_axes_rejected(self):
        with pytest.raises(ValueError, match="optimizers"):
            SweepConfig(optimizers=[], envs=["opamp-p2s-v0"])
        with pytest.raises(ValueError, match="envs"):
            SweepConfig(optimizers=["random"], envs=[])
        with pytest.raises(ValueError, match="seeds"):
            small_sweep(seeds=[])

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            small_sweep(seeds=[0, 0])

    def test_negative_seeds_rejected_at_construction(self):
        # SeedSequence would reject them at expand time; fail fast instead.
        with pytest.raises(ValueError, match="non-negative"):
            small_sweep(seeds=[-1])

    def test_explicit_empty_seeds_in_document_rejected(self):
        document = small_sweep().to_dict()
        document["seeds"] = []
        with pytest.raises(ValueError, match="non-empty"):
            SweepConfig.from_dict(document)
        # An absent (or null) seeds key defaults to [0].
        document.pop("seeds")
        assert SweepConfig.from_dict(document).seeds == [0]

    def test_unknown_component_ids_fail_fast(self):
        with pytest.raises(Exception, match="nonexistent"):
            small_sweep(envs=["nonexistent-env-v0"])


class TestSweepExpansion:
    def test_grid_size_and_ids(self):
        units = small_sweep().expand()
        assert len(units) == 8
        assert units[0].unit_id == "random+opamp-p2s-v0+s0"
        assert len({unit.unit_id for unit in units}) == 8
        assert len({unit.key() for unit in units}) == 8

    def test_units_are_standalone_run_configs(self):
        unit = small_sweep().expand()[0]
        run = RunConfig.from_dict(unit.payload["run"])
        assert run.budget == 6
        assert run.env.id == "opamp-p2s-v0"

    def test_expansion_is_deterministic(self):
        first = [(u.unit_id, u.key()) for u in small_sweep().expand()]
        second = [(u.unit_id, u.key()) for u in small_sweep().expand()]
        assert first == second

    def test_unit_seeds_shared_across_optimizers(self):
        # Paired comparisons: within one (seed, env) cell every optimizer
        # must pursue the same derived seed (hence the same sampled target).
        sweep = small_sweep()
        by_id = {unit.unit_id: unit.payload["run"]["seed"] for unit in sweep.expand()}
        assert by_id["random+opamp-p2s-v0+s0"] == by_id["genetic+opamp-p2s-v0+s0"]

    def test_unit_seeds_distinct_across_cells(self):
        sweep = small_sweep()
        seeds = {
            (unit.payload["run"]["env"]["id"], unit.payload["run"]["seed"])
            for unit in sweep.expand()
        }
        # 2 envs x 2 sweep seeds -> 4 distinct (env, derived-seed) cells.
        assert len(seeds) == 4

    def test_unit_seeds_position_independent(self):
        # Cross-sweep artifact sharing: a cell's derived seed (and hence its
        # content key) must not depend on where it sits in the grid, so
        # adding/removing/reordering entries never invalidates other cells.
        full = small_sweep()
        narrowed = small_sweep(envs=["common_source_lna-p2s-v0"],
                               optimizers=["random"], seeds=[1])
        full_keys = {unit.unit_id: unit.key() for unit in full.expand()}
        narrow_unit = narrowed.expand()[0]
        assert full_keys[narrow_unit.unit_id] == narrow_unit.key()

    def test_derive_seeds_false_passes_literal_seeds(self):
        sweep = small_sweep(derive_seeds=False)
        seeds = {unit.payload["run"]["seed"] for unit in sweep.expand()}
        assert seeds == {0, 1}

    def test_disk_cache_rides_in_execution_not_identity(self):
        plain = small_sweep()
        cached = small_sweep(disk_cache="some_dir")
        for unit_a, unit_b in zip(plain.expand(), cached.expand()):
            assert unit_a.key() == unit_b.key()
            assert unit_b.execution["disk_cache"]["dir"] == "some_dir"
        assert plain.sweep_key() == cached.sweep_key()


class TestSweepFromDocument:
    def test_sweep_document(self):
        document = small_sweep().to_dict()
        assert sweep_from_document(document) == small_sweep()

    def test_run_config_document_becomes_one_unit_sweep(self):
        run = RunConfig(env="opamp-p2s-v0", optimizer="random", budget=5, seed=42)
        sweep = sweep_from_document(run.to_dict())
        units = sweep.expand()
        assert len(units) == 1
        # Literal seed preserved: the CLI must reproduce RunConfig.run().
        assert units[0].payload["run"]["seed"] == 42
