"""DiskSimulationCache: persistence, key sharing, corruption, pruning."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import make_env
from repro.parallel import DiskSimulationCache, SimulationCache
from repro.simulation.base import SimulationResult


class CountingSimulator:
    """Deterministic stand-in simulator that counts real evaluations."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def simulate(self, netlist):
        self.calls += 1
        total = float(np.sum(netlist.parameter_array()))
        return SimulationResult(
            specs={"gain": total, "power": total * 0.5},
            details={"calls": float(self.calls)},
            valid=True,
        )


@pytest.fixture
def netlists():
    env = make_env("common_source_lna-p2s-v0", seed=0)
    rng = np.random.default_rng(0)
    space = env.benchmark.design_space
    items = []
    for _ in range(5):
        netlist = env.benchmark.fresh_netlist()
        space.apply_to_netlist(netlist, space.sample(rng))
        items.append(netlist)
    return items


def test_disk_hits_survive_process_boundaries(tmp_path, netlists):
    # Two cache *instances* over one directory model two worker processes
    # (workers share nothing but the filesystem).
    sim_a, sim_b = CountingSimulator(), CountingSimulator()
    first = DiskSimulationCache(sim_a, tmp_path / "cache")
    results = [first.simulate(netlist) for netlist in netlists]
    assert sim_a.calls == len(netlists)
    assert first.disk_entries() == len(netlists)

    second = DiskSimulationCache(sim_b, tmp_path / "cache")
    replayed = [second.simulate(netlist) for netlist in netlists]
    assert sim_b.calls == 0, "every lookup must be served from disk"
    assert second.stats.disk_hits == len(netlists)
    assert second.stats.hits == len(netlists) and second.stats.misses == 0
    for fresh, cached in zip(results, replayed):
        assert cached.specs == fresh.specs
        assert cached.valid == fresh.valid


def test_memory_tier_still_serves_repeats(tmp_path, netlists):
    cache = DiskSimulationCache(CountingSimulator(), tmp_path / "cache")
    cache.simulate(netlists[0])
    cache.simulate(netlists[0])
    assert cache.stats.hits == 1 and cache.stats.disk_hits == 0


def test_same_quantized_keys_as_memory_cache(tmp_path, netlists):
    # The persistent tier must collapse exactly the float noise the
    # in-memory cache collapses: same _key, same sharing semantics.
    memory = SimulationCache(CountingSimulator())
    disk = DiskSimulationCache(CountingSimulator(), tmp_path / "cache")
    for netlist in netlists:
        assert memory._key(netlist) == disk._key(netlist)


@pytest.mark.parametrize(
    "corruption",
    ["{torn write", '{"specs": null}', '{"specs": [1, 2]}', '{"specs": {"gain": "x"}}',
     '"just a string"'],
)
def test_corrupt_entry_is_a_miss_and_heals(tmp_path, netlists, corruption):
    sim = CountingSimulator()
    cache = DiskSimulationCache(sim, tmp_path / "cache")
    cache.simulate(netlists[0])
    entry = next((tmp_path / "cache").glob("*.json"))
    entry.write_text(corruption, encoding="utf-8")

    fresh = DiskSimulationCache(sim, tmp_path / "cache")
    result = fresh.simulate(netlists[0])
    assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
    assert result.specs["gain"] == pytest.approx(
        float(np.sum(netlists[0].parameter_array()))
    )
    # The entry was rewritten and is valid JSON again.
    assert json.loads(entry.read_text(encoding="utf-8"))["valid"] is True


def test_prune_bounds_the_directory(tmp_path, netlists):
    cache = DiskSimulationCache(
        CountingSimulator(), tmp_path / "cache", max_disk_entries=2
    )
    for netlist in netlists:
        cache.simulate(netlist)
    assert cache.disk_entries() == len(netlists)  # below the periodic check
    removed = cache.prune()
    assert removed == len(netlists) - 2
    assert cache.disk_entries() == 2


def test_clear_disk_removes_entries_only(tmp_path, netlists):
    cache = DiskSimulationCache(CountingSimulator(), tmp_path / "cache")
    for netlist in netlists:
        cache.simulate(netlist)
    cache.clear_disk()
    assert cache.disk_entries() == 0
    # In-memory LRU still intact.
    cache.simulate(netlists[0])
    assert cache.stats.hits == 1


def test_invalid_limits_rejected(tmp_path):
    with pytest.raises(ValueError, match="max_disk_entries"):
        DiskSimulationCache(CountingSimulator(), tmp_path / "c", max_disk_entries=0)
