"""Loss functions and small tensor utilities shared by training code."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, minimum


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, used for value-function regression (Algorithm 1,
    step 7) and the supervised-learning baseline."""
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss — quadratic near zero, linear in the tails.

    Useful for value regression when early-training returns are noisy.
    """
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = minimum(abs_diff, Tensor(np.full(abs_diff.shape, delta)))
    linear = abs_diff - quadratic
    return (0.5 * quadratic * quadratic + delta * linear).mean()


def smooth_l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Alias of :func:`huber_loss` with ``delta = 1``."""
    return huber_loss(prediction, target, delta=1.0)


def explained_variance(predictions: np.ndarray, returns: np.ndarray) -> float:
    """Fraction of return variance explained by the value function.

    A standard PPO training diagnostic: 1 is a perfect critic, 0 means the
    critic is no better than predicting the mean, negative is worse.
    """
    predictions = np.asarray(predictions, dtype=np.float64).ravel()
    returns = np.asarray(returns, dtype=np.float64).ravel()
    if predictions.shape != returns.shape:
        raise ValueError("predictions and returns must have the same shape")
    var_returns = returns.var()
    if var_returns < 1e-12:
        return 0.0
    return float(1.0 - (returns - predictions).var() / var_returns)
