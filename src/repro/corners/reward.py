"""Yield-aware P2S reward: Eq. (1) scored across a PVT corner sweep.

:class:`YieldP2SReward` extends the paper's P2S reward to corner-swept
measurements (the flattened ``<spec>@<corner>`` keys a
:class:`~repro.corners.simulator.CornerSimulator` emits):

* the shaping term is the corner-weighted mixture of per-corner Eq. (1)
  sums, ``r = Σ_c w_c Σ_j min((g_jc − g*_j)/(g_jc + g*_j), 0)`` — corners
  that matter more to the product (set the :class:`CornerSet` weights) pull
  the policy harder;
* the goal bonus is granted only when **every** corner meets **every**
  specification — worst-corner satisfaction, the sizing a corner-signoff
  flow would accept;
* the reported diagnostics (``normalized_errors``, ``met_fraction``) are
  computed from the worst-corner value of each spec, so ``info`` keeps the
  exact shape of the nominal environments.

On measurements without per-corner keys (a plain simulator) the reward
degrades to the nominal :class:`~repro.env.reward.P2SReward` behaviour, so
the same reward object scores corner-swept and nominal results
consistently.  With a single-corner set and its unit weight the two are
identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.circuits.specs import Objective, SpecificationSpace
from repro.corners.model import CornerSet, default_corner_set
from repro.env.reward import GOAL_BONUS, P2SReward, RewardOutcome, _defensive_errors


class YieldP2SReward(P2SReward):
    """Worst-corner spec satisfaction with configurable corner weighting.

    Parameters
    ----------
    spec_space:
        The circuit's specification space (objective directions).
    corner_set:
        Corners whose flattened keys are read from the measurement;
        defaults to :func:`~repro.corners.model.default_corner_set`.  Its
        weights (normalized to sum to one) mix the per-corner Eq. (1) sums.
    goal_bonus, invalid_penalty:
        As in :class:`P2SReward`; the bonus requires all corners to meet
        all specifications.
    """

    def __init__(
        self,
        spec_space: SpecificationSpace,
        corner_set: Optional[CornerSet] = None,
        goal_bonus: float = GOAL_BONUS,
        invalid_penalty: float | None = None,
    ) -> None:
        super().__init__(spec_space, goal_bonus=goal_bonus, invalid_penalty=invalid_penalty)
        self.corner_set = corner_set if corner_set is not None else default_corner_set()

    def _per_corner_measurements(
        self, measured: Mapping[str, float]
    ) -> Optional[List[Dict[str, float]]]:
        """Per-corner spec dicts, or None when the measurement is nominal.

        All ``<spec>@<corner>`` keys must be present to take the corner
        path; otherwise (a plain simulator, or a foreign measurement) the
        reward falls back to nominal P2S scoring of the plain keys.
        """
        per_corner: List[Dict[str, float]] = []
        for corner in self.corner_set:
            corner_measured: Dict[str, float] = {}
            for spec in self.spec_space:
                key = self.corner_set.spec_key(spec.name, corner)
                if key not in measured:
                    return None
                corner_measured[spec.name] = measured[key]
            per_corner.append(corner_measured)
        return per_corner

    def _worst_measurements(
        self, per_corner: List[Dict[str, float]]
    ) -> Dict[str, float]:
        worst: Dict[str, float] = {}
        for spec in self.spec_space:
            values = [corner_measured[spec.name] for corner_measured in per_corner]
            worst[spec.name] = (
                max(values) if spec.objective is Objective.MINIMIZE else min(values)
            )
        return worst

    def __call__(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float],
        valid: bool = True,
    ) -> RewardOutcome:
        per_corner = self._per_corner_measurements(measured)
        if per_corner is None:
            return super().__call__(measured, targets, valid=valid)

        corner_errors = []
        complete = True
        for corner_measured in per_corner:
            errors, corner_complete = _defensive_errors(
                self.spec_space, corner_measured, targets
            )
            corner_errors.append(errors)
            complete = complete and corner_complete
        named_errors = {
            name: min(errors[name] for errors in corner_errors)
            for name in self.spec_space.names
        }
        if not valid or not complete:
            return RewardOutcome(
                reward=self.invalid_penalty,
                goal_reached=False,
                normalized_errors=named_errors,
                met_fraction=0.0,
            )
        goal_reached = all(error >= 0.0 for error in named_errors.values())
        weights = self.corner_set.normalized_weights()
        shaped = sum(
            weight * sum(errors.values())
            for weight, errors in zip(weights, corner_errors)
        )
        reward = self.goal_bonus if goal_reached else float(shaped)
        worst_measured = self._worst_measurements(per_corner)
        return RewardOutcome(
            reward=reward,
            goal_reached=goal_reached,
            normalized_errors=named_errors,
            met_fraction=self.spec_space.met_fraction(worst_measured, targets),
        )
