"""Head-to-head: RL deployment vs GA, BO and the supervised sizer (Table 2).

For a single target specification group on the two-stage op-amp, runs every
class of method the paper compares and prints how many simulator calls each
needed and whether the design met all specifications — the per-design view of
Table 2's accuracy/efficiency trade-off.

Run with:  python examples/baselines_comparison.py [--episodes N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.agents import PPOTrainer, deploy_policy, make_gcn_fc_policy
from repro.baselines import (
    BayesianOptimization,
    GeneticAlgorithm,
    RandomSearch,
    SizingProblem,
    SupervisedSizer,
    SupervisedSizerConfig,
)
from repro.circuits import build_two_stage_opamp
from repro.env import make_opamp_env
from repro.experiments import rl_hyperparameters
from repro.simulation import OpAmpSimulator

TARGET = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}


def main(episodes: int) -> None:
    benchmark = build_two_stage_opamp()
    simulator = OpAmpSimulator()
    rows = []

    print(f"Target specification group: {TARGET}\n")

    print("[1/5] Genetic Algorithm ...")
    ga = GeneticAlgorithm(seed=0).optimize(SizingProblem(benchmark, simulator, targets=TARGET))
    rows.append(("Genetic Algorithm", ga.num_simulations, ga.success))

    print("[2/5] Bayesian Optimization ...")
    bo = BayesianOptimization(seed=0).optimize(SizingProblem(benchmark, simulator, targets=TARGET))
    rows.append(("Bayesian Optimization", bo.num_simulations, bo.success))

    print("[3/5] Random Search ...")
    rs = RandomSearch(seed=0).optimize(SizingProblem(benchmark, simulator, targets=TARGET))
    rows.append(("Random Search", rs.num_simulations, rs.success))

    print("[4/5] Supervised sizer (one-shot inverse regression) ...")
    sizer = SupervisedSizer(benchmark, simulator,
                            SupervisedSizerConfig(num_training_samples=600, epochs=60), seed=0)
    sizer.fit()
    sl = sizer.design(TARGET)
    rows.append(("Supervised Learning", sl.num_simulations, sl.success))

    print(f"[5/5] GCN-FC RL agent: training for {episodes} episodes, then one deployment ...")
    env = make_opamp_env(seed=0)
    policy = make_gcn_fc_policy(env, np.random.default_rng(0))
    trainer = PPOTrainer(env, policy, config=rl_hyperparameters("two_stage_opamp")["ppo"], seed=0)
    trainer.train(total_episodes=episodes, episodes_per_update=10)
    rl = deploy_policy(env, policy, TARGET, rng=np.random.default_rng(1))
    rows.append(("GCN-FC RL deployment", rl.steps, rl.success))

    print("\nPer-design comparison (simulator calls to produce one design):")
    print(f"  {'method':<26s} {'simulator calls':>16s} {'all specs met':>14s}")
    for name, calls, success in rows:
        print(f"  {name:<26s} {calls:>16d} {str(bool(success)):>14s}")
    print("\nNote: the RL row excludes the one-off training cost, exactly as in the paper —")
    print("once trained, the policy is reused for every new specification group.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=200,
                        help="RL training episodes (default 200; paper uses 35000)")
    args = parser.parse_args()
    main(args.episodes)
