"""Compiled per-topology execution plans for the serving/rollout hot path.

The interpreted stack is written for clarity: every policy inference walks a
Module tree, every environment step runs ``K`` independent scalar simulator
calls, and every MNA analysis re-stamps its matrix from Python objects.
This package trades that flexibility for speed **without trading away a
single bit of behaviour**:

* :func:`compile_policy` / :class:`CompiledPolicyPlan` — trace one
  ``ActorCriticPolicy`` batched forward into a flat list of array ops with
  the topology's adjacency operators baked in; replay does zero
  Module/Tensor dispatch and is probed bitwise against the interpreted
  ``act_batch`` at build time.
* :class:`BatchedMNAPlan` — stamp all ``K`` per-env MNA systems of one
  topology into a single stacked ``(K, n, n)`` tensor built once (structure
  at plan time, parameter-dependent entries restamped per step) and solve
  them with one stacked LAPACK call; Newton DC iterates only the
  not-yet-converged slice.
* :class:`CompiledEpisodePlan` — the batched ``VectorCircuitEnv.step``:
  vectorized action snapping, a batched simulator kernel, vectorized cache
  keys, and batched observation assembly around a slim sequential
  bookkeeping pass that preserves cache and autoreset ordering exactly.
* :class:`PlanCache` — keyed plan storage with config-snapshot invalidation
  and negative caching of :class:`UntraceableError` build failures, so an
  uncompilable configuration falls back to the interpreted path once and
  quietly ("degrades gracefully, never wrongly").

Anything the tracer cannot reproduce bitwise — subclassed modules, unshared
simulators, cache subclasses, unknown simulator types, or a build-time probe
mismatch — raises :class:`UntraceableError` and the caller keeps using the
interpreted code.
"""

from repro.compile.errors import UntraceableError
from repro.compile.plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache, PlanCacheStats
from repro.compile.mna_plan import BatchedMNAPlan, solve_chunk_rows
from repro.compile.policy_plan import CompiledPolicyPlan, compile_policy
from repro.compile.sim_kernels import (
    CmOtaKernel,
    KernelResult,
    OpAmpKernel,
    build_simulator_kernel,
)
from repro.compile.env_plan import CompiledEpisodePlan

__all__ = [
    "UntraceableError",
    "PlanCache",
    "PlanCacheStats",
    "DEFAULT_PLAN_CACHE_SIZE",
    "BatchedMNAPlan",
    "solve_chunk_rows",
    "CompiledPolicyPlan",
    "compile_policy",
    "CompiledEpisodePlan",
    "KernelResult",
    "OpAmpKernel",
    "CmOtaKernel",
    "build_simulator_kernel",
]
