"""Reverse-mode automatic differentiation over numpy arrays.

The paper implements its policy networks with PyTorch and Deep Graph Library.
Neither is available in this offline environment, so this module provides the
minimal-yet-complete autograd substrate the rest of the library is built on:
a :class:`Tensor` wrapping a ``numpy.ndarray`` that records the operations
applied to it and can back-propagate gradients through them.

Only the operations needed by the GCN/GAT/FCNN policy networks and the PPO
losses are implemented, but each one supports full broadcasting and is
verified against finite differences in ``tests/nn/test_tensor_autograd.py``.

Example
-------
>>> import numpy as np
>>> from repro.nn.tensor import Tensor
>>> w = Tensor(np.ones((2, 2)), requires_grad=True)
>>> x = Tensor(np.array([[1.0, 2.0]]))
>>> y = (x @ w).sum()
>>> y.backward()
>>> w.grad
array([[1., 1.],
       [2., 2.]])
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]


class _GradState(threading.local):
    """Per-thread autograd switch (single attribute for cheap hot-path reads).

    Thread-local so ``inference_mode()`` in e.g. a serving thread cannot
    silently disable gradient recording for a concurrently training thread;
    the class attribute is the per-thread default until first written.
    """

    enabled: bool = True


_GRAD = _GradState()


def is_grad_enabled() -> bool:
    """Whether tensor operations currently record the autograd graph."""
    return _GRAD.enabled


def set_grad_enabled(enabled: bool) -> bool:
    """Set the global autograd switch; returns the previous value."""
    previous = _GRAD.enabled
    _GRAD.enabled = bool(enabled)
    return previous


@contextmanager
def inference_mode() -> Iterator[None]:
    """Disable autograd graph recording inside the ``with`` block.

    Under inference mode every tensor operation returns a plain
    :class:`Tensor` — no parent tracking, no backward closure, no
    ``requires_grad`` propagation — so a forward pass is ordinary numpy math
    plus a thin wrapper.  This is the deployment / rollout action-selection
    fast path: results are bitwise identical to the grad-recording path
    (the forward arithmetic is unchanged), only the graph bookkeeping is
    skipped.  Nesting is safe; the previous state is restored on exit.
    """
    previous = _GRAD.enabled
    _GRAD.enabled = False
    try:
        yield
    finally:
        _GRAD.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the corresponding gradient must be summed over
    the broadcast axes so that it matches the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were of size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph.

    Parameters
    ----------
    data:
        Array data.  Always stored as ``float64`` for numerical robustness of
        the small networks used in this project.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Iterable["Tensor"] = (),
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a graph-free tensor holding a *copy* of the data.

        The copy means a detached tensor can be mutated (or handed to
        checkpoint / inference buffers) without aliasing back into the
        autograd graph's forward values.  Use :meth:`numpy` when a zero-copy
        read-only view is wanted instead.
        """
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_result(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        if not _GRAD.enabled:
            return Tensor(data)
        requires = any(p.requires_grad for p in parents)
        result = Tensor(data, requires_grad=requires, _parents=parents)
        if requires:
            result._backward = backward
        return result

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return self._make_result(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out_data = -self.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make_result(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data - other.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return self._make_result(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return self._make_result(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data**2))

        return self._make_result(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_result(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data @ other.data
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            # Transpose only the matrix axes so batched (stacked) matmuls
            # back-propagate correctly; leading broadcast axes are summed
            # away by _accumulate/_unbroadcast.  1-D operands keep the plain
            # 2-D formulas (``.T`` is a no-op for them, matching numpy's
            # vector matmul semantics as used in this codebase).
            if self.requires_grad:
                if other.data.ndim >= 2:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim >= 2:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)
                else:
                    other._accumulate(self.data.T @ grad)

        return self._make_result(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(
        self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                expanded = np.broadcast_to(grad, self.data.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis=axis)
                expanded = np.broadcast_to(grad, self.data.shape)
            self._accumulate(expanded)

        return self._make_result(out_data, (self,), backward)

    def mean(
        self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, int):
            count = self.data.shape[axis]
        else:
            count = int(np.prod([self.data.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not _GRAD.enabled:
            return Tensor(out_data)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make_result(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make_result(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        """Exchange two axes (the batch-safe generalization of ``.T``)."""
        out_data = np.swapaxes(self.data, axis1, axis2)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, axis1, axis2))

        return self._make_result(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make_result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make_result(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make_result(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make_result(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)
        out_data = self.data * scale
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return self._make_result(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_result(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        if not _GRAD.enabled:
            return Tensor(out_data)
        pass_through = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * pass_through)

        return self._make_result(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make_result(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    # ------------------------------------------------------------------
    # Softmax-style reductions (numerically stable, done as primitives)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            # d softmax_i / d x_j = s_i (delta_ij - s_j)
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make_result(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        if not _GRAD.enabled:
            return Tensor(out_data)
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make_result(out_data, (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not _GRAD.enabled:
            return Tensor(out_data)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad, dtype=np.float64)
            if axis is None:
                mask = (self.data == out_data).astype(np.float64)
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_out = out_data if keepdims else np.expand_dims(out_data, axis=axis)
                expanded_grad = grad if keepdims else np.expand_dims(grad, axis=axis)
                mask = (self.data == expanded_out).astype(np.float64)
                mask /= mask.sum(axis=axis, keepdims=True)
                self._accumulate(mask * expanded_grad)

        return self._make_result(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1.0 which requires this tensor to
            be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        ordering: list[Tensor] = []
        visited: set[int] = set()

        def topo(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                topo(parent)
            ordering.append(node)

        topo(self)

        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not _GRAD.enabled:
        return Tensor(out_data)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(piece)

    requires = any(t.requires_grad for t in tensors)
    result = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))
    if requires:
        result._backward = backward
    return result


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not _GRAD.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    result = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))
    if requires:
        result._backward = backward
    return result


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)
    if not _GRAD.enabled:
        return Tensor(out_data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(grad * condition)
        b._accumulate(grad * ~condition)

    requires = a.requires_grad or b.requires_grad
    result = Tensor(out_data, requires_grad=requires, _parents=(a, b))
    if requires:
        result._backward = backward
    return result


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise minimum with gradient routed to the smaller operand."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    return where(a.data <= b.data, a, b)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with gradient routed to the larger operand."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    return where(a.data >= b.data, a, b)
