"""Benchmark-regression gate: diff a fresh bench.json against the baseline.

CI's ``benchmarks-smoke`` job runs the reduced benchmark suite with
``--benchmark-json=bench.json`` and then::

    python benchmarks/compare_bench.py BENCH_baseline.json bench.json

The gate fails (exit 1) when any benchmark's throughput (pytest-benchmark's
``stats.ops``, operations per second) regresses by more than ``--threshold``
(default 25 %) relative to the committed ``BENCH_baseline.json``.  Speedups
and sub-threshold drift only update the printed trajectory; benchmarks added
since the baseline are reported as new (not failures), and benchmarks that
*disappeared* fail the gate — deleting a workload should be deliberate
(regenerate the baseline in the same PR).

Hardware normalization: raw ops ratios are divided by the *median* ratio
across the suite before gating, so a uniformly faster or slower machine
(baseline measured on one box, CI measuring on another, runner-generation
churn) cancels out and only benchmarks that regressed *relative to the rest
of the suite* trip the gate.  The deliberate blind spot: a change that
slows every benchmark by the same factor is attributed to hardware — pass
``--absolute`` to gate on raw ratios instead, appropriate once the baseline
is regenerated on the runner class that executes the gate.

Numeric ``extra_info`` metrics (the per-benchmark measured quantities like
``cached_steps_per_s`` or ``warm_speedup``) are printed for context but not
gated by the regression threshold: they track shapes and ratios whose
variance CI runners cannot bound as tightly as whole-benchmark wall-clock.
Two opt-in modes consume them instead:

``--floor "numerator/denominator>=X"`` (repeatable) asserts a *ratio* floor
over ``extra_info`` metrics: every fresh benchmark reporting both metrics
must satisfy ``numerator / denominator >= X``.  Ratios of two quantities
measured in the same process cancel machine speed, so floors hold across
runner generations where absolute throughput would not — e.g.
``--floor "compiled_steps_per_s/interpreted_steps_per_s>=4"`` is the
compiled-execution speedup contract.  A floor that matches no benchmark is
a configuration error (exit 2), not a silent pass.

``--append-history PATH`` appends one JSON line per run — commit SHA
(``--commit``, else ``$GITHUB_SHA``, else ``git rev-parse HEAD``), the
suite median ratio, and each benchmark's ops / normalized ratio / numeric
extra_info — so the uploaded history file accumulates a per-commit
trajectory that plots without re-parsing full pytest-benchmark documents.

Update the baseline::

    python -m pytest benchmarks -q --benchmark-json=BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from statistics import median
from typing import Dict, List, Optional, Sequence, Tuple


def load_benchmarks(path: str) -> Dict[str, dict]:
    """fullname -> benchmark entry of one pytest-benchmark JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ValueError(f"{path}: not a pytest-benchmark JSON document")
    return {entry["fullname"]: entry for entry in benchmarks}


def throughput(entry: dict) -> Optional[float]:
    ops = entry.get("stats", {}).get("ops")
    return float(ops) if ops else None


def numeric_extra_info(entry: dict) -> Dict[str, float]:
    return {
        key: float(value)
        for key, value in entry.get("extra_info", {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def parse_floor(spec: str) -> Tuple[str, str, float]:
    """Parse ``numerator/denominator>=X`` into its three parts."""
    match = re.fullmatch(r"\s*([\w.-]+)\s*/\s*([\w.-]+)\s*>=\s*([0-9.eE+-]+)\s*", spec)
    if match is None:
        raise ValueError(
            f"invalid --floor {spec!r} (expected 'numerator/denominator>=X')"
        )
    return match.group(1), match.group(2), float(match.group(3))


def check_floors(fresh: Dict[str, dict], floors: Sequence[Tuple[str, str, float]]) -> int:
    """Assert extra_info ratio floors; return the number of violations.

    Raises ``ValueError`` when a floor matches no benchmark: a misspelled
    metric name must fail the gate loudly, not pass it vacuously.
    """
    violations = 0
    for numerator, denominator, minimum in floors:
        matched = 0
        for name in sorted(fresh):
            extra = numeric_extra_info(fresh[name])
            if numerator not in extra or denominator not in extra:
                continue
            matched += 1
            if extra[denominator] == 0:
                print(f"{name}: {denominator} is zero; cannot check floor  FAIL")
                violations += 1
                continue
            ratio = extra[numerator] / extra[denominator]
            verdict = "ok" if ratio >= minimum else "FAIL"
            print(f"floor {numerator}/{denominator}>={minimum:g}: "
                  f"{name} measured {ratio:.2f}x  {verdict}")
            if ratio < minimum:
                violations += 1
        if matched == 0:
            raise ValueError(
                f"--floor {numerator}/{denominator}>={minimum:g} matched no "
                "benchmark (misspelled metric, or the workload was removed?)"
            )
    return violations


def resolve_commit(explicit: Optional[str]) -> str:
    if explicit:
        return explicit
    from_env = os.environ.get("GITHUB_SHA", "").strip()
    if from_env:
        return from_env
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True, timeout=10
        )
        if probe.returncode == 0:
            return probe.stdout.strip()
    except OSError:
        pass
    return "unknown"


def append_history(
    path: str,
    commit: str,
    fresh: Dict[str, dict],
    ratios: Dict[str, float],
    scale: float,
) -> None:
    """Append one JSON line summarizing this run, keyed by commit SHA."""
    record = {
        "commit": commit,
        "median_ratio": round(scale, 6),
        "benchmarks": {
            name: {
                "ops": throughput(entry),
                "normalized_ratio": (
                    round(ratios[name] / scale, 6) if name in ratios else None
                ),
                "extra_info": numeric_extra_info(entry),
            }
            for name, entry in sorted(fresh.items())
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended history record for {commit[:12]} to {path}")


def compare(
    baseline: Dict[str, dict],
    fresh: Dict[str, dict],
    threshold: float,
    absolute: bool = False,
) -> Tuple[int, Dict[str, float], float]:
    """Print the trajectory; return (violations, raw ratios, median scale)."""
    ratios = {}
    for name in set(baseline) & set(fresh):
        base_ops, fresh_ops = throughput(baseline[name]), throughput(fresh[name])
        if base_ops and fresh_ops:
            ratios[name] = fresh_ops / base_ops
    # The suite-wide median ratio estimates the machine-speed difference
    # between the baseline box and this one; gating on the normalized ratio
    # catches benchmarks that regressed relative to the rest of the suite.
    scale = 1.0 if absolute or not ratios else median(ratios.values())
    if not absolute and ratios:
        print(f"suite median throughput ratio {scale:.2f}x "
              "(machine-speed normalization; --absolute disables)")

    violations = 0
    width = max((len(name) for name in baseline), default=20) + 2
    print(f"{'benchmark':<{width}s} {'baseline':>12s} {'fresh':>12s} {'rel':>8s}")
    for name in sorted(set(baseline) | set(fresh)):
        if name not in fresh:
            print(f"{name:<{width}s} {'(missing from fresh run)':>34s}  FAIL")
            violations += 1
            continue
        if name not in baseline:
            print(f"{name:<{width}s} {'(new, no baseline)':>34s}")
            continue
        if name not in ratios:
            print(f"{name:<{width}s} {'(no throughput stats)':>34s}")
            continue
        relative = ratios[name] / scale
        verdict = ""
        if relative < 1.0 - threshold:
            verdict = f"  FAIL (>{threshold:.0%} regression)"
            violations += 1
        base_ops, fresh_ops = throughput(baseline[name]), throughput(fresh[name])
        print(f"{name:<{width}s} {base_ops:>10.3f}/s {fresh_ops:>10.3f}/s "
              f"{relative:>7.2f}x{verdict}")
        extra = numeric_extra_info(fresh[name])
        if extra:
            rendered = ", ".join(f"{key}={value:g}" for key, value in sorted(extra.items()))
            print(f"{'':<{width}s}   {rendered}")
    return violations, ratios, scale


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (BENCH_baseline.json)")
    parser.add_argument("fresh", help="freshly measured JSON (bench.json)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated throughput regression "
                             "(fraction, default 0.25)")
    parser.add_argument("--absolute", action="store_true",
                        help="gate on raw ops ratios instead of "
                             "median-normalized ones (requires a baseline "
                             "measured on the same runner class)")
    parser.add_argument("--floor", action="append", default=[], metavar="NUM/DEN>=X",
                        help="assert an extra_info ratio floor, e.g. "
                             "'compiled_steps_per_s/interpreted_steps_per_s>=4' "
                             "(repeatable; applies to every fresh benchmark "
                             "reporting both metrics)")
    parser.add_argument("--append-history", metavar="PATH",
                        help="append one JSON line (commit SHA, normalized "
                             "ratios, numeric extra_info) to this JSONL file")
    parser.add_argument("--commit",
                        help="commit SHA for --append-history (default: "
                             "$GITHUB_SHA, then `git rev-parse HEAD`)")
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        print("error: --threshold must be a fraction in (0, 1)", file=sys.stderr)
        return 2
    try:
        floors: List[Tuple[str, str, float]] = [parse_floor(s) for s in args.floor]
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations, ratios, scale = compare(
        baseline, fresh, args.threshold, absolute=args.absolute
    )
    try:
        floor_violations = check_floors(fresh, floors) if floors else 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # History is appended regardless of the verdict: a regressed run is
    # exactly the kind of point the trajectory should show.
    if args.append_history:
        append_history(
            args.append_history, resolve_commit(args.commit), fresh, ratios, scale
        )

    if violations:
        print(f"\n{violations} benchmark(s) regressed beyond the "
              f"{args.threshold:.0%} threshold", file=sys.stderr)
    if floor_violations:
        print(f"{floor_violations} extra_info floor violation(s)", file=sys.stderr)
    if violations or floor_violations:
        return 1
    checked = f"{len(fresh)} benchmarks checked"
    if floors:
        checked += f", {len(floors)} floor(s) held"
    print(f"\nno regressions beyond {args.threshold:.0%} ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
