"""Batched policy inference and vectorized optimizer determinism.

The batched forward pass must agree with the per-environment forward for all
four compared architectures, and switching an optimizer onto the vector path
(``vectorize`` / shared cache) must not change its results — only its speed.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.nn.distributions import BatchedMultiCategorical
from repro.nn.tensor import Tensor
from repro.parallel import VectorCircuitEnv

POLICY_IDS = ("gcn_fc", "gat_fc", "baseline_a", "baseline_b")


@pytest.fixture(scope="module")
def batch():
    venv = repro.make_env("opamp-p2s-v0", seed=0, num_envs=5)
    observations = venv.reset()
    # Step twice with distinct random actions so rows genuinely differ.
    rng = np.random.default_rng(3)
    for _ in range(2):
        actions = np.stack([venv.action_space.sample(rng) for _ in range(5)])
        observations, _, _, _ = venv.step(actions)
    return venv, observations


class TestBatchedForward:
    @pytest.mark.parametrize("policy_id", POLICY_IDS)
    def test_distribution_matches_per_env(self, batch, policy_id):
        venv, observations = batch
        policy = repro.make_policy(policy_id, venv.envs[0], np.random.default_rng(11))
        batched = policy.action_distribution_batch(observations)
        for i in range(len(observations)):
            single = policy.action_distribution(observations[i])
            np.testing.assert_allclose(
                batched.probs[i], single.probs, rtol=1e-12, atol=1e-14
            )

    @pytest.mark.parametrize("policy_id", POLICY_IDS)
    def test_values_match_per_env(self, batch, policy_id):
        venv, observations = batch
        policy = repro.make_policy(policy_id, venv.envs[0], np.random.default_rng(11))
        values = policy.value_batch(observations).numpy()
        for i in range(len(observations)):
            np.testing.assert_allclose(
                values[i], policy.value(observations[i]).item(), rtol=1e-12, atol=1e-14
            )

    def test_deterministic_actions_match_per_env(self, batch):
        venv, observations = batch
        policy = repro.make_policy("gcn_fc", venv.envs[0], np.random.default_rng(11))
        actions, log_probs, values = policy.act_batch(
            observations, np.random.default_rng(0), deterministic=True
        )
        for i in range(len(observations)):
            action, log_prob, value = policy.act(
                observations[i], np.random.default_rng(0), deterministic=True
            )
            assert np.array_equal(actions[i], action)
            np.testing.assert_allclose(log_probs[i], log_prob, rtol=1e-12)
            np.testing.assert_allclose(values[i], value, rtol=1e-12)

    def test_sampled_actions_are_valid_and_shaped(self, batch):
        venv, observations = batch
        policy = repro.make_policy("gat_fc", venv.envs[0], np.random.default_rng(11))
        actions, log_probs, values = policy.act_batch(observations, np.random.default_rng(5))
        assert actions.shape == (5, venv.num_parameters)
        assert log_probs.shape == values.shape == (5,)
        assert np.all((actions >= 0) & (actions < 3))


class TestBatchedMultiCategorical:
    def test_log_prob_and_entropy_match_rows(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(4, 6, 3)))
        batched = BatchedMultiCategorical(logits)
        actions = batched.sample(rng)
        joint = batched.log_prob(actions).numpy()
        entropies = batched.entropy().numpy()
        for i in range(4):
            row = batched[i]
            np.testing.assert_allclose(joint[i], row.log_prob(actions[i]).item(), rtol=1e-12)
            np.testing.assert_allclose(entropies[i], row.entropy().item(), rtol=1e-12)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BatchedMultiCategorical(Tensor(np.zeros((4, 3))))
        batched = BatchedMultiCategorical(Tensor(np.zeros((2, 5, 3))))
        with pytest.raises(ValueError):
            batched.log_prob(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            batched.log_prob(np.full((2, 5), 3, dtype=np.int64))

    def test_log_prob_gradients_flow(self):
        logits = Tensor(np.zeros((2, 3, 3)), requires_grad=True)
        batched = BatchedMultiCategorical(logits)
        actions = np.zeros((2, 3), dtype=np.int64)
        batched.log_prob(actions).sum().backward()
        assert logits.grad is not None
        assert logits.grad.shape == (2, 3, 3)


class TestVectorizedTrainingAndOptimizers:
    def test_ppo_trains_on_vector_env(self):
        env = repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)
        venv = VectorCircuitEnv.from_env(env, num_envs=4, seed=0)
        policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        from repro.agents.ppo import PPOConfig, PPOTrainer

        trainer = PPOTrainer(venv, policy, config=PPOConfig(learning_rate=1e-3), seed=0)
        history = trainer.train(total_episodes=8, episodes_per_update=4, eval_interval=None)
        assert len(history.records) == 2
        assert np.isfinite(history.final_mean_reward)
        assert venv.cache is not None and venv.cache.stats.hits > 0

    def test_ppo_trainer_rejects_non_autoreset_vector_env(self):
        env = repro.make_env("opamp-p2s-v0", seed=0)
        venv = VectorCircuitEnv.from_env(env, num_envs=2, seed=0, autoreset=False)
        policy = repro.make_policy("baseline_a", env, np.random.default_rng(0))
        from repro.agents.ppo import PPOTrainer

        with pytest.raises(ValueError):
            PPOTrainer(venv, policy)

    def test_objective_batch_matches_sequential(self):
        """Raw-parameter population scoring equals per-candidate scoring."""
        from repro.api.optimizers import build_problem
        from repro.parallel import SimulationCache

        env = repro.make_env("opamp-p2s-v0", seed=0)
        target = env.sample_target()
        space = env.benchmark.design_space
        rng = np.random.default_rng(8)
        population = np.stack([space.sample(rng) for _ in range(6)])
        population[3] = population[0]  # duplicate candidate for the cache

        reference = build_problem(env, target)
        expected = np.array([reference.objective(row) for row in population])

        cached = build_problem(env, target, simulator=SimulationCache(env.simulator))
        values = cached.objective_batch(population)
        assert np.array_equal(values, expected)
        assert cached.trace.objective_values == reference.trace.objective_values
        assert cached.simulator.stats.hits == 1

    def test_optimizers_accept_front_door_vector_env(self):
        """make_env(num_envs=k) output works directly with every optimizer."""
        venv = repro.make_env("opamp-p2s-v0", seed=0, num_envs=4)
        target = venv.envs[0].sample_target()
        result = repro.make_optimizer("random").optimize(
            venv, budget=10, seed=2, target_specs=target
        )
        sequential = repro.make_optimizer("random").optimize(
            repro.make_env("opamp-p2s-v0", seed=0), budget=10, seed=2, target_specs=target
        )
        assert result.best_objective == sequential.best_objective
        ppo = repro.make_optimizer("ppo", episodes_per_update=4).optimize(
            venv, budget=4, seed=0, target_specs=target
        )
        assert ppo.metadata["num_envs"] == 4

    @pytest.mark.parametrize("method,params", [
        ("genetic", {"population_size": 8}),
        ("random", {}),
        ("bayesian", {}),
    ])
    def test_vectorized_search_matches_sequential(self, method, params):
        env = repro.make_env("opamp-p2s-v0", seed=0)
        sequential = repro.make_optimizer(method, **params).optimize(env, budget=30, seed=4)
        vectorized = repro.make_optimizer(method, vectorize=8, **params).optimize(
            env, budget=30, seed=4
        )
        assert np.array_equal(sequential.best_parameters, vectorized.best_parameters)
        assert sequential.best_objective == vectorized.best_objective
        assert sequential.num_simulations == vectorized.num_simulations
        assert "simulation_cache" in vectorized.metadata

    def test_optimizer_config_vectorize_round_trip(self):
        config = repro.OptimizerConfig(id="genetic", vectorize=8)
        clone = repro.OptimizerConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.build().vectorize == 8

    def test_optimizer_config_vectorize_conflict(self):
        with pytest.raises(ValueError):
            repro.OptimizerConfig(id="genetic", params={"vectorize": 4}, vectorize=8)

    def test_optimizer_config_default_omits_vectorize(self):
        config = repro.OptimizerConfig(id="random")
        assert "vectorize" not in config.to_dict()

    def test_run_config_with_vectorize_reproduces(self):
        config = repro.RunConfig(
            env={"id": "opamp-p2s-v0", "params": {"seed": 0}},
            optimizer=repro.OptimizerConfig(id="random", vectorize=4),
            budget=20,
            seed=9,
        )
        clone = repro.RunConfig.from_json(config.to_json())
        assert clone == config
        assert clone.run().best_objective == config.run().best_objective
