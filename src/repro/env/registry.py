"""Factory functions for the standard environments used in the experiments.

These helpers encode the paper's experimental setup (Table 1 + Sec. 4):

* ``make_opamp_env``     — two-stage op-amp, analytic Spectre-substitute
  simulator, 50-step episodes, Eq. (1) reward;
* ``make_rf_pa_env``     — GaN RF PA, 30-step episodes, Eq. (1) reward, with
  a ``fidelity`` switch between the coarse (training) and fine (deployment)
  simulators used by the transfer-learning workflow;
* ``make_rf_pa_fom_env`` — RF PA with the FoM reward used in Fig. 7.
"""

from __future__ import annotations

from typing import Optional

from repro.circuits.library.rf_pa import build_rf_pa
from repro.circuits.library.two_stage_opamp import build_two_stage_opamp
from repro.env.circuit_env import CircuitDesignEnv
from repro.env.reward import FomReward, P2SReward
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.pa_sim import RfPaCoarseSimulator, RfPaFineSimulator


def make_opamp_env(
    seed: Optional[int] = None,
    max_steps: int = 50,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    """Two-stage op-amp P2S environment (Fig. 2 benchmark)."""
    benchmark = build_two_stage_opamp()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=OpAmpSimulator(),
        reward_fn=P2SReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


def _pa_simulator(fidelity: str):
    fidelity = fidelity.lower()
    if fidelity == "fine":
        return RfPaFineSimulator()
    if fidelity == "coarse":
        return RfPaCoarseSimulator()
    raise ValueError(f"fidelity must be 'fine' or 'coarse', got '{fidelity}'")


def make_rf_pa_env(
    seed: Optional[int] = None,
    max_steps: int = 30,
    fidelity: str = "fine",
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    """GaN RF PA P2S environment (Fig. 4 benchmark).

    ``fidelity="coarse"`` selects the fast DC-estimate simulator used for
    transfer-learning pre-training; ``"fine"`` selects the harmonic-balance
    style simulator used at deployment time.
    """
    benchmark = build_rf_pa()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=_pa_simulator(fidelity),
        reward_fn=P2SReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
        seed=seed,
    )


def make_rf_pa_fom_env(
    seed: Optional[int] = None,
    max_steps: int = 30,
    fidelity: str = "fine",
    initial_sizing: str = "center",
) -> CircuitDesignEnv:
    """RF PA environment with the figure-of-merit reward of Fig. 7."""
    benchmark = build_rf_pa()
    return CircuitDesignEnv(
        benchmark=benchmark,
        simulator=_pa_simulator(fidelity),
        reward_fn=FomReward(benchmark.spec_space),
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        seed=seed,
    )
