"""Vectorized rollout engine: batched evaluation throughput vs sequential.

The ``repro.parallel`` subsystem claims that stepping ``N`` environments as
one batch — shared topology, shared simulation cache, one batched policy
forward per step — beats ``N`` sequential episodes.  This bench measures the
claim directly: steps-per-second of the same policy/environment pair at
``num_envs=8`` versus ``num_envs=1`` (identical physics per the parity suite
in ``tests/parallel``), asserting the ≥2× speedup the subsystem is built
for, plus the cache hit-rate of a GA population evaluation.

The compiled-execution entries measure ``repro.compile`` on top of that:
the same vector env stepped with ``compile=True`` versus ``compile=False``
(identical physics per ``tests/compile``), without a simulation cache so the
measurement sits in the simulation-bound regime the batched MNA solve was
built for.  The MNA topologies carry the hard ≥4× floor (CI re-asserts it
from the recorded ``compiled_steps_per_s`` / ``interpreted_steps_per_s``
via ``compare_bench.py --floor``); the analytic topologies are dominated by
per-env Python bookkeeping, so their ratio is recorded under separate
``*_analytic`` keys and gated only by a modest sanity floor here.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.parallel import VectorCircuitEnv

#: Batch width compared against the sequential path.
NUM_ENVS = 8

#: Episodes per timed measurement (kept small; episodes are 12 steps).
EPISODES = 24

MAX_STEPS = 12


def _sequential_throughput(policy_id: str, seed: int = 0) -> float:
    env = repro.make_env("opamp-p2s-v0", seed=seed, max_steps=MAX_STEPS)
    policy = repro.make_policy(policy_id, env, np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    steps = 0
    start = time.perf_counter()
    for _ in range(EPISODES):
        observation = env.reset()
        done = False
        while not done:
            action, _, _ = policy.act(observation, rng)
            observation, _, done, _ = env.step(action)
            steps += 1
    return steps / (time.perf_counter() - start)


def _vectorized_throughput(policy_id: str, seed: int = 0) -> tuple:
    env = repro.make_env("opamp-p2s-v0", seed=seed, max_steps=MAX_STEPS)
    vector_env = VectorCircuitEnv.from_env(env, num_envs=NUM_ENVS, seed=seed)
    policy = repro.make_policy(policy_id, env, np.random.default_rng(seed))
    rng = np.random.default_rng(seed)
    observations = vector_env.reset()
    steps = 0
    finished = 0
    start = time.perf_counter()
    while finished < EPISODES:
        actions, _, _ = policy.act_batch(observations, rng)
        observations, _, dones, _ = vector_env.step(actions)
        steps += NUM_ENVS
        finished += int(dones.sum())
    elapsed = time.perf_counter() - start
    assert vector_env.cache is not None
    return steps / elapsed, vector_env.cache.stats


def test_vectorized_rollout_speedup(benchmark):
    """GAT-FC rollout collection: ≥2× steps/s at num_envs=8 vs num_envs=1."""

    def run():
        sequential = _sequential_throughput("gat_fc")
        vectorized, cache_stats = _vectorized_throughput("gat_fc")
        return sequential, vectorized, cache_stats

    sequential, vectorized, cache_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = vectorized / sequential

    benchmark.extra_info.update(
        {
            "num_envs": NUM_ENVS,
            "policy": "gat_fc",
            "sequential_steps_per_s": round(sequential, 1),
            "vectorized_steps_per_s": round(vectorized, 1),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(cache_stats.hit_rate, 4),
        }
    )
    # Measured 2.4-2.9x on dedicated hardware; the hard gate is set below the
    # 2x target so CPU-throttled shared CI runners don't flake the job, while
    # still catching a real regression (an unbatched path measures ~1.0x).
    # The exact measured ratio is what the uploaded benchmark JSON tracks.
    assert speedup >= 1.5, (
        f"batched evaluation at num_envs={NUM_ENVS} regressed: measured "
        f"{speedup:.2f}x vs sequential (expect >= 2x on unloaded hardware)"
    )


def _compiled_vs_interpreted(env_id: str, steps: int = 25, seed: int = 0) -> tuple:
    """Steps/s of the same uncached vector env, compiled vs interpreted.

    ``cache_size=None`` keeps every step in the simulator (the regime the
    batched kernels accelerate); both sides consume identical action
    streams, and the compiled side must never have fallen back.
    """
    throughput = {}
    for compiled in (True, False):
        template = repro.make_env(env_id, seed=None, max_steps=MAX_STEPS)
        env = VectorCircuitEnv.from_env(
            template, num_envs=NUM_ENVS, seed=seed, cache_size=None, compile=compiled
        )
        env.reset()
        rng = np.random.default_rng(seed + 1)
        actions = [
            rng.integers(0, 3, size=(NUM_ENVS, env.num_parameters))
            for _ in range(steps)
        ]
        env.step(actions[0])  # plan build + workspace warm-up outside the clock
        start = time.perf_counter()
        for action in actions:
            env.step(action)
        elapsed = time.perf_counter() - start
        throughput[compiled] = NUM_ENVS * steps / elapsed
        if compiled:
            plan = env.compiled_plan
            assert plan is not None and plan.fallback_steps == 0
    return throughput[True], throughput[False]


@pytest.mark.parametrize("env_id", ["opamp-mna-v0", "current_mirror_ota-mna-v0"])
def test_compiled_mna_rollout_speedup(benchmark, env_id):
    """Batched stacked-MNA episode plans: ≥4× steps/s vs interpreted."""
    compiled, interpreted = benchmark.pedantic(
        lambda: _compiled_vs_interpreted(env_id), rounds=1, iterations=1
    )
    speedup = compiled / interpreted
    benchmark.extra_info.update(
        {
            "num_envs": NUM_ENVS,
            "env_id": env_id,
            "compiled_steps_per_s": round(compiled, 1),
            "interpreted_steps_per_s": round(interpreted, 1),
            "compiled_speedup": round(speedup, 2),
        }
    )
    # Measured 16-23x on dedicated hardware; 4x is the subsystem's
    # acceptance floor (also re-asserted by CI's compare_bench --floor on
    # the recorded extra_info, so the gate survives baseline regeneration).
    assert speedup >= 4.0, (
        f"compiled {env_id} rollout regressed: measured {speedup:.2f}x vs "
        "interpreted (floor 4x, expect >= 16x on unloaded hardware)"
    )


@pytest.mark.parametrize("env_id", ["opamp-p2s-v0", "current_mirror_ota-p2s-v0"])
def test_compiled_analytic_rollout_speedup(benchmark, env_id):
    """Analytic topologies: bookkeeping-bound, so only a sanity floor."""
    compiled, interpreted = benchmark.pedantic(
        lambda: _compiled_vs_interpreted(env_id), rounds=1, iterations=1
    )
    speedup = compiled / interpreted
    benchmark.extra_info.update(
        {
            "num_envs": NUM_ENVS,
            "env_id": env_id,
            # Distinct key names keep these entries out of the CI --floor
            # gate, which asserts the 4x contract on the MNA entries only.
            "compiled_steps_per_s_analytic": round(compiled, 1),
            "interpreted_steps_per_s_analytic": round(interpreted, 1),
            "compiled_speedup": round(speedup, 2),
        }
    )
    # Measured 2-2.5x; the floor only rules out a pessimized compiled path.
    assert speedup >= 1.2, (
        f"compiled {env_id} rollout slower than interpreted: {speedup:.2f}x"
    )


def test_population_evaluation_cache(benchmark):
    """GA population evaluation through the vector path: cache absorbs repeats."""
    env = repro.make_env("opamp-p2s-v0", seed=0)
    target = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}

    def run():
        optimizer = repro.make_optimizer(
            "genetic", vectorize=NUM_ENVS, population_size=12, elite_count=3,
            stop_when_met=False,
        )
        return optimizer.optimize(env, budget=96, seed=0, target_specs=target)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.metadata["simulation_cache"]

    benchmark.extra_info.update(
        {
            "evaluations": int(result.num_simulations),
            "cache_hits": int(stats.hits),
            "cache_misses": int(stats.misses),
            "cache_hit_rate": round(stats.hit_rate, 4),
            "best_objective": float(result.best_objective),
        }
    )
    # Elites are re-scored every generation, so a healthy fraction of the
    # population evaluations must come from the cache rather than the
    # simulator.
    assert stats.hits > 0
    assert stats.misses < result.num_simulations
