"""Deprecated environment factories (superseded by :mod:`repro.api`).

The canonical environment catalog now lives behind gym-style string IDs::

    repro.make_env("opamp-p2s-v0", seed=0)       # was make_opamp_env(seed=0)
    repro.make_env("rf_pa-coarse-v0", seed=0)    # was make_rf_pa_env(fidelity="coarse")
    repro.make_env("rf_pa-fom-v0", seed=0)       # was make_rf_pa_fom_env()

The helpers below stay importable for old code and emit a
``DeprecationWarning`` when called; they delegate to the registry so both
paths construct identical environments.
"""

from __future__ import annotations

from typing import Optional

from repro.env.circuit_env import CircuitDesignEnv


def make_opamp_env(
    seed: Optional[int] = None,
    max_steps: int = 50,
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    """Deprecated: use ``repro.make_env("opamp-p2s-v0", ...)``."""
    from repro.api.catalog import make_env
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_opamp_env", "repro.make_env('opamp-p2s-v0', ...)")
    return make_env(
        "opamp-p2s-v0",
        seed=seed,
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
    )


def _pa_env_id(fidelity: str, fom: bool = False) -> str:
    fidelity = fidelity.lower()
    if fidelity not in {"fine", "coarse"}:
        raise ValueError(f"fidelity must be 'fine' or 'coarse', got '{fidelity}'")
    if fom:
        return "rf_pa-fom-v0" if fidelity == "fine" else "rf_pa-fom-coarse-v0"
    return f"rf_pa-{fidelity}-v0"


def make_rf_pa_env(
    seed: Optional[int] = None,
    max_steps: int = 30,
    fidelity: str = "fine",
    initial_sizing: str = "center",
    goal_tolerance: float = 0.0,
) -> CircuitDesignEnv:
    """Deprecated: use ``repro.make_env("rf_pa-fine-v0" / "rf_pa-coarse-v0", ...)``."""
    from repro.api.catalog import make_env
    from repro.api.deprecation import warn_deprecated

    warn_deprecated("make_rf_pa_env", "repro.make_env('rf_pa-fine-v0' or 'rf_pa-coarse-v0', ...)")
    return make_env(
        _pa_env_id(fidelity),
        seed=seed,
        max_steps=max_steps,
        initial_sizing=initial_sizing,
        goal_tolerance=goal_tolerance,
    )


def make_rf_pa_fom_env(
    seed: Optional[int] = None,
    max_steps: int = 30,
    fidelity: str = "fine",
    initial_sizing: str = "center",
) -> CircuitDesignEnv:
    """Deprecated: use ``repro.make_env("rf_pa-fom-v0" / "rf_pa-fom-coarse-v0", ...)``."""
    from repro.api.catalog import make_env
    from repro.api.deprecation import warn_deprecated

    warn_deprecated(
        "make_rf_pa_fom_env", "repro.make_env('rf_pa-fom-v0' or 'rf_pa-fom-coarse-v0', ...)"
    )
    return make_env(
        _pa_env_id(fidelity, fom=True),
        seed=seed,
        max_steps=max_steps,
        initial_sizing=initial_sizing,
    )
