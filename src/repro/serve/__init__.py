"""``repro.serve`` — the policy deployment service and async gateway.

The paper's headline claim is deployment: a trained policy automatically
finds device parameters for *given specifications* (Sec. 4, Table 2,
Figs. 5-6).  This package turns that into a train-once / serve-many
subsystem:

* :class:`DeploymentService` — holds checkpointed policies (one per
  environment/topology), accepts many specification targets, groups them by
  topology, and micro-batches the episodes through a shared cached simulator
  via the grad-free batched deployment engine
  (:func:`repro.agents.deploy_policy_batch`);
* :class:`Gateway` — the async front door: per-request futures, deadline-
  based dynamic batching, a sharded worker pool, structured error responses
  (:mod:`repro.serve.gateway`; :class:`ProcessShardPool` is its
  multi-process backend);
* :class:`ServeRequest` / :class:`ServeResponse` / :class:`ServeError` —
  the versioned wire protocol (``schema_version`` 1), with strict
  ``to_json`` / ``from_json`` round-tripping
  (:mod:`repro.serve.protocol`);
* :func:`load_requests_document` — parse the request documents consumed by
  the ``python -m repro.run deploy`` / ``serve`` CLIs
  (:mod:`repro.serve.cli`); the pre-gateway ``specs.json`` entry points
  (:func:`load_spec_requests`, :func:`parse_spec_requests`) remain as
  deprecated shims.

Quickstart::

    import repro
    from repro.serve import DeploymentService, Gateway, ServeRequest

    service = DeploymentService.from_checkpoint("ckpt/latest.npz", batch_size=8)
    with Gateway(service, num_workers=2) as gateway:
        future = gateway.submit(ServeRequest(target_specs={
            "gain": 350.0, "bandwidth": 1.8e7,
            "phase_margin": 55.0, "power": 4e-3,
        }))
        response = future.result()
        print(response.success, response.steps, response.final_parameters)
"""

from repro.serve.gateway import Gateway, ProcessShardPool, RequestQueue
from repro.serve.protocol import (
    SCHEMA_VERSION,
    ServeError,
    ServeRequest,
    ServeResponse,
    load_requests_document,
    parse_requests_document,
)
from repro.serve.service import DeploymentService, ServeStats, ServeStatsSnapshot
from repro.serve.specs import load_spec_requests, parse_spec_requests

__all__ = [
    "SCHEMA_VERSION",
    "DeploymentService",
    "Gateway",
    "ProcessShardPool",
    "RequestQueue",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServeStats",
    "ServeStatsSnapshot",
    "load_requests_document",
    "load_spec_requests",
    "parse_requests_document",
    "parse_spec_requests",
]
