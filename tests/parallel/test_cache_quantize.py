"""Regression tests for cache-key quantization (decade-boundary bugfix).

The original ``quantize_significant`` computed its scale ``10^(digits-1-e)``
from the pre-rounding exponent and applied it as a single float multiply /
divide.  For exponents where that scale is not exactly representable in
binary (``|scale| > 1e22`` — e.g. every capacitance around ``1e-13`` F at
the default 12 digits) the rounding landed at the wrong decimal position:
values straddling a decade boundary split into different cache keys
(``9.99999999999995e-13`` vs ``1.0e-12``) and outputs carried more than
``digits`` significant digits.  These tests pin the fixed behaviour; every
one of the boundary/identity assertions fails on the old implementation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library.two_stage_opamp import build_two_stage_opamp
from repro.parallel.cache import SimulationCache, quantize_significant
from repro.simulation.opamp_sim import OpAmpSimulator

DIGITS = 12


class TestQuantizeSignificantBoundary:
    def test_decade_boundary_rounds_into_next_decade(self):
        """A value that rounds up across a decade equals the decade's own key."""
        below = quantize_significant(np.array([9.99999999999995e-13]), DIGITS)
        exact = quantize_significant(np.array([1.0e-12]), DIGITS)
        assert below[0] == exact[0] == 1.0e-12

    def test_identity_on_already_quantized_values(self):
        """Values with <= 12 significant digits are fixed points (the old
        implementation returned 1.0000000000000002e-12 for 1e-12)."""
        values = np.array([1e-12, 1e-13, 2e-12, 1.3e-13, 9.7e-13, 40e-6, 16.0, 1.2])
        assert np.array_equal(quantize_significant(values, DIGITS), values)

    @pytest.mark.parametrize("exponent", range(-15, 6))
    def test_boundary_collapse_in_every_decade(self, exponent):
        base = 10.0**exponent
        just_below = base * (1.0 - 4e-13)      # rounds up to the decade
        noisy = base * (1.0 + 1e-14)           # float noise below resolution
        quantized = quantize_significant(np.array([just_below, base, noisy]), DIGITS)
        assert quantized[0] == quantized[1] == quantized[2]

    def test_distinct_decimals_stay_distinct(self):
        for exponent in (-14, -13, -12, -6, 0, 3):
            values = np.array(
                [float(f"1.2345678901{d}e{exponent}") for d in range(10)]
            )
            quantized = quantize_significant(values, DIGITS)
            assert len(set(quantized.tolist())) == len(values)

    def test_zero_and_signed_zero(self):
        quantized = quantize_significant(np.array([0.0, -0.0]), DIGITS)
        assert np.array_equal(quantized, np.array([0.0, 0.0]))
        assert not np.signbit(quantized).any()

    def test_negative_values_mirror_positive(self):
        positive = quantize_significant(np.array([9.99999999999995e-13]), DIGITS)
        negative = quantize_significant(np.array([-9.99999999999995e-13]), DIGITS)
        assert negative[0] == -positive[0]

    def test_coarse_digit_counts(self):
        quantized = quantize_significant(np.array([1.23456789, 0.000987654321]), 3)
        assert quantized[0] == pytest.approx(1.23)
        assert quantized[1] == pytest.approx(0.000988)


class TestCacheKeyBoundary:
    """The cache must serve boundary-straddling capacitances from one entry."""

    def _cached(self):
        return SimulationCache(OpAmpSimulator(), max_entries=16)

    def test_straddling_values_share_one_entry(self):
        benchmark = build_two_stage_opamp()
        cache = self._cached()
        netlist = benchmark.fresh_netlist()
        netlist.set_parameter("CC", "value", 1.0e-12)
        cache.simulate(netlist)
        netlist.set_parameter("CC", "value", 1.0e-12 * (1.0 + 2e-14))
        cache.simulate(netlist)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_grid_points_never_collide(self):
        benchmark = build_two_stage_opamp()
        cache = self._cached()
        rng = np.random.default_rng(0)
        keys = set()
        for _ in range(300):
            netlist = benchmark.fresh_netlist()
            benchmark.design_space.apply_to_netlist(
                netlist, benchmark.design_space.sample(rng)
            )
            keys.add(cache._key(netlist))
        assert len(keys) == 300

    def test_key_distinguishes_topologies(self):
        benchmark = build_two_stage_opamp()
        cache = self._cached()
        netlist = benchmark.fresh_netlist()
        renamed = benchmark.fresh_netlist()
        renamed.name = "other_circuit"
        assert cache._key(netlist) != cache._key(renamed)
