"""The legacy factories: still importable, still working, but warning.

This is the one place the deprecated entry points are exercised on purpose —
the CI deprecation job runs the suite with ``-W error::DeprecationWarning``
and these tests stay green because ``pytest.warns`` captures the warnings
before the filter escalates them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.circuit_env import CircuitDesignEnv


def test_legacy_env_factories_warn_but_work():
    from repro.env import make_opamp_env, make_rf_pa_env, make_rf_pa_fom_env

    with pytest.warns(DeprecationWarning, match="make_opamp_env"):
        env = make_opamp_env(seed=0, max_steps=9)
    assert isinstance(env, CircuitDesignEnv)
    assert env.max_steps == 9

    with pytest.warns(DeprecationWarning, match="make_rf_pa_env"):
        env = make_rf_pa_env(seed=0, fidelity="coarse")
    assert env.simulator.name == "rf_pa_coarse"

    with pytest.warns(DeprecationWarning, match="make_rf_pa_fom_env"):
        env = make_rf_pa_fom_env(seed=0)
    assert env.is_fom_mode


def test_legacy_rf_pa_factory_still_validates_fidelity():
    from repro.env import make_rf_pa_env

    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError, match="fidelity"):
            make_rf_pa_env(fidelity="medium")


def test_legacy_env_factory_matches_registry(opamp_env):
    from repro.env import make_opamp_env

    with pytest.warns(DeprecationWarning):
        legacy = make_opamp_env(seed=11)
    import repro

    registry_env = repro.make_env("opamp-p2s-v0", seed=11)
    legacy.reset(), registry_env.reset()
    assert legacy.target_specs == registry_env.target_specs


def test_legacy_policy_factories_warn_but_work(opamp_env, rng):
    from repro.agents import (
        make_baseline_a_policy,
        make_baseline_b_policy,
        make_gat_fc_policy,
        make_gcn_fc_policy,
    )
    from repro.agents.policy import ActorCriticPolicy

    for factory in (make_gcn_fc_policy, make_gat_fc_policy,
                    make_baseline_a_policy, make_baseline_b_policy):
        with pytest.warns(DeprecationWarning, match=factory.__name__):
            policy = factory(opamp_env, rng)
        assert isinstance(policy, ActorCriticPolicy)


def test_legacy_make_policy_dispatch_warns_and_matches_registry(opamp_env):
    import repro
    from repro.agents.policy import ActorCriticPolicy, make_policy

    target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
    observation = opamp_env.reset(target_specs=target)
    with pytest.warns(DeprecationWarning, match="make_policy"):
        legacy = make_policy("gat_fc", opamp_env, np.random.default_rng(5))
    assert isinstance(legacy, ActorCriticPolicy)
    registry = repro.make_policy("gat_fc", opamp_env, np.random.default_rng(5))
    np.testing.assert_allclose(
        legacy.action_distribution(observation).probs,
        registry.action_distribution(observation).probs,
    )


def test_legacy_make_policy_unknown_name_raises_value_error(opamp_env):
    from repro.agents.policy import make_policy

    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError):
            make_policy("alphazero", opamp_env)


def test_legacy_experiments_make_optimizer_warns_but_works():
    from repro.baselines import GeneticAlgorithm, RandomSearch
    from repro.experiments import make_optimizer

    with pytest.warns(DeprecationWarning, match="make_optimizer"):
        ga = make_optimizer("genetic_algorithm", seed=0, budget=60)
    assert isinstance(ga, GeneticAlgorithm)
    # budget 60 = initial population (20) + 2 generations of 20
    assert ga.config.num_generations == 2

    with pytest.warns(DeprecationWarning):
        rs = make_optimizer("random_search", seed=0, budget=15)
    assert isinstance(rs, RandomSearch)
    assert rs.config.num_samples == 15

    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError):
            make_optimizer("ppo")  # not a direct-search method


def test_legacy_names_remain_importable_from_repro():
    import repro

    for name in (
        "make_opamp_env",
        "make_rf_pa_env",
        "make_rf_pa_fom_env",
        "make_gcn_fc_policy",
        "make_gat_fc_policy",
        "make_baseline_a_policy",
        "make_baseline_b_policy",
    ):
        assert callable(getattr(repro, name))
