"""Fig. 5 — automated design with policy deployment.

Trains a GCN-FC policy at reduced budget and deploys it toward the exact
target groups shown in Fig. 5 of the paper (op-amp: G=350, B=1.8e7 Hz,
PM=55°, P=4 mW; RF PA: Pout=2.5 W, E=57 %), recording the per-step
specification trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import deployment_example


@pytest.mark.parametrize("circuit", ["two_stage_opamp", "rf_pa"])
def test_fig5_deployment_trajectory(benchmark, scale, circuit):
    def run():
        return deployment_example(circuit, method="gcn_fc", scale=scale, seed=0)

    example = benchmark.pedantic(run, rounds=1, iterations=1)

    # The deployment episode respects the paper's step budget.
    budget = 50 if circuit == "two_stage_opamp" else 30
    assert 1 <= example.steps <= budget
    # Every specification trajectory is recorded for every step.
    for name in example.target_specs:
        series = example.spec_series(name)
        assert series.shape == (example.steps,)
        assert np.all(np.isfinite(series))

    benchmark.extra_info.update(
        {
            "circuit": circuit,
            "target_specs": {k: float(v) for k, v in example.target_specs.items()},
            "final_specs": {k: float(v) for k, v in example.result.final_specs.items()},
            "deployment_steps": int(example.steps),
            "success": bool(example.success),
        }
    )
