"""RL agents: the GNN-FC multimodal policy, prior-art policies, PPO, deployment."""

from repro.agents.checkpoint import (
    CheckpointError,
    PolicyCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.agents.deployment import (
    DeploymentEvaluation,
    DeploymentResult,
    deploy_policy,
    deploy_policy_batch,
    evaluate_deployment,
)
from repro.agents.policy import (
    POLICY_FACTORIES,
    ActorCriticPolicy,
    PolicyConfig,
    make_baseline_a_policy,
    make_baseline_b_policy,
    make_gat_fc_policy,
    make_gcn_fc_policy,
    make_policy,
)
from repro.agents.ppo import PPOConfig, PPOTrainer, TrainingHistory, TrainingRecord
from repro.agents.rollout import RolloutBuffer, Transition
from repro.agents.transfer import (
    RewardFidelityReport,
    TransferLearningResult,
    TransferLearningWorkflow,
    reward_fidelity_report,
    transfer_policy_parameters,
)

__all__ = [
    "ActorCriticPolicy",
    "CheckpointError",
    "DeploymentEvaluation",
    "DeploymentResult",
    "POLICY_FACTORIES",
    "PolicyCheckpoint",
    "PPOConfig",
    "PPOTrainer",
    "PolicyConfig",
    "RewardFidelityReport",
    "RolloutBuffer",
    "TrainingHistory",
    "TrainingRecord",
    "Transition",
    "TransferLearningResult",
    "TransferLearningWorkflow",
    "deploy_policy",
    "deploy_policy_batch",
    "evaluate_deployment",
    "load_checkpoint",
    "make_baseline_a_policy",
    "make_baseline_b_policy",
    "make_gat_fc_policy",
    "make_gcn_fc_policy",
    "make_policy",
    "reward_fidelity_report",
    "save_checkpoint",
    "transfer_policy_parameters",
]
