"""Contract tests for ``tools/check_docs.py`` (the blocking CI docs job).

The checker is a standalone script, not part of the ``repro`` package, so it
is loaded here by file path.  Each test builds a small markdown tree in
``tmp_path`` and drives ``main()`` directly; the one executed fence per test
is trivial (``print``/``raise``) so the subprocess round-trip stays fast.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_SPEC = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_SPEC)
# Registered before exec: the script's dataclasses resolve their (postponed)
# annotations through sys.modules[module.__name__].
sys.modules["check_docs"] = check_docs
_SPEC.loader.exec_module(check_docs)


def write(path: Path, text: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestParsing:
    def test_fences_and_links_are_separated(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "A [real link](other.md) here.\n"
            "```python\n"
            "x = [1](2)  # looks like a link, is code\n"
            "```\n"
            "```bash\n"
            "echo hi\n"
            "```\n",
        )
        parsed = check_docs.parse_document(doc)
        assert [link.target for link in parsed.links] == ["other.md"]
        assert [fence.language for fence in parsed.fences] == ["python", "bash"]
        assert parsed.fences[0].code == "x = [1](2)  # looks like a link, is code\n"

    def test_skip_marker_binds_to_the_next_fence_only(self, tmp_path):
        doc = write(
            tmp_path / "doc.md",
            "<!-- docs-exec: skip (slow) -->\n"
            "```python\n"
            "first = 1\n"
            "```\n"
            "```python\n"
            "second = 2\n"
            "```\n",
        )
        first, second = check_docs.parse_document(doc).fences
        assert first.skip_reason == "slow"
        assert second.skip_reason is None

    def test_unterminated_fence_is_a_failure(self, tmp_path):
        write(tmp_path / "doc.md", "```python\nx = 1\n")
        assert check_docs.main([str(tmp_path / "doc.md")]) == 1


class TestLinks:
    def test_dead_relative_link_fails(self, tmp_path, capsys):
        write(tmp_path / "doc.md", "see [gone](missing.md)\n")
        assert check_docs.main([str(tmp_path / "doc.md")]) == 1
        assert "dead link -> missing.md" in capsys.readouterr().err

    def test_live_links_external_urls_and_anchors_pass(self, tmp_path):
        write(tmp_path / "other.md", "# other\n")
        write(
            tmp_path / "doc.md",
            "[file](other.md) [dir](sub) [frag](other.md#section)\n"
            "[web](https://example.com/x.md) [anchor](#local) [mail](mailto:a@b.c)\n",
        )
        (tmp_path / "sub").mkdir()
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_links_resolve_relative_to_their_own_file(self, tmp_path):
        write(tmp_path / "docs" / "guide.md", "[up](../README.md)\n")
        write(tmp_path / "README.md", "# readme\n")
        assert check_docs.main([str(tmp_path / "docs")]) == 0


class TestExecution:
    def test_failing_fence_fails_with_its_traceback(self, tmp_path, capsys):
        write(tmp_path / "doc.md", '```python\nraise RuntimeError("stale example")\n```\n')
        assert check_docs.main([str(tmp_path / "doc.md")]) == 1
        assert "stale example" in capsys.readouterr().err

    def test_passing_fence_passes(self, tmp_path):
        write(tmp_path / "doc.md", '```python\nprint("ok")\n```\n')
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_fences_see_the_repro_package(self, tmp_path):
        # The whole point: doc examples import the library under test.
        write(tmp_path / "doc.md", "```python\nimport repro\nrepro.list_optimizers()\n```\n")
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_non_python_fences_are_not_executed(self, tmp_path):
        write(tmp_path / "doc.md", "```bash\nexit 1\n```\n")
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_timeout_names_the_skip_marker(self, tmp_path, capsys):
        write(tmp_path / "doc.md", "```python\nimport time\ntime.sleep(60)\n```\n")
        assert check_docs.main([str(tmp_path / "doc.md"), "--timeout", "1"]) == 1
        assert "docs-exec: skip" in capsys.readouterr().err


class TestSkipMarker:
    def test_skipped_fence_is_not_executed_but_must_compile(self, tmp_path):
        write(
            tmp_path / "doc.md",
            "<!-- docs-exec: skip (would raise) -->\n"
            '```python\nraise RuntimeError("never runs")\n```\n',
        )
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_skipped_fragment_may_be_a_function_body(self, tmp_path):
        # e.g. docs/analysis-rules.md quotes a bare `return` line.
        write(
            tmp_path / "doc.md",
            "<!-- docs-exec: skip (fragment) -->\n```python\nreturn x + 1\n```\n",
        )
        assert check_docs.main([str(tmp_path / "doc.md")]) == 0

    def test_skipped_fence_with_broken_syntax_still_fails(self, tmp_path, capsys):
        write(
            tmp_path / "doc.md",
            "<!-- docs-exec: skip (slow) -->\n```python\ndef broken(:\n```\n",
        )
        assert check_docs.main([str(tmp_path / "doc.md")]) == 1
        assert "does not even compile" in capsys.readouterr().err

    def test_no_exec_mode_compiles_everything(self, tmp_path):
        write(tmp_path / "doc.md", '```python\nraise RuntimeError("not run")\n```\n')
        assert check_docs.main([str(tmp_path / "doc.md"), "--no-exec"]) == 0


class TestRepositoryDocs:
    def test_bad_root_is_a_usage_error(self, tmp_path):
        assert check_docs.main([str(tmp_path / "nope.md")]) == 2

    @pytest.mark.parametrize("root", ["README.md", "docs"])
    def test_own_docs_pass_links_and_syntax(self, root):
        # Full fence execution is the CI docs job; tier 1 keeps the fast
        # guarantee that no link is dead and no fence has gone syntactically
        # stale.
        assert check_docs.main([root, "--no-exec"]) == 0
