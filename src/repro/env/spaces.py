"""Observation and action space descriptions for the circuit environment.

The action space follows the paper exactly: for each of the ``M`` tunable
device parameters the policy picks one of three moves — decrease by one step,
keep, or increase by one step — so an action is an integer vector of length
``M`` with entries in ``{0, 1, 2}``.

The observation bundles everything any of the compared policies may need:

* the circuit graph (adjacency + *dynamic* node features) for the GNN branch
  of the proposed policy,
* static-technology node features for the Baseline B reproduction,
* the specification context (normalized target specs, normalized measured
  specs, and their normalized gap) for the FCNN branch, and
* the normalized device-parameter vector for the AutoCkt-style Baseline A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: Number of choices per parameter (decrease / keep / increase).
NUM_ACTION_CHOICES = 3

#: Action index meanings, matching :data:`repro.circuits.parameters.ACTION_DELTAS`.
ACTION_DECREASE, ACTION_KEEP, ACTION_INCREASE = 0, 1, 2


@dataclass(frozen=True)
class ActionSpace:
    """Discrete ``M x 3`` action space."""

    num_parameters: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_parameters, NUM_ACTION_CHOICES)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random action vector (used by random-policy baselines)."""
        return rng.integers(0, NUM_ACTION_CHOICES, size=self.num_parameters)

    def no_op(self) -> np.ndarray:
        """The all-keep action."""
        return np.full(self.num_parameters, ACTION_KEEP, dtype=np.int64)

    def contains(self, action: np.ndarray) -> bool:
        action = np.asarray(action)
        return (
            action.shape == (self.num_parameters,)
            and np.issubdtype(action.dtype, np.integer)
            and bool(np.all((action >= 0) & (action < NUM_ACTION_CHOICES)))
        )


@dataclass
class Observation:
    """One environment observation (see module docstring)."""

    node_features: np.ndarray
    static_node_features: np.ndarray
    adjacency: np.ndarray
    spec_features: np.ndarray
    normalized_parameters: np.ndarray
    measured_specs: Dict[str, float]
    target_specs: Dict[str, float]

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_parameters(self) -> int:
        return self.normalized_parameters.shape[0]

    def flat_vector(self) -> np.ndarray:
        """Spec context + parameters, the Baseline A (AutoCkt-style) input."""
        return np.concatenate([self.spec_features, self.normalized_parameters])


@dataclass
class BatchedObservation:
    """``N`` stacked observations from a :class:`~repro.parallel.VectorCircuitEnv`.

    All sub-environments of a vector env share one circuit topology, so the
    adjacency matrix is stored once while the per-environment quantities are
    stacked along a leading batch axis:

    * ``node_features`` / ``static_node_features`` — ``(N, nodes, features)``
    * ``spec_features`` — ``(N, 3 * num_specs)``
    * ``normalized_parameters`` — ``(N, M)``

    The stacked arrays feed the policy's batched forward pass
    (:meth:`repro.agents.policy.ActorCriticPolicy.act_batch`) directly;
    ``__getitem__`` recovers the per-environment :class:`Observation` (rows
    are bitwise-identical to what the sequential environment would produce,
    because they are assembled by the very same code and then stacked).
    """

    node_features: np.ndarray
    static_node_features: np.ndarray
    adjacency: np.ndarray
    spec_features: np.ndarray
    normalized_parameters: np.ndarray
    measured_specs: List[Dict[str, float]]
    target_specs: List[Dict[str, float]]

    @classmethod
    def stack(cls, observations: Sequence[Observation]) -> "BatchedObservation":
        """Stack per-environment observations sharing one topology."""
        if not observations:
            raise ValueError("cannot stack an empty observation batch")
        first = observations[0]
        for other in observations[1:]:
            if other.adjacency.shape != first.adjacency.shape:
                raise ValueError("all observations in a batch must share one topology")
        return cls(
            node_features=np.stack([o.node_features for o in observations]),
            static_node_features=np.stack([o.static_node_features for o in observations]),
            adjacency=first.adjacency,
            spec_features=np.stack([o.spec_features for o in observations]),
            normalized_parameters=np.stack([o.normalized_parameters for o in observations]),
            measured_specs=[dict(o.measured_specs) for o in observations],
            target_specs=[dict(o.target_specs) for o in observations],
        )

    @property
    def num_envs(self) -> int:
        return self.node_features.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[1]

    @property
    def num_parameters(self) -> int:
        return self.normalized_parameters.shape[1]

    def __len__(self) -> int:
        return self.num_envs

    def __getitem__(self, index: int) -> Observation:
        """Per-environment view (arrays are slices of the stacked storage)."""
        return Observation(
            node_features=self.node_features[index],
            static_node_features=self.static_node_features[index],
            adjacency=self.adjacency,
            spec_features=self.spec_features[index],
            normalized_parameters=self.normalized_parameters[index],
            measured_specs=self.measured_specs[index],
            target_specs=self.target_specs[index],
        )

    def flat_matrix(self) -> np.ndarray:
        """Stacked Baseline A inputs, shape ``(N, 3 * num_specs + M)``."""
        return np.concatenate([self.spec_features, self.normalized_parameters], axis=-1)
