"""Vectorized simulator kernels: batched bitwise twins of the scalar evaluators.

Each kernel evaluates ``K`` parameter vectors (one per environment) in a
handful of numpy array operations, producing exactly the spec/detail values
the scalar simulator would produce per row.  Bitwise fidelity rests on a few
rules applied throughout:

* every expression mirrors the scalar association exactly — e.g.
  ``((0.5 * kp) * strength) * (ov * ov)`` lanes match the scalar
  ``0.5 * self.kp * self.strength * (overdrive * overdrive)`` chain because
  numpy elementwise arithmetic on float64 is the same IEEE operation;
* scalar ``if``/``min``/``max`` branches become ``np.where`` with the exact
  predicate (``min(x, y)`` is ``np.where(y < x, y, x)``, preserving NaN and
  signed-zero behaviour that ``np.minimum`` does not);
* both-branch evaluation runs under ``np.errstate`` so unselected lanes may
  divide by zero or multiply infinities silently;
* scalar library calls (``np.sqrt``, ``np.arctan2``, ``np.degrees``,
  ``np.clip``) vectorize bitwise-identically.

The MNA-method op-amp kernel additionally stamps all ``K`` small-signal
systems through one :class:`~repro.compile.BatchedMNAPlan` (the per-topology
stacked solve) and replays the scalar unity-crossing post-processing per
row.

Kernels are constructed by :func:`build_simulator_kernel`, which recognizes
the exact simulator types it has a twin for and raises
:class:`UntraceableError` for anything else (subclasses included — an
override could change the arithmetic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.netlist import Netlist
from repro.compile.errors import UntraceableError
from repro.compile.mna_plan import BatchedMNAPlan
from repro.simulation.mna import ConvergenceError
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator
from repro.simulation.technology import CmosTechnology

TWO_PI = 2.0 * math.pi


@dataclass
class KernelResult:
    """Column-oriented batched simulation output (one lane per environment)."""

    specs: Dict[str, np.ndarray]
    details: Dict[str, np.ndarray]
    valid: np.ndarray  # (K,) bool

    def spec_dict(self, k: int) -> Dict[str, float]:
        """Row ``k`` as the exact dict the scalar ``simulate`` would build."""
        return {name: float(column[k]) for name, column in self.specs.items()}

    def detail_dict(self, k: int) -> Dict[str, float]:
        return {name: float(column[k]) for name, column in self.details.items()}

    @staticmethod
    def _rows(columns: Dict[str, np.ndarray]) -> "list[Dict[str, float]]":
        # One C-level tolist() per column instead of K*S float() calls;
        # float64 -> Python float conversion is bit-exact either way.
        names = list(columns)
        stacked = [columns[name].tolist() for name in names]
        return [
            dict(zip(names, row)) for row in zip(*stacked)
        ]

    def spec_rows(self) -> "list[Dict[str, float]]":
        """All rows at once; ``spec_rows()[k] == spec_dict(k)``."""
        return self._rows(self.specs)

    def detail_rows(self) -> "list[Dict[str, float]]":
        return self._rows(self.details)


def param_flat_index(netlist: Netlist, device: str, attribute: str) -> int:
    """Index of ``(device, attribute)`` in ``netlist.parameter_array()``.

    ``parameter_array`` walks devices in insertion order and extends each
    device's parameter dict values in *its* insertion order; this mirrors
    that walk.
    """
    offset = 0
    for dev in netlist:
        keys = list(dev.parameters)
        if dev.name == device:
            if attribute not in dev.parameters:
                raise UntraceableError(
                    f"device '{device}' has no parameter '{attribute}'"
                )
            return offset + keys.index(attribute)
        offset += len(keys)
    raise UntraceableError(f"netlist has no device '{device}'")


def _where_min(a: np.ndarray, b) -> np.ndarray:
    """Vector twin of Python ``min(a, b)`` (returns ``b`` only if ``b < a``)."""
    return np.where(b < a, b, a)


def _where_max(a: np.ndarray, b) -> np.ndarray:
    """Vector twin of Python ``max(a, b)`` (returns ``b`` only if ``b > a``)."""
    return np.where(b > a, b, a)


def _saturation_current(kp, strength: np.ndarray, overdrive) -> np.ndarray:
    """Twin of ``MosfetModel.saturation_current`` over a strength vector.

    ``kp`` and ``overdrive`` may be scalars (the single-technology kernel) or
    per-lane vectors (corner lanes bound via ``bind_lane_technologies``); the
    scalar cutoff branch becomes the exact ``np.where`` predicate, which is
    bitwise identical either way because the selected lanes evaluate the same
    IEEE expression chain.
    """
    current = ((0.5 * kp) * strength) * (overdrive * overdrive)
    return np.where(overdrive <= 0.0, 0.0, current)


def _gm_at_current(kp: float, strength: np.ndarray, current: np.ndarray) -> np.ndarray:
    """Twin of ``MosfetModel.gm_at_current``."""
    with np.errstate(invalid="ignore"):
        gm = np.sqrt(((2.0 * kp) * strength) * current)
    return np.where(current <= 0.0, 0.0, gm)


def _ro_at_current(channel_lambda: float, current: np.ndarray) -> np.ndarray:
    """Twin of ``MosfetModel.ro_at_current``."""
    with np.errstate(divide="ignore"):
        ro = 1.0 / (channel_lambda * current)
    return np.where(current <= 0.0, np.inf, ro)


def _parallel_vec(r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
    """Twin of ``opamp_sim._parallel``."""
    with np.errstate(invalid="ignore", divide="ignore"):
        combined = (r1 * r2) / (r1 + r2)
    return np.where(np.isinf(r1), r2, np.where(np.isinf(r2), r1, combined))


def _gate_capacitance(
    cox_per_area: float, l_ref: float, width: np.ndarray, fingers: np.ndarray
) -> np.ndarray:
    """Twin of ``MosfetModel.gate_capacitance``."""
    area = (width * fingers) * l_ref
    return cox_per_area * area


def _phase_margin_vec(
    unity_freq: np.ndarray,
    dominant_pole: np.ndarray,
    output_pole: np.ndarray,
    zero: np.ndarray,
    dc_gain: np.ndarray,
) -> np.ndarray:
    """Twin of ``OpAmpSimulator._phase_margin`` (``x - 0.0 == x`` bitwise)."""
    returns_zero = (unity_freq <= 0.0) | (dc_gain <= 1.0) | (dominant_pole <= 0.0)
    phase = -np.degrees(np.arctan2(unity_freq, dominant_pole))
    phase = phase - np.where(
        output_pole > 0.0, np.degrees(np.arctan2(unity_freq, output_pole)), 0.0
    )
    phase = phase - np.where(zero > 0.0, np.degrees(np.arctan2(unity_freq, zero)), 0.0)
    margin = 180.0 + phase
    return np.where(returns_zero, 0.0, np.clip(margin, 0.0, 180.0))


def _require_cmos(simulator) -> CmosTechnology:
    technology = simulator.technology
    if type(technology) is not CmosTechnology:
        raise UntraceableError(
            f"unsupported technology type {type(technology).__name__}"
        )
    return technology


def _bind_cmos_lanes(kernel, technologies) -> None:
    """Rebind a kernel's technology constants to one technology per lane.

    Shared implementation of ``bind_lane_technologies`` for the CMOS
    kernels: lane ``k`` of ``evaluate`` then computes with
    ``technologies[k]``'s constants.  Because every kernel expression is
    elementwise over lanes, each lane stays bitwise identical to a kernel
    constructed from a simulator carrying that lane's technology — this is
    what lets a corner sweep ride as extra batch lanes.

    Only the corner-varying constants (``kp_*``, ``lambda_*``, ``vth_*``)
    may differ across lanes; the geometry constants (``l_ref``,
    ``cox_per_area``) enter the arithmetic as scalars shared by all lanes,
    so they must match the template technology exactly.
    """
    if len(technologies) != kernel.num_envs:
        raise ValueError(
            f"{len(technologies)} lane technologies for {kernel.num_envs} lanes"
        )
    for technology in technologies:
        if type(technology) is not CmosTechnology:
            raise UntraceableError(
                f"unsupported lane technology type {type(technology).__name__}"
            )
        # repro: noqa[REP-FLT01] exact check: corner derivation copies the
        # geometry constants verbatim, so any difference is a real mismatch.
        if technology.l_ref != kernel._l_ref or (
            technology.cox_per_area != kernel._cox_per_area
        ):
            raise UntraceableError(
                "lane technologies must share the template's l_ref/cox_per_area"
            )
    kernel._vth_n = np.array([technology.vth_n for technology in technologies])
    kernel._kp = {
        name: np.array(
            [
                (technology.kp_p if name in kernel._PMOS else technology.kp_n)
                for technology in technologies
            ]
        )
        for name in kernel._DEVICES
    }
    kernel._lambda = {
        name: np.array(
            [
                (technology.lambda_p if name in kernel._PMOS else technology.lambda_n)
                for technology in technologies
            ]
        )
        for name in kernel._DEVICES
    }


class OpAmpKernel:
    """Batched twin of :class:`OpAmpSimulator` (analytic and mna methods)."""

    #: Devices in the order the scalar evaluator builds its model dict.
    _DEVICES = ("M1", "M2", "M3", "M4", "M5", "M6", "M7")
    _PMOS = ("M3", "M4", "M6")

    def __init__(self, simulator: OpAmpSimulator, base_netlist: Netlist, num_envs: int) -> None:
        if type(simulator) is not OpAmpSimulator:
            raise UntraceableError(
                f"unsupported simulator type {type(simulator).__name__}"
            )
        tech = _require_cmos(simulator)
        self._tech = tech
        self._method = simulator.method
        self._bias_overhead = simulator.bias_overhead_current
        self.num_envs = int(num_envs)

        self._width_cols = np.array(
            [param_flat_index(base_netlist, name, "width") for name in self._DEVICES]
        )
        self._finger_cols = np.array(
            [param_flat_index(base_netlist, name, "fingers") for name in self._DEVICES]
        )
        self._cc_col = param_flat_index(base_netlist, "CC", "value")
        self._supply = base_netlist.get_parameter("VP", "voltage")
        self._bias = base_netlist.get_parameter("VBIAS", "voltage")
        self._load_cap = base_netlist.get_parameter("CL", "value")
        # Technology constants held as instance state (scalars here, per-lane
        # vectors after bind_lane_technologies) so corner lanes can rebind
        # them without touching the evaluate() arithmetic.
        self._l_ref = tech.l_ref
        self._cox_per_area = tech.cox_per_area
        self._vth_n = tech.vth_n
        self._kp = {name: (tech.kp_p if name in self._PMOS else tech.kp_n)
                    for name in self._DEVICES}
        self._lambda = {name: (tech.lambda_p if name in self._PMOS else tech.lambda_n)
                        for name in self._DEVICES}

        self._mna_plan: Optional[BatchedMNAPlan] = None
        if self._method == "mna":
            template = simulator.build_small_signal_circuit(base_netlist)
            self._mna_plan = BatchedMNAPlan.from_template(template, self.num_envs)
            self._frequencies = np.logspace(1, 11, 401)
            self._log_frequencies = np.log(self._frequencies)

    def bind_lane_technologies(self, technologies) -> None:
        """Give each batch lane its own technology (see ``_bind_cmos_lanes``)."""
        _bind_cmos_lanes(self, technologies)

    def evaluate(self, full_params: np.ndarray) -> KernelResult:
        widths = full_params[:, self._width_cols]
        fingers = full_params[:, self._finger_cols]
        strengths = (widths * fingers) / self._l_ref
        strength = {name: strengths[:, i] for i, name in enumerate(self._DEVICES)}
        miller_cap = full_params[:, self._cc_col]

        overdrive = self._bias - self._vth_n
        tail_current = _saturation_current(self._kp["M5"], strength["M5"], overdrive)
        second_stage_current = _saturation_current(self._kp["M7"], strength["M7"], overdrive)
        branch_current = tail_current / 2.0
        power = self._supply * (
            tail_current + second_stage_current + self._bias_overhead
        )

        gm1 = _gm_at_current(self._kp["M1"], strength["M1"], branch_current)
        r_first = _parallel_vec(
            _ro_at_current(self._lambda["M2"], branch_current),
            _ro_at_current(self._lambda["M4"], branch_current),
        )
        with np.errstate(invalid="ignore"):
            gain_first = np.where(np.isfinite(r_first), gm1 * r_first, 0.0)

        gm6 = _gm_at_current(self._kp["M6"], strength["M6"], second_stage_current)
        r_second = _parallel_vec(
            _ro_at_current(self._lambda["M6"], second_stage_current),
            _ro_at_current(self._lambda["M7"], second_stage_current),
        )
        with np.errstate(invalid="ignore"):
            gain_second = np.where(np.isfinite(r_second), gm6 * r_second, 0.0)

        first_stage_cap = (
            _gate_capacitance(self._cox_per_area, self._l_ref, widths[:, 5], fingers[:, 5])
            + 10e-15
        )
        total_output_cap = self._load_cap + 20e-15

        with np.errstate(divide="ignore", invalid="ignore"):
            dominant_pole = np.where(
                (gain_second > 0.0) & (r_first > 0.0),
                1.0
                / ((TWO_PI * r_first) * (first_stage_cap + miller_cap * (1.0 + gain_second))),
                0.0,
            )
            pole_denominator = (
                first_stage_cap * total_output_cap
                + miller_cap * (first_stage_cap + total_output_cap)
            )
            output_pole = np.where(
                gm6 > 0.0, gm6 * miller_cap / (TWO_PI * pole_denominator), 0.0
            )
            zero = np.where(gm6 > 0.0, gm6 / (TWO_PI * miller_cap), 0.0)
            unity_gain_bandwidth = np.where(
                miller_cap > 0, gm1 / (TWO_PI * miller_cap), 0.0
            )

        dc_gain = gain_first * gain_second
        if self._method == "mna":
            gain, bandwidth, phase_margin = self._mna_response(
                gm1, gm6, r_first, r_second, first_stage_cap, miller_cap
            )
        else:
            gain = dc_gain
            bandwidth = unity_gain_bandwidth
            phase_margin = _phase_margin_vec(
                unity_gain_bandwidth, dominant_pole, output_pole, zero, dc_gain
            )

        valid = (tail_current > 0.0) & (second_stage_current > 0.0) & (gain > 1.0)
        specs = {
            "gain": gain,
            "bandwidth": bandwidth,
            "phase_margin": phase_margin,
            "power": power,
        }
        details = {
            "tail_current": tail_current,
            "second_stage_current": second_stage_current,
            "gm1": gm1,
            "gm6": gm6,
            "dominant_pole_hz": dominant_pole,
            "output_pole_hz": output_pole,
            "zero_hz": zero,
            "first_stage_gain": gain_first,
            "second_stage_gain": gain_second,
        }
        return KernelResult(specs=specs, details=details, valid=valid)

    def _mna_response(
        self,
        gm1: np.ndarray,
        gm6: np.ndarray,
        r_first: np.ndarray,
        r_second: np.ndarray,
        first_stage_cap: np.ndarray,
        miller_cap: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched twin of ``OpAmpSimulator._mna_frequency_response``."""
        plan = self._mna_plan
        assert plan is not None
        plan.set_values("GM1", -gm1)
        plan.set_values("R1", _where_max(r_first, 1.0))
        plan.set_values("C1", _where_max(first_stage_cap, 1e-18))
        plan.set_values("GM6", gm6)
        plan.set_values("R2", _where_max(r_second, 1.0))
        plan.set_values("CC", _where_max(miller_cap, 1e-18))
        solutions = plan.ac_sweep(self._frequencies)

        K = self.num_envs
        gain = np.zeros(K)
        unity = np.zeros(K)
        margin = np.zeros(K)
        frequencies = self._frequencies
        for k in range(K):
            response = solutions[k].voltage("out")
            magnitude = np.abs(response)
            gain[k] = float(magnitude[0])
            above = magnitude >= 1.0
            if not above.any() or above.all():
                unity[k] = float(frequencies[-1] if above.all() else 0.0)
                margin[k] = 0.0
                continue
            last_above = int(np.nonzero(above)[0][-1])
            if last_above + 1 >= magnitude.size:
                unity_freq = float(frequencies[-1])
            else:
                f_lo, f_hi = frequencies[last_above], frequencies[last_above + 1]
                m_lo, m_hi = magnitude[last_above], magnitude[last_above + 1]
                weight = np.log(m_lo) / (np.log(m_lo) - np.log(m_hi))
                unity_freq = float(np.exp(np.log(f_lo) + weight * (np.log(f_hi) - np.log(f_lo))))
            phase = np.unwrap(np.angle(response))
            phase_at_unity = float(np.interp(np.log(unity_freq), self._log_frequencies, phase))
            reference_phase = float(phase[0])
            phase_margin = 180.0 + math.degrees(phase_at_unity - reference_phase)
            unity[k] = unity_freq
            margin[k] = float(np.clip(phase_margin, 0.0, 180.0))
        return gain, unity, margin


class CmOtaKernel:
    """Batched twin of :class:`CmOtaSimulator`."""

    _DEVICES = ("M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9")
    _PMOS = ("M4", "M5", "M6", "M7")

    def __init__(self, simulator: CmOtaSimulator, base_netlist: Netlist, num_envs: int) -> None:
        if type(simulator) is not CmOtaSimulator:
            raise UntraceableError(
                f"unsupported simulator type {type(simulator).__name__}"
            )
        tech = _require_cmos(simulator)
        self._tech = tech
        self._bias_overhead = simulator.bias_overhead_current
        self._method = simulator.method
        if self._method not in ("analytic", "mna"):
            raise UntraceableError(f"unsupported CmOtaSimulator method {self._method!r}")
        self.num_envs = int(num_envs)
        self._width_cols = np.array(
            [param_flat_index(base_netlist, name, "width") for name in self._DEVICES]
        )
        self._finger_cols = np.array(
            [param_flat_index(base_netlist, name, "fingers") for name in self._DEVICES]
        )
        self._supply = base_netlist.get_parameter("VP", "voltage")
        self._tail_bias = base_netlist.get_parameter("VBIAS", "voltage")
        self._load_cap = base_netlist.get_parameter("CL", "value")
        # Instance-held technology constants; see OpAmpKernel.__init__.
        self._l_ref = tech.l_ref
        self._cox_per_area = tech.cox_per_area
        self._vth_n = tech.vth_n
        self._kp = {name: (tech.kp_p if name in self._PMOS else tech.kp_n)
                    for name in self._DEVICES}
        self._lambda = {name: (tech.lambda_p if name in self._PMOS else tech.lambda_n)
                        for name in self._DEVICES}

        self._mna_plan: Optional[BatchedMNAPlan] = None
        if self._method == "mna":
            template = simulator.build_small_signal_circuit(base_netlist)
            self._mna_plan = BatchedMNAPlan.from_template(template, self.num_envs)
            self._frequencies = np.logspace(1, 11, 401)

    def bind_lane_technologies(self, technologies) -> None:
        """Give each batch lane its own technology (see ``_bind_cmos_lanes``)."""
        _bind_cmos_lanes(self, technologies)

    def evaluate(self, full_params: np.ndarray) -> KernelResult:
        widths = full_params[:, self._width_cols]
        fingers = full_params[:, self._finger_cols]
        strengths = (widths * fingers) / self._l_ref
        strength = {name: strengths[:, i] for i, name in enumerate(self._DEVICES)}

        tail_current = _saturation_current(
            self._kp["M3"], strength["M3"], self._tail_bias - self._vth_n
        )
        branch_current = tail_current / 2.0
        ratio_up = strength["M6"] / strength["M5"]
        ratio_down = (strength["M7"] / strength["M4"]) * (strength["M9"] / strength["M8"])
        source_current = ratio_up * branch_current
        sink_current = ratio_down * branch_current
        power = self._supply * (
            tail_current + source_current + sink_current + self._bias_overhead
        )

        gm1 = _gm_at_current(self._kp["M1"], strength["M1"], branch_current)
        effective_gm = gm1 * 0.5 * (ratio_up + ratio_down)
        output_resistance = _parallel_vec(
            _ro_at_current(self._lambda["M6"], source_current),
            _ro_at_current(self._lambda["M9"], sink_current),
        )
        with np.errstate(invalid="ignore"):
            gain = np.where(
                np.isfinite(output_resistance), effective_gm * output_resistance, 0.0
            )
        total_load = self._load_cap + 20e-15
        unity_gain_bandwidth = effective_gm / (TWO_PI * total_load)
        slew_rate = _where_min(ratio_up, ratio_down) * tail_current / total_load

        if self._method == "mna":
            gain, bandwidth = self._mna_response(effective_gm, output_resistance)
        else:
            bandwidth = unity_gain_bandwidth

        valid = (tail_current > 0.0) & (gain > 1.0) & (slew_rate > 0.0)
        specs = {
            "gain": gain,
            "bandwidth": bandwidth,
            "slew_rate": slew_rate,
            "power": power,
        }
        details = {
            "tail_current": tail_current,
            "mirror_ratio_up": ratio_up,
            "mirror_ratio_down": ratio_down,
            "gm1": gm1,
            "effective_gm": effective_gm,
            "output_resistance": output_resistance,
            "output_source_current": source_current,
            "output_sink_current": sink_current,
        }
        return KernelResult(specs=specs, details=details, valid=valid)

    def _mna_response(
        self, effective_gm: np.ndarray, output_resistance: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched twin of ``CmOtaSimulator._mna_frequency_response``."""
        plan = self._mna_plan
        assert plan is not None
        plan.set_values("GM", -effective_gm)
        plan.set_values("ROUT", _where_max(output_resistance, 1.0))
        solutions = plan.ac_sweep(self._frequencies)

        K = self.num_envs
        gain = np.zeros(K)
        unity = np.zeros(K)
        frequencies = self._frequencies
        for k in range(K):
            magnitude = np.abs(solutions[k].voltage("out"))
            gain[k] = float(magnitude[0])
            above = magnitude >= 1.0
            if not above.any() or above.all():
                unity[k] = float(frequencies[-1] if above.all() else 0.0)
                continue
            last_above = int(np.nonzero(above)[0][-1])
            if last_above + 1 >= magnitude.size:
                unity[k] = float(frequencies[-1])
                continue
            f_lo, f_hi = frequencies[last_above], frequencies[last_above + 1]
            m_lo, m_hi = magnitude[last_above], magnitude[last_above + 1]
            weight = np.log(m_lo) / (np.log(m_lo) - np.log(m_hi))
            unity[k] = float(np.exp(np.log(f_lo) + weight * (np.log(f_hi) - np.log(f_lo))))
        return gain, unity


def build_simulator_kernel(simulator, base_netlist: Netlist, num_envs: int):
    """Kernel for ``simulator``, or :class:`UntraceableError` if none exists."""
    if type(simulator) is OpAmpSimulator:
        return OpAmpKernel(simulator, base_netlist, num_envs)
    if type(simulator) is CmOtaSimulator:
        return CmOtaKernel(simulator, base_netlist, num_envs)
    raise UntraceableError(
        f"no compiled kernel for simulator type {type(simulator).__name__}"
    )


__all__ = [
    "KernelResult",
    "OpAmpKernel",
    "CmOtaKernel",
    "build_simulator_kernel",
    "param_flat_index",
    "ConvergenceError",
]
