"""Orchestrator failure paths: failed units, pool survival, exact resume."""

from __future__ import annotations

import pytest

from repro.orchestrate import (
    ArtifactStore,
    WorkUnit,
    execute_units,
    execute_with_store,
)

MARKER_RUNNER = "repro.orchestrate.testing:marker_unit"


def marker_units(tmp_path, tags, failing):
    """Units that fail while ``<tmp_path>/marker-<tag>`` exists."""
    units = []
    for tag in tags:
        marker = tmp_path / f"marker-{tag}"
        if tag in failing:
            marker.write_text("fail", encoding="utf-8")
        units.append(
            WorkUnit(
                unit_id=f"unit-{tag}",
                runner=MARKER_RUNNER,
                payload={"tag": tag},
                execution={"fail_while_exists": str(marker)},
            )
        )
    return units


@pytest.mark.parametrize("workers", [1, 3])
def test_raising_unit_fails_without_poisoning_the_pool(tmp_path, workers):
    units = marker_units(tmp_path, "abcd", failing={"b"})
    records = execute_units(units, workers=workers)
    by_id = {record.unit_id: record for record in records}
    assert by_id["unit-b"].status == "failed"
    assert "marker present" in by_id["unit-b"].error
    assert by_id["unit-b"].result is None
    # Every sibling unit still completed on the same pool.
    for tag in "acd":
        assert by_id[f"unit-{tag}"].status == "completed"
        assert by_id[f"unit-{tag}"].result["echo"] == tag


def test_bad_runner_path_is_a_failed_record_not_a_crash():
    unit = WorkUnit(unit_id="ghost", runner="repro.no_such_module:nope", payload={})
    record = execute_units([unit], workers=1)[0]
    assert record.status == "failed"
    assert "no_such_module" in record.error


def test_failed_units_are_persisted_with_traceback(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    units = marker_units(tmp_path, "ab", failing={"a"})
    report = execute_with_store(units, store=store, workers=1)
    assert report.failed == ["unit-a"]
    stored = store.get(units[0].key())
    assert stored is not None and stored.status == "failed"
    assert "RuntimeError" in stored.error


def test_resume_reruns_exactly_the_failed_and_missing_units(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    units = marker_units(tmp_path, "abcde", failing={"b", "d"})

    first = execute_with_store(units, store=store, workers=2)
    assert sorted(first.failed) == ["unit-b", "unit-d"]
    assert len(first.executed) == 5

    # Drop one completed artifact entirely (simulates a lost/partial store).
    store.unit_path(units[4].key()).unlink()
    # Clear the failure condition WITHOUT changing any payload: the units'
    # content keys are identical to the first attempt.
    (tmp_path / "marker-b").unlink()
    (tmp_path / "marker-d").unlink()

    second = execute_with_store(units, store=store, workers=2)
    # Exactly the failed (b, d) and missing (e) units re-ran.
    assert sorted(second.executed) == ["unit-b", "unit-d", "unit-e"]
    assert sorted(second.skipped) == ["unit-a", "unit-c"]
    assert second.ok
    assert all(record.completed for record in second.records)


def test_records_persist_as_each_unit_completes(tmp_path):
    # Crash-resume contract: by the time the progress observer sees a
    # record, its artifact is already on disk — killing the orchestrator
    # after any unit completes loses nothing.
    store = ArtifactStore(tmp_path / "store")
    units = marker_units(tmp_path, "abc", failing=set())
    observed = []

    def on_progress(event, record):
        observed.append((record.unit_id, store.has_completed(record.key)))

    execute_with_store(units, store=store, workers=1, on_progress=on_progress)
    assert len(observed) == 3
    assert all(persisted for _, persisted in observed)


def test_raise_on_failure_summarizes_every_failed_unit(tmp_path):
    units = marker_units(tmp_path, "ab", failing={"a", "b"})
    report = execute_with_store(units, workers=1)
    with pytest.raises(RuntimeError, match="2 of 2 work units failed"):
        report.raise_on_failure()
