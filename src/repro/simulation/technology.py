"""Technology constants for the two implementation technologies in Table 1.

The paper sizes the two-stage op-amp in a 45 nm CMOS process and the RF PA in
a 150 nm GaN process, characterized with Cadence Spectre / Keysight ADS
foundry models.  Those models are proprietary, so this module defines
behavioural process constants (square-law CMOS, saturating GaN HEMT) that are
calibrated so the Table 1 specification sampling spaces are reachable inside
the Table 1 design spaces.  Absolute accuracy is not the goal — preserving
the monotone parameter→specification relationships that the RL agent must
learn is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Nominal (typical-corner) junction temperature, °C.
NOMINAL_TEMPERATURE_C = 27.0

#: Mobility–temperature exponent of the behavioural MOSFET temperature model:
#: ``µ(T) = µ(T0) · (T_K / T0_K) ** MOBILITY_TEMP_EXPONENT``.  Physical
#: short-channel silicon sits between −1.2 and −2; −1.5 is the textbook
#: value and keeps every zoo benchmark's center sizing valid over the
#: −40/125 °C military range.
MOBILITY_TEMP_EXPONENT = -1.5

#: Threshold-voltage temperature coefficient (V/K), applied to the threshold
#: *magnitude*.  Physical CMOS sits between −1 and −2 mV/K; the behavioural
#: value is calibrated at −0.8 mV/K so the fixed gate biases of the zoo
#: circuits (0.52–0.60 V against a slow-corner ``1.1 × 0.40 V`` threshold)
#: keep a positive overdrive at −40 °C — the same headroom discipline a
#: constant-gm bias generator provides in a real corner kit.
VTH_TEMPCO_V_PER_K = -0.8e-3


def temperature_mobility_factor(temperature_c: float) -> float:
    """Mobility multiplier of the MOSFET temperature model at ``temperature_c``."""
    t_kelvin = 273.15 + temperature_c
    t0_kelvin = 273.15 + NOMINAL_TEMPERATURE_C
    return (t_kelvin / t0_kelvin) ** MOBILITY_TEMP_EXPONENT


def threshold_magnitude_at(
    magnitude: float, vth_scale: float, temperature_c: float
) -> float:
    """Threshold magnitude after process scaling and the temperature shift.

    The process corner scales the nominal magnitude (``vth_scale``); the
    temperature model then shifts it by ``VTH_TEMPCO_V_PER_K`` per kelvin
    away from the 27 °C nominal (magnitudes drop when hot, rise when cold).
    """
    shifted = magnitude * vth_scale + VTH_TEMPCO_V_PER_K * (
        temperature_c - NOMINAL_TEMPERATURE_C
    )
    if shifted <= 0.0:
        raise ValueError(
            f"threshold magnitude {magnitude} collapses to {shifted} at "
            f"vth_scale={vth_scale}, T={temperature_c}C; corner outside the "
            "model's validity range"
        )
    return shifted


@dataclass(frozen=True)
class CmosTechnology:
    """Square-law CMOS process constants.

    Attributes
    ----------
    name:
        Process label.
    kp_n, kp_p:
        Process transconductance ``µ Cox`` of NMOS/PMOS devices (A/V²).
    vth_n, vth_p:
        Threshold voltages (V); ``vth_p`` is the magnitude.
    lambda_n, lambda_p:
        Channel-length-modulation coefficients (1/V).  Deliberately large to
        reflect the low intrinsic gain of a short-channel process, which is
        what makes the 300–500 V/V gain spec of Table 1 a binding constraint.
    l_ref:
        Effective channel length used in the W/L strength ratio (m).
    supply_voltage:
        Nominal supply (V).
    cox_per_area:
        Gate-oxide capacitance per unit area (F/m²), used for parasitic
        estimates.
    """

    name: str
    kp_n: float
    kp_p: float
    vth_n: float
    vth_p: float
    lambda_n: float
    lambda_p: float
    l_ref: float
    supply_voltage: float
    cox_per_area: float

    def strength(self, width: float, fingers: float) -> float:
        """Device strength ``W_total / L_ref`` (dimensionless W/L ratio)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return (width * fingers) / self.l_ref

    def at_corner(
        self,
        vth_scale: float = 1.0,
        mobility_scale: float = 1.0,
        temperature_c: float = NOMINAL_TEMPERATURE_C,
    ) -> "CmosTechnology":
        """Process constants at a PVT corner.

        ``vth_scale`` scales both threshold magnitudes (slow ``1.1`` / fast
        ``0.9``), ``mobility_scale`` scales both transconductance constants,
        and ``temperature_c`` applies the MOSFET temperature model on top:
        mobility follows :func:`temperature_mobility_factor`, thresholds
        shift by ``VTH_TEMPCO_V_PER_K`` per kelvin.  Geometry constants
        (``l_ref``, ``cox_per_area``) and the supply are unchanged — corners
        model the *process*, not the biasing network.
        """
        mobility = mobility_scale * temperature_mobility_factor(temperature_c)
        return replace(
            self,
            name=f"{self.name} @({vth_scale:g},{mobility_scale:g},{temperature_c:g}C)",
            kp_n=self.kp_n * mobility,
            kp_p=self.kp_p * mobility,
            vth_n=threshold_magnitude_at(self.vth_n, vth_scale, temperature_c),
            vth_p=threshold_magnitude_at(self.vth_p, vth_scale, temperature_c),
        )


@dataclass(frozen=True)
class GanTechnology:
    """Behavioural GaN HEMT process constants for the RF PA.

    Attributes
    ----------
    name:
        Process label.
    vth:
        Threshold (pinch-off) voltage (V), negative for a depletion-mode HEMT.
    imax_per_width:
        Saturated drain-current density (A per metre of total gate width).
    gm_per_width:
        Transconductance density (S per metre of total gate width).
    knee_voltage:
        Knee voltage below which the drain swing is lost (V).
    drain_supply:
        Nominal drain supply of the power stage (V).
    driver_supply:
        Supply of the driver chain (V).
    driver_load_resistance:
        Drain pull-up resistance of each driver stage (ohm).
    cgs_per_width:
        Gate-source capacitance density (F per metre of total gate width);
        determines how hard each stage must drive the next.
    rf_frequency:
        Operating frequency of the PA (Hz) used for drive-impedance
        calculations.
    """

    name: str
    vth: float
    imax_per_width: float
    gm_per_width: float
    knee_voltage: float
    drain_supply: float
    driver_supply: float
    driver_load_resistance: float
    cgs_per_width: float
    rf_frequency: float

    def imax(self, width: float, fingers: float) -> float:
        """Saturation current of a device with the given geometry (A)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return self.imax_per_width * width * fingers

    def gm(self, width: float, fingers: float) -> float:
        """Peak transconductance of a device with the given geometry (S)."""
        if width <= 0 or fingers <= 0:
            raise ValueError("width and fingers must be positive")
        return self.gm_per_width * width * fingers

    def at_corner(
        self,
        vth_scale: float = 1.0,
        mobility_scale: float = 1.0,
        temperature_c: float = NOMINAL_TEMPERATURE_C,
    ) -> "GanTechnology":
        """Process constants at a PVT corner (same model as the CMOS twin).

        The pinch-off *magnitude* scales with ``vth_scale`` and shifts with
        temperature (the depletion-mode sign is restored afterwards), and
        the current/transconductance densities carry the mobility factor.
        Passives (``knee_voltage``, supplies, ``cgs_per_width``) stay
        nominal.
        """
        mobility = mobility_scale * temperature_mobility_factor(temperature_c)
        return replace(
            self,
            name=f"{self.name} @({vth_scale:g},{mobility_scale:g},{temperature_c:g}C)",
            vth=-threshold_magnitude_at(-self.vth, vth_scale, temperature_c),
            imax_per_width=self.imax_per_width * mobility,
            gm_per_width=self.gm_per_width * mobility,
        )


#: 45 nm CMOS constants used by the two-stage op-amp benchmark.
CMOS_45NM = CmosTechnology(
    name="45nm CMOS",
    kp_n=300e-6,
    kp_p=150e-6,
    vth_n=0.40,
    vth_p=0.40,
    lambda_n=0.40,
    lambda_p=0.50,
    l_ref=0.45e-6,
    supply_voltage=1.2,
    cox_per_area=8e-3,
)

#: 150 nm GaN constants used by the RF power-amplifier benchmark.
GAN_150NM = GanTechnology(
    name="150nm GaN",
    vth=-3.0,
    imax_per_width=1000.0,   # 1 A/mm expressed in A/m
    gm_per_width=350.0,      # 350 mS/mm expressed in S/m
    knee_voltage=2.0,
    drain_supply=28.0,
    driver_supply=8.0,
    driver_load_resistance=200.0,
    cgs_per_width=1.0e-9,    # 1 pF/mm expressed in F/m
    rf_frequency=1.0e9,
)
