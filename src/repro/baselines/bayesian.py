"""Bayesian-optimization sizing baseline (Lyu et al. [5]).

A Gaussian-process surrogate with an RBF kernel models the Eq. (1) objective
over the normalized design space; candidates are proposed by maximizing the
expected-improvement acquisition over a random candidate pool (plus local
perturbations of the incumbent).  The paper reports BO needs on the order of
100 simulations per design and achieves ~84 % design accuracy; the benches
reproduce that shape (fewer simulations than GA, more than a trained RL
policy, imperfect success rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.baselines.base import OptimizationResult, SizingOptimizer, SizingProblem


@dataclass
class BayesianOptimizationConfig:
    """Hyper-parameters of the BO baseline."""

    num_initial: int = 10
    num_iterations: int = 60
    candidate_pool: int = 400
    local_candidates: int = 100
    local_scale: float = 0.08
    length_scale: float = 0.25
    signal_variance: float = 1.0
    noise_variance: float = 1e-6
    exploration: float = 0.01
    stop_when_met: bool = True

    def __post_init__(self) -> None:
        if self.num_initial < 2:
            raise ValueError("num_initial must be at least 2")
        if self.length_scale <= 0 or self.signal_variance <= 0 or self.noise_variance <= 0:
            raise ValueError("kernel hyper-parameters must be positive")


class GaussianProcess:
    """Minimal GP regressor with an isotropic RBF kernel."""

    def __init__(self, length_scale: float, signal_variance: float, noise_variance: float) -> None:
        self.length_scale = length_scale
        self.signal_variance = signal_variance
        self.noise_variance = noise_variance
        self._x: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._cho = None
        self._alpha: Optional[np.ndarray] = None

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq_dist = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T
        sq_dist = np.maximum(sq_dist, 0.0)
        return self.signal_variance * np.exp(-0.5 * sq_dist / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self._x = x
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) if y.std() > 1e-12 else 1.0
        normalized = (y - self._y_mean) / self._y_std
        covariance = self._kernel(x, x) + self.noise_variance * np.eye(x.shape[0])
        self._cho = cho_factor(covariance, lower=True)
        self._alpha = cho_solve(self._cho, normalized)

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at the query points."""
        if self._x is None or self._alpha is None or self._cho is None:
            raise RuntimeError("predict() called before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cross = self._kernel(x, self._x)
        mean = cross @ self._alpha
        solved = cho_solve(self._cho, cross.T)
        variance = self.signal_variance - np.sum(cross * solved.T, axis=1)
        variance = np.maximum(variance, 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(variance) * self._y_std


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float, xi: float) -> np.ndarray:
    """Expected improvement of a maximization problem."""
    improvement = mean - best - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


class BayesianOptimization(SizingOptimizer):
    """GP + expected-improvement search over the normalized design space."""

    name = "bayesian_optimization"

    def __init__(self, config: Optional[BayesianOptimizationConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.config = config or BayesianOptimizationConfig()
        self.rng = np.random.default_rng(seed)

    def _candidates(self, dimension: int, incumbent: np.ndarray) -> np.ndarray:
        config = self.config
        uniform = self.rng.random((config.candidate_pool, dimension))
        local = incumbent[None, :] + self.rng.normal(
            0.0, config.local_scale, size=(config.local_candidates, dimension)
        )
        return np.clip(np.vstack([uniform, local]), 0.0, 1.0)

    def optimize(self, problem: SizingProblem) -> OptimizationResult:
        config = self.config
        dimension = problem.num_parameters

        observed_x = self.rng.random((config.num_initial, dimension))
        # Initial space-filling design scored through the batched vector path
        # (identical values/trace to per-point evaluation, cache-friendly).
        observed_y = problem.objective_from_unit_batch(observed_x)
        best_index = int(np.argmax(observed_y))
        best_x = observed_x[best_index].copy()
        best_y = float(observed_y[best_index])

        gp = GaussianProcess(config.length_scale, config.signal_variance, config.noise_variance)
        for _ in range(config.num_iterations):
            if config.stop_when_met and problem.targets is not None and best_y >= 0.0:
                break
            gp.fit(observed_x, observed_y)
            candidates = self._candidates(dimension, best_x)
            mean, std = gp.predict(candidates)
            acquisition = expected_improvement(mean, std, best_y, config.exploration)
            chosen = candidates[int(np.argmax(acquisition))]
            value = problem.objective_from_unit(chosen)
            observed_x = np.vstack([observed_x, chosen])
            observed_y = np.append(observed_y, value)
            if value > best_y:
                best_y = float(value)
                best_x = chosen.copy()

        return self._build_result(problem, best_x, best_y)
