"""CompiledPolicyPlan: bitwise act_batch parity and build-time strictness."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.agents.policy import ActorCriticPolicy
from repro.compile import CompiledPolicyPlan, UntraceableError, compile_policy

NUM_ENVS = 4
STEPS = 6


def _env_and_batch(num_envs=NUM_ENVS, seed=0):
    env = repro.make_env("opamp-p2s-v0", seed=seed, num_envs=num_envs)
    return env, env.reset()


@pytest.mark.parametrize("policy_id", ["gat_fc", "gcn_fc"])
@pytest.mark.parametrize("num_envs", [2, 4])
@pytest.mark.parametrize("seed", [0, 123])
class TestBitwiseParity:
    def test_act_matches_act_batch(self, policy_id, num_envs, seed):
        env, batch = _env_and_batch(num_envs=num_envs, seed=seed)
        policy = repro.make_policy(policy_id, env.envs[0], np.random.default_rng(seed))
        plan = compile_policy(policy, batch)
        rng_plan = np.random.default_rng(seed + 1)
        rng_interp = np.random.default_rng(seed + 1)
        action_rng = np.random.default_rng(seed + 2)
        for _ in range(STEPS):
            for deterministic in (False, True):
                got = plan.act(batch, rng_plan, deterministic=deterministic)
                want = policy.act_batch(batch, rng_interp, deterministic=deterministic)
                for a, b in zip(got, want):
                    a, b = np.asarray(a), np.asarray(b)
                    assert a.dtype == b.dtype
                    assert a.tobytes() == b.tobytes()
            actions = np.stack(
                [env.action_space.sample(action_rng) for _ in range(num_envs)]
            )
            batch, _, _, _ = env.step(actions)
        assert plan.fallbacks == 0


class TestBuildStrictness:
    def test_subclassed_policy_is_untraceable(self):
        env, batch = _env_and_batch()

        class TweakedPolicy(ActorCriticPolicy):
            pass

        policy = repro.make_policy("gat_fc", env.envs[0], np.random.default_rng(0))
        policy.__class__ = TweakedPolicy
        with pytest.raises(UntraceableError):
            CompiledPolicyPlan(policy, NUM_ENVS, batch.adjacency)

    def test_weight_updates_are_picked_up_live(self):
        """Plans read weights through the module references, not snapshots."""
        env, batch = _env_and_batch()
        policy = repro.make_policy("gcn_fc", env.envs[0], np.random.default_rng(0))
        plan = compile_policy(policy, batch)
        before = plan.values(batch).copy()
        for parameter in policy.parameters():
            parameter.data += 0.01
        after = plan.values(batch)
        assert not np.array_equal(before, after)
        assert np.array_equal(after, policy.value_batch(batch).numpy())

    def test_incompatible_batch_falls_back(self):
        env, batch = _env_and_batch()
        policy = repro.make_policy("gat_fc", env.envs[0], np.random.default_rng(0))
        plan = compile_policy(policy, batch)
        small_env, small_batch = _env_and_batch(num_envs=2)
        actions, log_probs, values = plan.act(small_batch, np.random.default_rng(0))
        assert plan.fallbacks == 1
        assert actions.shape == (2, env.num_parameters)
