"""Two-stage op-amp performance evaluator (the "Cadence Spectre" substitute).

The paper's environment runs AC and DC Spectre simulations of the Fig. 2
two-stage op-amp at every RL step to obtain the intermediate specifications
(gain, bandwidth, phase margin, power).  This module reproduces that loop
with a calibrated analytical evaluator built on the square-law device model:

1. **DC**: the bias voltage fixes the overdrive of the tail device ``M5`` and
   the output current sink ``M7``; their geometries therefore set the first-
   and second-stage bias currents, hence the static power.
2. **AC**: the classic Miller-compensated two-stage small-signal model gives
   the low-frequency gain ``gm1 (ro2‖ro4) · gm6 (ro6‖ro7)``, the unity-gain
   bandwidth ``gm1 / (2π C_c)``, and the phase margin from the output pole
   ``gm6 / (2π C_L)`` and the right-half-plane zero ``gm6 / (2π C_c)``.

Two evaluation paths are provided:

* ``method="analytic"`` (default) — closed-form expressions above; this is
  what the RL environment uses (sub-millisecond per call, mirroring the
  "tens of milliseconds" Spectre AC/DC runs in the paper).
* ``method="mna"`` — builds the small-signal equivalent circuit and sweeps it
  with the :mod:`repro.simulation.mna` engine, extracting gain, unity-gain
  frequency and phase margin numerically.  Used to validate the analytic
  path (see ``tests/simulation/test_opamp_mna_crosscheck.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.netlist import Netlist
from repro.simulation.base import SimulationResult
from repro.simulation.mna import MnaCircuit
from repro.simulation.mosfet import MosfetModel
from repro.simulation.technology import CMOS_45NM, CmosTechnology


def _parallel(r1: float, r2: float) -> float:
    if math.isinf(r1):
        return r2
    if math.isinf(r2):
        return r1
    return (r1 * r2) / (r1 + r2)


@dataclass
class OpAmpOperatingPoint:
    """Intermediate analog quantities exposed for debugging and tests."""

    tail_current: float
    second_stage_current: float
    gm1: float
    gm6: float
    first_stage_resistance: float
    second_stage_resistance: float
    first_stage_gain: float
    second_stage_gain: float
    dominant_pole_hz: float
    output_pole_hz: float
    zero_hz: float
    unity_gain_bandwidth_hz: float
    phase_margin_deg: float
    power_w: float


class OpAmpSimulator:
    """Evaluate the two-stage op-amp netlist into its four specifications."""

    name = "opamp_analytic"

    def __init__(
        self,
        technology: CmosTechnology = CMOS_45NM,
        method: str = "analytic",
        bias_overhead_current: float = 2e-6,
    ) -> None:
        if method not in {"analytic", "mna"}:
            raise ValueError("method must be 'analytic' or 'mna'")
        self.technology = technology
        self.method = method
        #: Fixed bias-generation overhead added to the supply current (A);
        #: keeps the power figure strictly positive even for minimum sizing.
        self.bias_overhead_current = bias_overhead_current
        self.name = f"opamp_{method}"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Return gain, bandwidth (Hz), phase margin (deg) and power (W)."""
        op = self.operating_point(netlist)
        if self.method == "mna":
            gain, bandwidth, phase_margin = self._mna_frequency_response(netlist, op)
        else:
            gain = op.first_stage_gain * op.second_stage_gain
            bandwidth = op.unity_gain_bandwidth_hz
            phase_margin = op.phase_margin_deg
        valid = op.tail_current > 0.0 and op.second_stage_current > 0.0 and gain > 1.0
        specs = {
            "gain": float(gain),
            "bandwidth": float(bandwidth),
            "phase_margin": float(phase_margin),
            "power": float(op.power_w),
        }
        details = {
            "tail_current": op.tail_current,
            "second_stage_current": op.second_stage_current,
            "gm1": op.gm1,
            "gm6": op.gm6,
            "dominant_pole_hz": op.dominant_pole_hz,
            "output_pole_hz": op.output_pole_hz,
            "zero_hz": op.zero_hz,
            "first_stage_gain": op.first_stage_gain,
            "second_stage_gain": op.second_stage_gain,
        }
        return SimulationResult(specs=specs, details=details, valid=valid)

    # ------------------------------------------------------------------
    # DC + small-signal operating point
    # ------------------------------------------------------------------
    def operating_point(self, netlist: Netlist) -> OpAmpOperatingPoint:
        """Compute bias currents, small-signal parameters and poles."""
        tech = self.technology
        models = {
            name: MosfetModel(
                tech,
                "pmos" if name in ("M3", "M4", "M6") else "nmos",
                netlist.get_parameter(name, "width"),
                netlist.get_parameter(name, "fingers"),
            )
            for name in ("M1", "M2", "M3", "M4", "M5", "M6", "M7")
        }
        supply_voltage = netlist.get_parameter("VP", "voltage")
        bias_voltage = netlist.get_parameter("VBIAS", "voltage")
        compensation_cap = netlist.get_parameter("CC", "value")
        load_cap = netlist.get_parameter("CL", "value")

        # --- DC bias ---------------------------------------------------
        overdrive = bias_voltage - tech.vth_n
        tail_current = models["M5"].saturation_current(overdrive)
        second_stage_current = models["M7"].saturation_current(overdrive)
        branch_current = tail_current / 2.0
        power = supply_voltage * (
            tail_current + second_stage_current + self.bias_overhead_current
        )

        # --- First stage ------------------------------------------------
        gm1 = models["M1"].gm_at_current(branch_current)
        r_first = _parallel(
            models["M2"].ro_at_current(branch_current),
            models["M4"].ro_at_current(branch_current),
        )
        gain_first = gm1 * r_first if math.isfinite(r_first) else 0.0

        # --- Second stage -------------------------------------------------
        gm6 = models["M6"].gm_at_current(second_stage_current)
        r_second = _parallel(
            models["M6"].ro_at_current(second_stage_current),
            models["M7"].ro_at_current(second_stage_current),
        )
        gain_second = gm6 * r_second if math.isfinite(r_second) else 0.0

        # --- Frequency response -------------------------------------------
        # Parasitic capacitance at the first-stage output is dominated by the
        # gate of M6.
        first_stage_cap = models["M6"].gate_capacitance() + 10e-15
        total_output_cap = load_cap + 20e-15
        miller_cap = compensation_cap

        if gain_second > 0.0 and r_first > 0.0:
            dominant_pole = 1.0 / (
                2.0 * math.pi * r_first * (first_stage_cap + miller_cap * (1.0 + gain_second))
            )
        else:
            dominant_pole = 0.0
        if gm6 > 0.0:
            denominator = (
                first_stage_cap * total_output_cap
                + miller_cap * (first_stage_cap + total_output_cap)
            )
            output_pole = gm6 * miller_cap / (2.0 * math.pi * denominator)
            zero = gm6 / (2.0 * math.pi * miller_cap)
        else:
            output_pole = 0.0
            zero = 0.0
        unity_gain_bandwidth = gm1 / (2.0 * math.pi * miller_cap) if miller_cap > 0 else 0.0

        phase_margin = self._phase_margin(
            unity_gain_bandwidth, dominant_pole, output_pole, zero,
            dc_gain=gain_first * gain_second,
        )

        return OpAmpOperatingPoint(
            tail_current=tail_current,
            second_stage_current=second_stage_current,
            gm1=gm1,
            gm6=gm6,
            first_stage_resistance=r_first,
            second_stage_resistance=r_second,
            first_stage_gain=gain_first,
            second_stage_gain=gain_second,
            dominant_pole_hz=dominant_pole,
            output_pole_hz=output_pole,
            zero_hz=zero,
            unity_gain_bandwidth_hz=unity_gain_bandwidth,
            phase_margin_deg=phase_margin,
            power_w=power,
        )

    @staticmethod
    def _phase_margin(
        unity_freq: float,
        dominant_pole: float,
        output_pole: float,
        zero: float,
        dc_gain: float,
    ) -> float:
        """Phase margin (degrees) from the two-pole-one-zero response."""
        if unity_freq <= 0.0 or dc_gain <= 1.0 or dominant_pole <= 0.0:
            return 0.0
        # np.arctan2 (not math.atan2): the two differ by 1 ulp on ~1% of
        # inputs, and the compiled vectorized twin in repro.compile must be
        # bitwise identical to this scalar reference.
        phase = -np.degrees(np.arctan2(unity_freq, dominant_pole))
        if output_pole > 0.0:
            phase -= np.degrees(np.arctan2(unity_freq, output_pole))
        if zero > 0.0:
            # Right-half-plane zero: adds phase lag like a pole.
            phase -= np.degrees(np.arctan2(unity_freq, zero))
        margin = 180.0 + phase
        return float(np.clip(margin, 0.0, 180.0))

    # ------------------------------------------------------------------
    # Small-signal MNA cross-check
    # ------------------------------------------------------------------
    def build_small_signal_circuit(self, netlist: Netlist,
                                   op: Optional[OpAmpOperatingPoint] = None) -> MnaCircuit:
        """Assemble the two-stage small-signal equivalent as an MNA circuit.

        Nodes: ``in`` (differential input), ``mid`` (first-stage output),
        ``out`` (amplifier output).  Stage transconductances and output
        resistances come from the analytical operating point so that both
        paths share the same DC linearization and only the frequency response
        is cross-checked.
        """
        op = op or self.operating_point(netlist)
        compensation_cap = netlist.get_parameter("CC", "value")
        load_cap = netlist.get_parameter("CL", "value")
        first_stage_cap = 10e-15 + MosfetModel(
            self.technology, "pmos",
            netlist.get_parameter("M6", "width"), netlist.get_parameter("M6", "fingers"),
        ).gate_capacitance()

        circuit = MnaCircuit("opamp_small_signal")
        circuit.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
        # First stage: gm1 from input into the mid node.
        circuit.add_vccs("GM1", "mid", "0", "in", "0", gm=-op.gm1)
        circuit.add_resistor("R1", "mid", "0", max(op.first_stage_resistance, 1.0))
        circuit.add_capacitor("C1", "mid", "0", max(first_stage_cap, 1e-18))
        # Second stage: gm6 from mid into the output node.
        circuit.add_vccs("GM6", "out", "0", "mid", "0", gm=op.gm6)
        circuit.add_resistor("R2", "out", "0", max(op.second_stage_resistance, 1.0))
        circuit.add_capacitor("CL", "out", "0", max(load_cap + 20e-15, 1e-18))
        # Miller compensation across the second stage.
        circuit.add_capacitor("CC", "mid", "out", max(compensation_cap, 1e-18))
        return circuit

    def _mna_frequency_response(
        self, netlist: Netlist, op: OpAmpOperatingPoint
    ) -> tuple[float, float, float]:
        """Gain, unity-gain bandwidth and phase margin from an MNA AC sweep."""
        circuit = self.build_small_signal_circuit(netlist, op)
        frequencies = np.logspace(1, 11, 401)
        solution = circuit.ac_analysis(frequencies)
        response = solution.voltage("out")
        magnitude = np.abs(response)
        gain = float(magnitude[0])
        # Unity-gain crossing by log interpolation.
        above = magnitude >= 1.0
        if not above.any() or above.all():
            unity_freq = float(frequencies[-1] if above.all() else 0.0)
            phase_margin = 0.0
        else:
            last_above = int(np.nonzero(above)[0][-1])
            if last_above + 1 >= magnitude.size:
                unity_freq = float(frequencies[-1])
            else:
                f_lo, f_hi = frequencies[last_above], frequencies[last_above + 1]
                m_lo, m_hi = magnitude[last_above], magnitude[last_above + 1]
                # Interpolate log(f) against log(m) for the |H| = 1 crossing.
                weight = np.log(m_lo) / (np.log(m_lo) - np.log(m_hi))
                unity_freq = float(np.exp(np.log(f_lo) + weight * (np.log(f_hi) - np.log(f_lo))))
            phase = np.unwrap(np.angle(response))
            phase_at_unity = float(np.interp(np.log(unity_freq), np.log(frequencies), phase))
            reference_phase = float(phase[0])
            phase_margin = 180.0 + math.degrees(phase_at_unity - reference_phase)
            phase_margin = float(np.clip(phase_margin, 0.0, 180.0))
        return gain, unity_freq, phase_margin
