"""Corpus harvesting: shared decoder, skip-and-count policy, layout checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.disk_cache import entry_path, write_disk_entry
from repro.simulation.base import SimulationResult
from repro.surrogate import corpus_circuits, harvest_corpus


def _write(directory, index, circuit="lna", parameters=(1.0, 2.0), valid=True,
           specs=None):
    result = SimulationResult(
        specs=dict(specs or {"gain": 10.0 + index, "power": 0.5 * index}),
        details={},
        valid=valid,
    )
    write_disk_entry(
        entry_path(directory, f"key-{circuit}-{index}".encode()),
        result,
        circuit=circuit,
        parameters=np.array(parameters, dtype=np.float64),
    )


class TestHarvest:
    def test_harvests_rows_with_sorted_spec_columns(self, tmp_path):
        for index in range(4):
            _write(tmp_path, index, specs={"power": 0.5 * index, "gain": 10.0 + index})
        dataset = harvest_corpus(tmp_path)
        assert len(dataset) == 4
        assert dataset.circuit == "lna"
        assert dataset.spec_names == ("gain", "power")  # sorted, writer-order-proof
        assert dataset.parameters.shape == (4, 2)
        # Whatever the row order, each row keeps its own (gain, power) pair.
        for index in range(len(dataset)):
            row = dataset.spec_dict(index)
            assert row["power"] == pytest.approx(0.5 * (row["gain"] - 10.0), abs=1e-12)

    def test_skips_and_counts_every_failure_mode(self, tmp_path):
        for index in range(3):
            _write(tmp_path, index)
        # Corrupt: a torn/hand-edited file.
        (tmp_path / "zz-corrupt.json").write_text("{not json", encoding="utf-8")
        # Legacy: a pre-corpus entry with no circuit/parameters fields.
        write_disk_entry(
            entry_path(tmp_path, b"legacy"),
            SimulationResult(specs={"gain": 1.0}, details={}, valid=True),
        )
        # Foreign: another topology sharing the directory.
        _write(tmp_path, 0, circuit="opamp")
        # Invalid: a degenerate operating point.
        _write(tmp_path, 9, valid=False)
        dataset = harvest_corpus(tmp_path, circuit="lna")
        assert len(dataset) == 3
        assert dataset.report.to_dict() == {
            "harvested": 3, "corrupt": 1, "legacy": 1, "foreign": 1, "invalid": 1,
        }

    def test_include_invalid_harvests_degenerate_points(self, tmp_path):
        _write(tmp_path, 0)
        _write(tmp_path, 1, valid=False)
        assert len(harvest_corpus(tmp_path, include_invalid=True)) == 2
        assert len(harvest_corpus(tmp_path)) == 1

    def test_mixed_corpus_requires_an_explicit_circuit(self, tmp_path):
        _write(tmp_path, 0, circuit="lna")
        _write(tmp_path, 0, circuit="opamp")
        with pytest.raises(ValueError, match="lna.*opamp|opamp.*lna"):
            harvest_corpus(tmp_path)
        assert harvest_corpus(tmp_path, circuit="opamp").circuit == "opamp"

    def test_stale_layouts_count_as_foreign(self, tmp_path):
        # Same circuit name, but an entry from an older benchmark revision
        # with a different spec set and one with a different parameter count.
        _write(tmp_path, 0)
        _write(tmp_path, 1, specs={"gain": 1.0})
        _write(tmp_path, 2, parameters=(1.0, 2.0, 3.0))
        dataset = harvest_corpus(tmp_path)
        assert len(dataset) == 1
        assert dataset.report.foreign == 2

    def test_empty_directory_yields_empty_dataset(self, tmp_path):
        dataset = harvest_corpus(tmp_path)
        assert len(dataset) == 0
        assert dataset.spec_names == ()
        assert dataset.report.to_dict() == {
            "harvested": 0, "corrupt": 0, "legacy": 0, "foreign": 0, "invalid": 0,
        }


class TestCorpusCircuits:
    def test_counts_trainable_entries_per_circuit(self, tmp_path):
        for index in range(2):
            _write(tmp_path, index, circuit="lna")
        _write(tmp_path, 0, circuit="opamp")
        (tmp_path / "zz-corrupt.json").write_text("", encoding="utf-8")
        write_disk_entry(
            entry_path(tmp_path, b"legacy"),
            SimulationResult(specs={"gain": 1.0}, details={}, valid=True),
        )
        assert corpus_circuits(tmp_path) == {"lna": 2, "opamp": 1}
