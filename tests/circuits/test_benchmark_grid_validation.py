"""Construction-time validation of benchmark initial sizings (PR 3 bugfix).

``CircuitBenchmark.__post_init__`` must reject out-of-range initial values
(pre-existing behaviour) and additionally ensure the initial sizing sits on
the design-space grid — an off-grid start would be silently moved by the
environment's first snap, so the benchmark's claimed initial design would
never actually be simulated.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.circuits import BENCHMARK_BUILDERS, CircuitBenchmark, Netlist, nmos
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace


def _benchmark_with_initial_width(width: float) -> CircuitBenchmark:
    netlist = Netlist("grid_probe")
    netlist.add_device(nmos("M1", drain="d", gate="g", source="s", width=width, fingers=2))
    space = DesignSpace(
        [
            DesignParameter(
                name="M1.width", device="M1", attribute="width",
                minimum=1e-6, maximum=100e-6, step=1e-6,
            )
        ]
    )
    specs = SpecificationSpace([Specification("gain", 1.0, 2.0, Objective.MAXIMIZE)])
    return CircuitBenchmark(
        name="grid_probe", technology="45nm CMOS",
        netlist=netlist, design_space=space, spec_space=specs,
    )


class TestGridValidation:
    def test_on_grid_initial_accepted_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            benchmark = _benchmark_with_initial_width(40e-6)
        stored = benchmark.netlist.get_parameter("M1", "width")
        # The stored value is the grid's own arithmetic for the point (the
        # literal 40e-6 differs from min + 39*step by representation noise),
        # so the environment's first snap is a no-op.
        parameter = benchmark.design_space["M1.width"]
        assert stored == parameter.snap(stored) == parameter.snap(40e-6)

    def test_representation_noise_normalized_silently(self):
        # One ulp off the grid point is representation noise: normalized
        # without a warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            benchmark = _benchmark_with_initial_width(np.nextafter(40e-6, 1.0))
        stored = benchmark.netlist.get_parameter("M1", "width")
        assert stored == benchmark.design_space["M1.width"].snap(40e-6)

    def test_off_grid_initial_snaps_with_warning(self):
        with pytest.warns(UserWarning, match="off the design-space grid"):
            benchmark = _benchmark_with_initial_width(40.4e-6)
        # The netlist now holds the snapped value, so the first environment
        # snap is a no-op.
        snapped = benchmark.netlist.get_parameter("M1", "width")
        assert snapped == benchmark.design_space["M1.width"].snap(40.4e-6)

    def test_out_of_range_initial_still_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            _benchmark_with_initial_width(500e-6)

    @pytest.mark.parametrize("circuit", sorted(BENCHMARK_BUILDERS))
    def test_every_library_circuit_constructs_warning_free(self, circuit):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            benchmark = BENCHMARK_BUILDERS[circuit]()
        values = benchmark.design_space.vector_from_netlist(benchmark.netlist)
        assert np.array_equal(values, benchmark.design_space.snap_vector(values))

    @pytest.mark.parametrize("circuit", sorted(BENCHMARK_BUILDERS))
    def test_first_environment_snap_is_a_noop(self, circuit):
        """The historical symptom: reset()'s snap must not move the point."""
        benchmark = BENCHMARK_BUILDERS[circuit]()
        initial = benchmark.design_space.vector_from_netlist(benchmark.netlist)
        netlist = benchmark.fresh_netlist()
        written = benchmark.design_space.apply_to_netlist(netlist, initial)
        assert np.array_equal(written, initial)
