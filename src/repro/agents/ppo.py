"""Proximal Policy Optimization trainer (Algorithm 1 of the paper).

The trainer alternates between

1. collecting a batch of episodes from the circuit design environment with
   the current stochastic policy,
2. computing rewards-to-go and GAE(λ) advantage estimates, and
3. several epochs of minibatch updates maximizing the clipped surrogate
   objective (Eq. 3) with Adam, plus a value-regression loss and an entropy
   bonus.

Training progress is recorded as the three curves the paper plots in Fig. 3:
mean episode reward, mean episode length, and (optionally, every
``eval_interval`` updates) deployment accuracy over a batch of freshly
sampled specification groups.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.agents.deployment import evaluate_deployment
from repro.agents.policy import ActorCriticPolicy
from repro.agents.rollout import RolloutBuffer
from repro.env.circuit_env import CircuitDesignEnv
from repro.nn.functional import explained_variance
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import minimum
from repro.parallel.vector_env import VectorCircuitEnv


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO loop."""

    learning_rate: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    update_epochs: int = 4
    minibatch_size: int = 64
    entropy_coef: float = 0.01
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ValueError("clip_epsilon must be in (0, 1)")
        if self.update_epochs <= 0 or self.minibatch_size <= 0:
            raise ValueError("update_epochs and minibatch_size must be positive")


@dataclass
class TrainingRecord:
    """One row of the training curves (one policy update)."""

    update: int
    episodes_seen: int
    mean_episode_reward: float
    mean_episode_length: float
    policy_loss: float
    value_loss: float
    entropy: float
    explained_variance: float
    deployment_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """Full training log: the data behind the Fig. 3 / Fig. 7 curves."""

    method: str
    circuit: str
    records: List[TrainingRecord] = field(default_factory=list)

    def episodes_axis(self) -> np.ndarray:
        return np.array([r.episodes_seen for r in self.records])

    def series(self, name: str) -> np.ndarray:
        values = [getattr(r, name) for r in self.records]
        return np.array([np.nan if v is None else v for v in values], dtype=np.float64)

    @property
    def final_mean_reward(self) -> float:
        return self.records[-1].mean_episode_reward if self.records else float("nan")

    @property
    def final_mean_length(self) -> float:
        return self.records[-1].mean_episode_length if self.records else float("nan")

    @property
    def final_deployment_accuracy(self) -> Optional[float]:
        accuracies = [
            r.deployment_accuracy for r in self.records if r.deployment_accuracy is not None
        ]
        return accuracies[-1] if accuracies else None


class PPOTrainer:
    """PPO training loop binding a policy to a circuit design environment.

    ``env`` may be a sequential :class:`CircuitDesignEnv` or a
    :class:`~repro.parallel.VectorCircuitEnv`; with a vector env, rollouts
    are collected from all sub-environments at once through the policy's
    batched forward pass while deployment evaluations keep using the first
    sub-environment (they are single-trajectory by definition).

    With ``checkpoint_dir`` set, the trainer persists the policy as an
    on-disk checkpoint (:func:`repro.agents.checkpoint.save_checkpoint`)
    every ``checkpoint_interval`` updates — ``update_00004.npz``, ... — plus
    a ``latest.npz`` refreshed at each emission and once more when
    :meth:`train` returns, so an interrupted training run always leaves a
    servable policy behind.
    """

    def __init__(
        self,
        env: Union[CircuitDesignEnv, VectorCircuitEnv],
        policy: ActorCriticPolicy,
        config: Optional[PPOConfig] = None,
        seed: Optional[int] = None,
        method_name: str = "gnn_fc",
        checkpoint_dir: Optional[Union[str, "Path"]] = None,
        checkpoint_interval: int = 10,
        env_id: Optional[str] = None,
    ) -> None:
        if isinstance(env, VectorCircuitEnv):
            if not env.autoreset:
                raise ValueError(
                    "PPOTrainer needs a VectorCircuitEnv with autoreset=True "
                    "(episodes are collected continuously across the batch)"
                )
            self.vector_env: Optional[VectorCircuitEnv] = env
            self.env = env.envs[0]
        else:
            self.vector_env = None
            self.env = env
        self.policy = policy
        self.config = config or PPOConfig()
        self.rng = np.random.default_rng(seed)
        self.method_name = method_name
        self.optimizer = Adam(policy.parameters(), lr=self.config.learning_rate)
        self.history = TrainingHistory(method=method_name, circuit=env.benchmark.name)
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_interval = int(checkpoint_interval)
        self.env_id = env_id
        self._episodes_seen = 0
        self._updates_done = 0
        self._last_checkpoint_update = -1

    # ------------------------------------------------------------------
    # Checkpoint emission
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: Optional[Union[str, "Path"]] = None) -> "Path":
        """Persist the current policy; default path is under ``checkpoint_dir``."""
        from repro.agents.checkpoint import save_checkpoint

        if path is None:
            if self.checkpoint_dir is None:
                raise ValueError("no path given and the trainer has no checkpoint_dir")
            path = self.checkpoint_dir / f"update_{self._updates_done:05d}.npz"
        return save_checkpoint(
            path,
            self.policy,
            policy_id=self.method_name,
            env_id=self.env_id,
            extra={
                "update": self._updates_done,
                "episodes_seen": self._episodes_seen,
                "circuit": self.env.benchmark.name,
            },
        )

    def _emit_checkpoints(self, final: bool = False) -> None:
        if self.checkpoint_dir is None:
            return
        if self._last_checkpoint_update == self._updates_done:
            return  # this update's checkpoint is already on disk
        latest = self.checkpoint_dir / "latest.npz"
        # The numbered periodic file is only written for a *completed*
        # update; an interruption before the first update still refreshes
        # latest.npz (extra["update"] == 0 marks it untrained) via `final`.
        if self._updates_done > 0 and self._updates_done % self.checkpoint_interval == 0:
            # Serialize once; latest.npz is a byte-for-byte copy, swapped in
            # atomically so a concurrent reader never sees a partial file.
            scratch = latest.with_name(latest.name + ".tmp")
            shutil.copyfile(self.save_checkpoint(), scratch)
            scratch.replace(latest)
            self._last_checkpoint_update = self._updates_done
        elif final:
            self.save_checkpoint(latest)  # atomic (temp + replace) internally
            self._last_checkpoint_update = self._updates_done

    # ------------------------------------------------------------------
    # Rollout collection
    # ------------------------------------------------------------------
    def collect_episodes(self, num_episodes: int) -> RolloutBuffer:
        """Run ``num_episodes`` full episodes with the stochastic policy."""
        if num_episodes <= 0:
            raise ValueError("num_episodes must be positive")
        if self.vector_env is not None:
            return self._collect_episodes_vector(num_episodes)
        buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
        for _ in range(num_episodes):
            observation = self.env.reset()
            done = False
            while not done:
                action, log_prob, value = self.policy.act(observation, self.rng)
                next_observation, reward, done, _ = self.env.step(action)
                buffer.add(observation, action, log_prob, value, reward, done)
                observation = next_observation
            self._episodes_seen += 1
        return buffer

    def _collect_episodes_vector(self, num_episodes: int) -> RolloutBuffer:
        """Collect episodes from all sub-environments of the vector env.

        Sub-environments run continuously (autoreset); whole episodes are
        flushed into the buffer as they complete, keeping each episode's
        transitions contiguous with ``done=True`` on the last one — exactly
        the layout :meth:`RolloutBuffer.compute_returns_and_advantages`
        expects.  Partial episodes still in flight once the budget is reached
        are discarded (they would be off-policy by the next update anyway).
        """
        vector_env = self.vector_env
        assert vector_env is not None
        buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
        pending: List[List[tuple]] = [[] for _ in range(vector_env.num_envs)]
        flushed = 0
        observations = vector_env.reset()
        while flushed < num_episodes:
            actions, log_probs, values = self.policy.act_batch(observations, self.rng)
            next_observations, rewards, dones, _ = vector_env.step(actions)
            for index in range(vector_env.num_envs):
                pending[index].append(
                    (
                        observations[index],
                        actions[index],
                        log_probs[index],
                        values[index],
                        rewards[index],
                        dones[index],
                    )
                )
                if dones[index]:
                    if flushed < num_episodes:
                        for transition in pending[index]:
                            buffer.add(*transition)
                        flushed += 1
                        self._episodes_seen += 1
                    pending[index] = []
            observations = next_observations
        return buffer

    # ------------------------------------------------------------------
    # PPO update
    # ------------------------------------------------------------------
    def update(self, buffer: RolloutBuffer) -> Dict[str, float]:
        """Run the clipped-objective update epochs over one rollout buffer."""
        config = self.config
        buffer.compute_returns_and_advantages(normalize=config.normalize_advantages)
        assert buffer.advantages is not None and buffer.returns is not None

        policy_losses: List[float] = []
        value_losses: List[float] = []
        entropies: List[float] = []
        value_predictions = np.zeros(len(buffer))

        for _ in range(config.update_epochs):
            for indices in buffer.minibatch_indices(self.rng, config.minibatch_size):
                loss_terms = []
                for index in indices:
                    transition = buffer.transitions[index]
                    advantage = float(buffer.advantages[index])
                    target_return = float(buffer.returns[index])
                    log_prob, value, entropy = self.policy.evaluate_actions(
                        transition.observation, transition.action
                    )
                    value_predictions[index] = float(value.item())
                    ratio = (log_prob - transition.log_prob).exp()
                    unclipped = ratio * advantage
                    clipped = (
                        ratio.clip(1.0 - config.clip_epsilon, 1.0 + config.clip_epsilon)
                        * advantage
                    )
                    policy_loss = -minimum(unclipped, clipped)
                    value_error = value - target_return
                    value_loss = value_error * value_error
                    loss = (
                        policy_loss
                        + config.value_coef * value_loss
                        - config.entropy_coef * entropy
                    )
                    loss_terms.append(loss)
                    policy_losses.append(float(policy_loss.item()))
                    value_losses.append(float(value_loss.item()))
                    entropies.append(float(entropy.item()))
                if not loss_terms:
                    continue
                total = loss_terms[0]
                for term in loss_terms[1:]:
                    total = total + term
                total = total * (1.0 / len(loss_terms))
                self.optimizer.zero_grad()
                total.backward()
                clip_grad_norm(self.policy.parameters(), config.max_grad_norm)
                self.optimizer.step()

        return {
            "policy_loss": float(np.mean(policy_losses)),
            "value_loss": float(np.mean(value_losses)),
            "entropy": float(np.mean(entropies)),
            "explained_variance": explained_variance(value_predictions, buffer.returns),
        }

    # ------------------------------------------------------------------
    # Full training loop
    # ------------------------------------------------------------------
    def train(
        self,
        total_episodes: int,
        episodes_per_update: int = 8,
        eval_interval: Optional[int] = None,
        eval_specs: int = 20,
        eval_seed: int = 12345,
    ) -> TrainingHistory:
        """Train until ``total_episodes`` episodes have been collected.

        Parameters
        ----------
        total_episodes:
            Episode budget (3.5e4 / 3.5e3 in the paper; reduced in benches).
        episodes_per_update:
            Episodes collected per PPO update (the trajectory set D_k).
        eval_interval:
            Evaluate deployment accuracy every this many updates (None
            disables evaluation inside the loop).
        eval_specs:
            Number of freshly sampled specification groups per evaluation.
        eval_seed:
            Seed for the evaluation spec sampler, fixed so every method is
            evaluated on the same target groups.
        """
        if total_episodes <= 0:
            raise ValueError("total_episodes must be positive")
        try:
            self._train_loop(total_episodes, episodes_per_update, eval_interval,
                             eval_specs, eval_seed)
        except BaseException:
            # Best-effort emission on interruption, so a checkpoint_dir ends
            # up with a servable latest.npz reflecting the newest completed
            # update — without a failed write masking the real exception.
            try:
                self._emit_checkpoints(final=True)
            except OSError:
                pass
            raise
        self._emit_checkpoints(final=True)
        return self.history

    def _train_loop(
        self,
        total_episodes: int,
        episodes_per_update: int,
        eval_interval: Optional[int],
        eval_specs: int,
        eval_seed: int,
    ) -> None:
        while self._episodes_seen < total_episodes:
            remaining = total_episodes - self._episodes_seen
            batch = min(episodes_per_update, remaining)
            buffer = self.collect_episodes(batch)
            stats = self.update(buffer)
            self._updates_done += 1
            self._emit_checkpoints()

            accuracy: Optional[float] = None
            if eval_interval is not None and self._updates_done % eval_interval == 0:
                evaluation = evaluate_deployment(
                    self.env, self.policy, num_targets=eval_specs, seed=eval_seed
                )
                accuracy = evaluation.accuracy

            rewards = buffer.episode_rewards()
            lengths = buffer.episode_lengths()
            self.history.records.append(
                TrainingRecord(
                    update=self._updates_done,
                    episodes_seen=self._episodes_seen,
                    mean_episode_reward=float(np.mean(rewards)) if rewards else float("nan"),
                    mean_episode_length=float(np.mean(lengths)) if lengths else float("nan"),
                    policy_loss=stats["policy_loss"],
                    value_loss=stats["value_loss"],
                    entropy=stats["entropy"],
                    explained_variance=stats["explained_variance"],
                    deployment_accuracy=accuracy,
                )
            )
