"""Topology zoo tour: every registered circuit plus a cross-topology transfer.

The circuit library now carries five topologies on one shared analytical /
MNA simulation stack — the paper's two benchmarks plus a folded-cascode
op-amp, a current-mirror OTA and a common-source LNA.  This script:

1. prints the circuit-zoo table (the same one the README embeds),
2. runs one `optimize()` smoke call per zoo environment through the common
   optimizer protocol, and
3. sweeps a small cross-topology transfer-learning matrix: a GNN policy
   trained on a source circuit seeds the policy of every target circuit
   (the graph branch transfers; heads re-initialize), is briefly fine-tuned,
   and is compared against training from scratch.

Run with:  python examples/topology_zoo.py [--episodes N] [--search-budget N]
"""

from __future__ import annotations

import argparse

import repro
from repro.experiments import format_circuit_zoo, run_transfer_matrix, smoke_scale
from repro.experiments.configs import ExperimentScale
from repro.experiments.transfer_matrix import ZOO_TRANSFER_CIRCUITS

#: Zoo environments exercised by the per-optimizer smoke loop.
ZOO_ENV_IDS = (
    "folded_cascode-p2s-v0",
    "current_mirror_ota-p2s-v0",
    "common_source_lna-p2s-v0",
)


def main(episodes: int, search_budget: int, circuits: tuple, seed: int = 0,
         workers: int = 1) -> None:
    repro.seed_everything(seed)
    print("=" * 72)
    print("The circuit zoo")
    print("=" * 72)
    print(format_circuit_zoo())

    print()
    print("=" * 72)
    print("One optimize() call per zoo environment (shared protocol)")
    print("=" * 72)
    for env_id in ZOO_ENV_IDS:
        env = repro.make_env(env_id, seed=seed)
        target = env.sample_target()
        result = repro.make_optimizer("random").optimize(
            env, budget=search_budget, seed=seed, target_specs=target
        )
        print(
            f"  {env_id:<28s} random search: best objective {result.best_objective:+.3f} "
            f"in {result.num_simulations} simulations"
        )

    print()
    print("=" * 72)
    print("Cross-topology transfer matrix (GNN branch transfer + fine-tune)")
    print("=" * 72)
    scale = ExperimentScale(
        name="example",
        opamp_training_episodes=episodes,
        rf_pa_training_episodes=episodes,
        episodes_per_update=min(4, episodes),
        eval_interval=max(2, episodes // 2),
        eval_specs=2,
        deployment_specs=3,
        optimizer_runs=1,
        num_seeds=1,
        supervised_samples=smoke_scale().supervised_samples,
        supervised_epochs=smoke_scale().supervised_epochs,
    )
    matrix = run_transfer_matrix(
        circuits=circuits,
        method="gcn_fc",
        scale=scale,
        seed=seed,
        fine_tune_episodes=episodes,
        include_scratch=True,
        workers=workers,
    )
    print(matrix.as_text())
    print()
    for cell in matrix.cells:
        gain = cell.transfer_gain
        print(
            f"  {cell.source} -> {cell.target}: "
            f"{cell.num_transferred} parameter tensors transferred "
            f"({cell.transferred_fraction:.1%} of scalar weights), "
            f"accuracy {cell.accuracy:.2f} vs scratch {cell.scratch_accuracy:.2f} "
            f"(gain {gain:+.2f})"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=24,
                        help="training/fine-tune episode budget per cell")
    parser.add_argument("--search-budget", type=int, default=30,
                        help="simulator-call budget of the random-search smoke runs")
    parser.add_argument("--circuits", nargs="+", default=list(ZOO_TRANSFER_CIRCUITS[:3]),
                        help="circuits swept by the transfer matrix")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the transfer-matrix source rows")
    args = parser.parse_args()
    main(args.episodes, args.search_budget, tuple(args.circuits), args.seed, args.workers)
