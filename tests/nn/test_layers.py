"""Tests for dense layers, activations and initializers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.initializers import get_initializer, he_normal, orthogonal, xavier_uniform, zeros
from repro.nn.layers import MLP, Linear, Sequential, get_activation
from repro.nn.tensor import Tensor


class TestInitializers:
    def test_xavier_bounds(self, rng):
        weight = xavier_uniform(100, 50, rng)
        limit = np.sqrt(6.0 / 150)
        assert weight.data.shape == (100, 50)
        assert np.all(np.abs(weight.data) <= limit + 1e-12)
        assert weight.requires_grad

    def test_he_scale(self, rng):
        weight = he_normal(1000, 10, rng)
        assert abs(weight.data.std() - np.sqrt(2.0 / 1000)) < 0.005

    def test_orthogonal_columns(self, rng):
        weight = orthogonal(16, 8, rng)
        gram = weight.data.T @ weight.data
        np.testing.assert_allclose(gram, np.eye(8), atol=1e-8)

    def test_zeros(self):
        bias = zeros(7)
        assert bias.data.shape == (7,)
        assert np.all(bias.data == 0.0)
        assert bias.requires_grad

    def test_unknown_initializer(self):
        with pytest.raises(ValueError):
            get_initializer("not_a_real_scheme")


class TestActivations:
    def test_lookup(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(get_activation("relu")(x).data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(get_activation("tanh")(x).data, np.tanh([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(get_activation("identity")(x).data, x.data)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            get_activation("swishish")


class TestLinear:
    def test_forward_shape_and_bias(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)
        expected = np.ones((2, 4)) @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert not hasattr(layer, "bias")
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng)
        loss = (layer(Tensor(np.ones((1, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestMLP:
    def test_shapes_and_parameter_count(self, rng):
        mlp = MLP((5, 8, 8, 3), rng)
        out = mlp(Tensor(np.zeros((4, 5))))
        assert out.shape == (4, 3)
        expected_params = (5 * 8 + 8) + (8 * 8 + 8) + (8 * 3 + 3)
        assert mlp.num_parameters() == expected_params
        assert mlp.in_features == 5
        assert mlp.out_features == 3

    def test_requires_two_sizes(self, rng):
        with pytest.raises(ValueError):
            MLP((5,), rng)

    def test_output_activation(self, rng):
        mlp = MLP((3, 4, 2), rng, output_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(6, 3))))
        assert np.all((out.data > 0.0) & (out.data < 1.0))

    def test_deterministic_given_seed(self):
        a = MLP((3, 4, 2), np.random.default_rng(7))
        b = MLP((3, 4, 2), np.random.default_rng(7))
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)


class TestSequential:
    def test_composition(self, rng):
        seq = Sequential(Linear(4, 6, rng), Linear(6, 2, rng))
        out = seq(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(seq.parameters()) == 4
