"""Circuit specifications and the sampling space of design targets.

The P2S problem asks for device parameters that *meet* a group of desired
specifications.  Table 1 of the paper defines the sampling space used during
training and deployment:

* two-stage op-amp — gain ``G ∈ [300, 500]``, bandwidth ``B ∈ [1e6, 2.5e7]``
  Hz, phase margin ``PM ∈ [55°, 60°]``, power ``P ∈ [1e-4, 1e-2]`` W, and
* RF PA — power efficiency ``E ∈ [50 %, 60 %]`` and output power
  ``P ∈ [2, 3]`` W.

Some specifications are "at least" targets (gain, bandwidth, efficiency) and
some are "at most" targets (power consumption) — the paper notes "the smaller
the power consumption is, the better".  :class:`Specification` captures that
direction, and :class:`SpecificationSpace` samples target groups, normalizes
spec vectors for the policy's FCNN branch, and decides whether a simulated
result satisfies a target group.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Mapping, Sequence

import numpy as np


class Objective(Enum):
    """Whether a larger or a smaller measured value is better."""

    MAXIMIZE = "maximize"
    MINIMIZE = "minimize"


@dataclass(frozen=True)
class Specification:
    """One circuit specification with its Table 1 sampling range.

    Parameters
    ----------
    name:
        Key used in spec dictionaries (e.g. ``"gain"``).
    minimum, maximum:
        Sampling range from which design targets are drawn.
    objective:
        :class:`Objective`; MAXIMIZE means the design meets the target when
        the measured value is at least the target.
    unit:
        Unit string for reports.
    log_uniform:
        Sample targets log-uniformly (useful when the range spans decades,
        e.g. bandwidth and power of the op-amp).
    """

    name: str
    minimum: float
    maximum: float
    objective: Objective = Objective.MAXIMIZE
    unit: str = ""
    log_uniform: bool = False

    def __post_init__(self) -> None:
        if self.minimum >= self.maximum:
            raise ValueError(f"{self.name}: minimum must be < maximum")
        if self.log_uniform and self.minimum <= 0:
            raise ValueError(f"{self.name}: log-uniform sampling requires positive bounds")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one target value from the sampling range."""
        if self.log_uniform:
            return float(np.exp(rng.uniform(np.log(self.minimum), np.log(self.maximum))))
        return float(rng.uniform(self.minimum, self.maximum))

    def is_met(self, measured: float, target: float, rel_tol: float = 0.0) -> bool:
        """Whether a measured value satisfies a target.

        ``rel_tol`` allows a small relative slack, used when judging
        "design accuracy" so that floating-point-adjacent results count.
        """
        slack = rel_tol * abs(target)
        if self.objective is Objective.MAXIMIZE:
            return measured >= target - slack
        return measured <= target + slack

    def normalized_error(self, measured: float, target: float) -> float:
        """The paper's normalized difference, clipped at zero when met.

        For a MAXIMIZE spec this is ``min((g - g*) / (|g| + |g*|), 0)`` and
        for a MINIMIZE spec the sign of the difference is flipped so that
        exceeding the budget is penalized instead.  The value is always in
        ``[-1, 0]``.
        """
        denominator = abs(measured) + abs(target)
        if denominator <= 0.0:
            return 0.0
        difference = (measured - target) / denominator
        if self.objective is Objective.MINIMIZE:
            difference = -difference
        return float(min(difference, 0.0))

    def normalize_value(self, value: float) -> float:
        """Scale a value by the sampling range (for network inputs)."""
        return float((value - self.minimum) / (self.maximum - self.minimum))


class SpecificationSpace:
    """Ordered set of specifications forming the design-target vector."""

    def __init__(self, specifications: Sequence[Specification]) -> None:
        if not specifications:
            raise ValueError("specification space must contain at least one spec")
        names = [s.name for s in specifications]
        if len(set(names)) != len(names):
            raise ValueError("specification names must be unique")
        self._specs: List[Specification] = list(specifications)
        self._index: Dict[str, int] = {s.name: i for i, s in enumerate(self._specs)}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __getitem__(self, key) -> Specification:
        if isinstance(key, str):
            return self._specs[self._index[key]]
        return self._specs[key]

    @property
    def names(self) -> List[str]:
        return [s.name for s in self._specs]

    # ------------------------------------------------------------------
    # Sampling and vector conversion
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> Dict[str, float]:
        """Sample one target group (one value per specification)."""
        return {spec.name: spec.sample(rng) for spec in self._specs}

    def sample_batch(self, rng: np.random.Generator, count: int) -> List[Dict[str, float]]:
        """Sample ``count`` independent target groups (deployment batches)."""
        return [self.sample(rng) for _ in range(count)]

    def to_vector(self, values: Mapping[str, float]) -> np.ndarray:
        """Order a spec dictionary into the canonical vector."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise KeyError(f"missing specification values: {missing}")
        return np.array([float(values[name]) for name in self.names])

    def to_dict(self, vector: np.ndarray) -> Dict[str, float]:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (len(self),):
            raise ValueError(f"expected vector of length {len(self)}, got {vector.shape}")
        return {name: float(value) for name, value in zip(self.names, vector)}

    def normalize(self, values: Mapping[str, float]) -> np.ndarray:
        """Range-normalize a spec dictionary for use as a network input."""
        return np.array([spec.normalize_value(float(values[spec.name])) for spec in self._specs])

    # ------------------------------------------------------------------
    # Target satisfaction / reward helpers
    # ------------------------------------------------------------------
    def normalized_errors(
        self, measured: Mapping[str, float], targets: Mapping[str, float]
    ) -> np.ndarray:
        """Per-spec clipped normalized differences (each in ``[-1, 0]``)."""
        return np.array(
            [
                spec.normalized_error(float(measured[spec.name]), float(targets[spec.name]))
                for spec in self._specs
            ]
        )

    def all_met(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float],
        rel_tol: float = 0.0,
    ) -> bool:
        """True when every specification in the group is satisfied."""
        return all(
            spec.is_met(float(measured[spec.name]), float(targets[spec.name]), rel_tol=rel_tol)
            for spec in self._specs
        )

    def met_fraction(
        self,
        measured: Mapping[str, float],
        targets: Mapping[str, float],
        rel_tol: float = 0.0,
    ) -> float:
        """Fraction of specifications satisfied (progress diagnostic)."""
        met = sum(
            spec.is_met(float(measured[spec.name]), float(targets[spec.name]), rel_tol=rel_tol)
            for spec in self._specs
        )
        return met / len(self._specs)

    def scale_targets(self, targets: Mapping[str, float], factor: float) -> Dict[str, float]:
        """Scale a target group harder/easier in the objective direction.

        ``factor > 1`` makes every target harder (larger MAXIMIZE targets,
        smaller MINIMIZE budgets); used by the generalization study (Fig. 6)
        to build out-of-distribution spec groups programmatically.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        scaled: Dict[str, float] = {}
        for spec in self._specs:
            value = float(targets[spec.name])
            if spec.objective is Objective.MAXIMIZE:
                scaled[spec.name] = value * factor
            else:
                scaled[spec.name] = value / factor
        return scaled
