"""Tests for the MNA mini-SPICE against closed-form circuit theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.mna import ConvergenceError, MnaCircuit
from repro.simulation.mosfet import MosfetModel
from repro.simulation.technology import CMOS_45NM


class TestDcLinear:
    def test_voltage_divider(self):
        circuit = MnaCircuit("divider")
        circuit.add_voltage_source("V1", "in", "0", dc=10.0)
        circuit.add_resistor("R1", "in", "mid", 1e3)
        circuit.add_resistor("R2", "mid", "0", 3e3)
        solution = circuit.dc_operating_point()
        assert solution.voltage("mid") == pytest.approx(7.5)
        assert solution.voltage("in") == pytest.approx(10.0)
        # Source current: 10 V across 4 kOhm.
        assert abs(solution.source_currents["V1"]) == pytest.approx(2.5e-3)

    def test_current_source_into_resistor(self):
        circuit = MnaCircuit("isrc")
        circuit.add_current_source("I1", "0", "out", dc=1e-3)
        circuit.add_resistor("R1", "out", "0", 2e3)
        solution = circuit.dc_operating_point()
        assert solution.voltage("out") == pytest.approx(2.0)

    def test_inductor_is_dc_short(self):
        circuit = MnaCircuit("choke")
        circuit.add_voltage_source("V1", "in", "0", dc=5.0)
        circuit.add_inductor("L1", "in", "out", 1e-6)
        circuit.add_resistor("R1", "out", "0", 1e3)
        solution = circuit.dc_operating_point()
        assert solution.voltage("out") == pytest.approx(5.0)

    def test_vccs_amplifier(self):
        # gm of 1 mS into a 10 kOhm load: gain of -10.
        circuit = MnaCircuit("vccs")
        circuit.add_voltage_source("VIN", "in", "0", dc=0.1)
        circuit.add_vccs("G1", "out", "0", "in", "0", gm=1e-3)
        circuit.add_resistor("RL", "out", "0", 10e3)
        solution = circuit.dc_operating_point()
        assert solution.voltage("out") == pytest.approx(-1.0)

    def test_ground_aliases(self):
        circuit = MnaCircuit("gnd")
        circuit.add_voltage_source("V1", "a", "vgnd", dc=1.0)
        circuit.add_resistor("R1", "a", "gnd", 1e3)
        solution = circuit.dc_operating_point()
        assert solution.voltage("a") == pytest.approx(1.0)
        assert solution.voltage("vgnd") == 0.0

    def test_duplicate_element_names_rejected(self):
        circuit = MnaCircuit()
        circuit.add_resistor("R1", "a", "0", 1.0)
        with pytest.raises(ValueError):
            circuit.add_resistor("R1", "b", "0", 1.0)

    def test_invalid_element_values_rejected(self):
        circuit = MnaCircuit()
        with pytest.raises(ValueError):
            circuit.add_resistor("R1", "a", "0", -5.0)
        with pytest.raises(ValueError):
            circuit.add_capacitor("C1", "a", "0", 0.0)
        with pytest.raises(ValueError):
            circuit.add_inductor("L1", "a", "0", -1e-9)


class TestDcNonlinear:
    def test_diode_connected_nmos_with_resistor(self):
        """NMOS with gate tied to drain, fed from VDD through a resistor.

        The solution must satisfy square-law current = resistor current.
        """
        model = MosfetModel(CMOS_45NM, "nmos", width=10e-6, fingers=4)
        circuit = MnaCircuit("diode")
        circuit.add_voltage_source("VDD", "vdd", "0", dc=1.2)
        circuit.add_resistor("R1", "vdd", "d", 10e3)
        circuit.add_mosfet("M1", drain="d", gate="d", source="0", model=model)
        solution = circuit.dc_operating_point(initial_guess={"d": 0.6})
        vd = solution.voltage("d")
        assert CMOS_45NM.vth_n < vd < 1.2
        device_current = model.drain_current(vd, vd)
        resistor_current = (1.2 - vd) / 10e3
        assert device_current == pytest.approx(resistor_current, rel=1e-4)

    def test_common_source_amplifier_operating_point(self):
        """Resistively loaded common-source stage lands between the rails."""
        model = MosfetModel(CMOS_45NM, "nmos", width=5e-6, fingers=2)
        circuit = MnaCircuit("cs_amp")
        circuit.add_voltage_source("VDD", "vdd", "0", dc=1.2)
        circuit.add_voltage_source("VG", "g", "0", dc=0.55)
        circuit.add_resistor("RD", "vdd", "out", 20e3)
        circuit.add_mosfet("M1", drain="out", gate="g", source="0", model=model)
        solution = circuit.dc_operating_point(initial_guess={"out": 0.8})
        vout = solution.voltage("out")
        assert 0.0 < vout < 1.2
        drain_current = model.drain_current(0.55, vout)
        assert drain_current == pytest.approx((1.2 - vout) / 20e3, rel=1e-4)

    def test_nonconvergence_raises(self):
        circuit = MnaCircuit("bad")
        circuit.add_voltage_source("V1", "a", "0", dc=1.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(ConvergenceError):
            circuit.dc_operating_point(max_iterations=0)


class TestAcAnalysis:
    def test_rc_low_pass_pole(self):
        resistance, capacitance = 1e3, 1e-9
        pole = 1.0 / (2 * np.pi * resistance * capacitance)
        circuit = MnaCircuit("rc")
        circuit.add_voltage_source("VIN", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("R1", "in", "out", resistance)
        circuit.add_capacitor("C1", "out", "0", capacitance)
        solution = circuit.ac_analysis([pole / 100.0, pole, pole * 100.0])
        magnitude = np.abs(solution.voltage("out"))
        assert magnitude[0] == pytest.approx(1.0, rel=1e-3)
        assert magnitude[1] == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)
        assert magnitude[2] == pytest.approx(0.01, rel=0.05)
        # Phase at the pole is -45 degrees.
        phase = np.degrees(np.angle(solution.voltage("out")[1]))
        assert phase == pytest.approx(-45.0, abs=1.0)

    def test_rlc_series_resonance(self):
        inductance, capacitance, resistance = 1e-6, 1e-9, 10.0
        resonance = 1.0 / (2 * np.pi * np.sqrt(inductance * capacitance))
        circuit = MnaCircuit("rlc")
        circuit.add_voltage_source("VIN", "in", "0", ac=1.0)
        circuit.add_inductor("L1", "in", "mid", inductance)
        circuit.add_capacitor("C1", "mid", "out", capacitance)
        circuit.add_resistor("R1", "out", "0", resistance)
        solution = circuit.ac_analysis([resonance])
        # At resonance the L and C impedances cancel: all of VIN appears on R.
        assert np.abs(solution.voltage("out")[0]) == pytest.approx(1.0, rel=1e-3)

    def test_transfer_and_magnitude_helpers(self):
        circuit = MnaCircuit("divider_ac")
        circuit.add_voltage_source("VIN", "in", "0", ac=1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_resistor("R2", "out", "0", 1e3)
        solution = circuit.ac_analysis([1e3, 1e6])
        np.testing.assert_allclose(np.abs(solution.transfer("out", "in")), 0.5, rtol=1e-9)
        np.testing.assert_allclose(solution.magnitude_db("out"), 20 * np.log10(0.5), rtol=1e-6)

    def test_linearized_mosfet_common_source_gain(self):
        """AC gain of a common-source stage is -gm * (RD || ro)."""
        model = MosfetModel(CMOS_45NM, "nmos", width=5e-6, fingers=2)
        circuit = MnaCircuit("cs_ac")
        circuit.add_voltage_source("VDD", "vdd", "0", dc=1.2)
        circuit.add_voltage_source("VG", "g", "0", dc=0.55, ac=1.0)
        circuit.add_resistor("RD", "vdd", "out", 20e3)
        circuit.add_mosfet("M1", drain="out", gate="g", source="0", model=model)
        op = circuit.dc_operating_point(initial_guess={"out": 0.8})
        solution = circuit.ac_analysis([1e3], operating_point=op)
        device_op = model.operating_point(0.55, op.voltage("out"))
        load = 1.0 / (1.0 / 20e3 + device_op.gds)
        expected_gain = device_op.gm * load
        assert np.abs(solution.voltage("out")[0]) == pytest.approx(expected_gain, rel=0.02)

    def test_ac_validation(self):
        circuit = MnaCircuit()
        circuit.add_voltage_source("V1", "a", "0", ac=1.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            circuit.ac_analysis([])
        with pytest.raises(ValueError):
            circuit.ac_analysis([-1.0])
