"""The 150 nm GaN RF power amplifier benchmark (Fig. 4, Diduck et al. [22]).

Topology:

* a five-device driver chain ``D1 … D5`` that progressively amplifies the RF
  input ``vin_a``,
* a final driver ``DF`` that drives the gate of the power device, and
* the power amplifying GaN HEMT ``M1`` whose drain is biased through the
  drain supply ``VP1`` and drives a fixed 50 Ω load at ``vout``.

Bias networks ``VBIAS1`` (driver gate bias) and ``VBIAS2`` (power-device gate
bias), the driver supply ``VP2``, and ground ``VGND`` are explicit graph
nodes, matching the paper's full-topology state representation.

Design space (Table 1): width ``[16, 100] µm`` and finger count ``1 … 16``
for each of the 7 GaN devices — 14 tunable parameters.

Specification sampling space (Table 1): power efficiency ``[50 %, 60 %]`` and
output power ``[2, 3] W``.
"""

from __future__ import annotations

from repro.circuits.devices import bias, capacitor, gan_hemt, ground, inductor, resistor, supply
from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

#: GaN device instance names in signal-path order: five drivers, the final
#: driver, then the power device.
RF_PA_DRIVERS = ("D1", "D2", "D3", "D4", "D5", "DF")
RF_PA_POWER_DEVICE = "M1"
RF_PA_DEVICES = RF_PA_DRIVERS + (RF_PA_POWER_DEVICE,)

#: Drain supply of the power stage (volts) — typical for 150 nm GaN.
RF_PA_DRAIN_SUPPLY = 28.0

#: Driver-chain supply (volts).
RF_PA_DRIVER_SUPPLY = 8.0

#: Gate bias voltages (volts, relative to the GaN threshold of about -3 V).
#: Drivers are biased well into conduction (class A) for drive linearity; the
#: power device sits just above pinch-off (deep class AB) for efficiency.
RF_PA_DRIVER_BIAS = -2.55
RF_PA_POWER_BIAS = -2.95

#: Fixed load resistance presented to the power device by the (ideal) output
#: matching network (ohms).  The physical antenna load is 50 ohm; the
#: matching network transforms it so the Table 1 output-power and efficiency
#: ranges are simultaneously reachable.
RF_PA_LOAD_RESISTANCE = 110.0

# Table 1 bounds.
WIDTH_MIN, WIDTH_MAX, WIDTH_STEP = 16e-6, 100e-6, 2e-6
FINGERS_MIN, FINGERS_MAX, FINGERS_STEP = 1, 16, 1


def _build_netlist(initial_width: float, initial_fingers: int) -> Netlist:
    netlist = Netlist("rf_pa")
    # Driver chain: D1 input is the RF input, each stage drives the next gate.
    previous_net = "vin_a"
    for index, name in enumerate(RF_PA_DRIVERS, start=1):
        drain_net = f"drv{index}" if name != "DF" else "gate_m1"
        netlist.add_device(
            gan_hemt(name, drain=drain_net, gate=previous_net, source="vgnd",
                     width=initial_width, fingers=initial_fingers)
        )
        previous_net = drain_net
    # Power device and its output network.
    netlist.add_device(
        gan_hemt(RF_PA_POWER_DEVICE, drain="vdrain", gate="gate_m1", source="vgnd",
                 width=initial_width, fingers=initial_fingers)
    )
    netlist.add_device(inductor("LCHOKE", plus="vp1", minus="vdrain", value=100e-9))
    netlist.add_device(capacitor("CBLOCK", plus="vdrain", minus="vout", value=10e-12))
    netlist.add_device(resistor("RLOAD", plus="vout", minus="vgnd", value=RF_PA_LOAD_RESISTANCE))
    # Supplies, ground and bias nodes — explicit graph nodes.
    netlist.add_device(supply("VP1", net="vp1", voltage=RF_PA_DRAIN_SUPPLY))
    netlist.add_device(supply("VP2", net="vp2", voltage=RF_PA_DRIVER_SUPPLY))
    netlist.add_device(ground("VGND", net="vgnd"))
    netlist.add_device(bias("VBIAS1", net="vin_a", voltage=RF_PA_DRIVER_BIAS))
    netlist.add_device(bias("VBIAS2", net="gate_m1", voltage=RF_PA_POWER_BIAS))
    # Driver drains are pulled up to the driver supply through chokes so the
    # chain and the supply share nets in the graph.
    for index in range(1, len(RF_PA_DRIVERS)):
        netlist.add_device(
            resistor(f"RD{index}", plus="vp2", minus=f"drv{index}", value=200.0)
        )
    return netlist


def _build_design_space() -> DesignSpace:
    parameters = []
    for name in RF_PA_DEVICES:
        parameters.append(
            DesignParameter(
                name=f"{name}.width", device=name, attribute="width",
                minimum=WIDTH_MIN, maximum=WIDTH_MAX, step=WIDTH_STEP,
            )
        )
        parameters.append(
            DesignParameter(
                name=f"{name}.fingers", device=name, attribute="fingers",
                minimum=FINGERS_MIN, maximum=FINGERS_MAX, step=FINGERS_STEP, integer=True,
            )
        )
    return DesignSpace(parameters)


def _build_spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("efficiency", 0.50, 0.60, Objective.MAXIMIZE, unit="fraction"),
            Specification("output_power", 2.0, 3.0, Objective.MAXIMIZE, unit="W"),
        ]
    )


def build_rf_pa(
    initial_width: float = 58e-6,
    initial_fingers: int = 8,
) -> CircuitBenchmark:
    """Construct the GaN RF power-amplifier benchmark.

    Parameters
    ----------
    initial_width, initial_fingers:
        Starting sizing applied uniformly to all seven GaN devices; the
        defaults sit near the middle of the Table 1 design space.
    """
    if not (WIDTH_MIN <= initial_width <= WIDTH_MAX):
        raise ValueError("initial_width outside the Table 1 design space")
    if not (FINGERS_MIN <= initial_fingers <= FINGERS_MAX):
        raise ValueError("initial_fingers outside the Table 1 design space")
    netlist = _build_netlist(initial_width, int(initial_fingers))
    return CircuitBenchmark(
        name="rf_pa",
        technology="150nm GaN",
        netlist=netlist,
        design_space=_build_design_space(),
        spec_space=_build_spec_space(),
        metadata={
            "drain_supply": RF_PA_DRAIN_SUPPLY,
            "driver_supply": RF_PA_DRIVER_SUPPLY,
            "driver_bias": RF_PA_DRIVER_BIAS,
            "power_bias": RF_PA_POWER_BIAS,
            "load_resistance": RF_PA_LOAD_RESISTANCE,
            "max_episode_steps": 30,
        },
    )
