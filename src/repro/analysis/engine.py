"""The two-pass AST lint engine behind ``python -m repro.run analyze``.

Generic linters cannot check the invariants this platform actually rests
on — bitwise determinism, lock discipline on thread-shared serve state,
atomic on-disk artifacts.  This engine makes them machine-checked: every
rule (:mod:`repro.analysis.rules`) is a small AST visitor with an ID, a
rationale, and a fix hint, and the engine gives all of them one shared
walk:

1. **Context pass** — each module is parsed once into a
   :class:`ModuleContext` carrying the resolved import aliases (``np`` →
   ``numpy``), per-class lock ownership (which attributes hold a
   ``threading.Lock``/``RLock``/``Condition`` and which attributes are
   written under ``with self._lock``), which functions contain the manual
   ``os.replace`` atomic-publish pattern, and the inline suppressions.
2. **Rule pass** — every rule visits the same tree with that context and
   yields :class:`Finding` objects.

Suppressions are inline comments of the form::

    something_flagged()  # repro: noqa[REP-FLT01] why this is intentional

A suppression needs a *reason* to count — a bare ``# repro: noqa[ID]``
leaves the finding live (annotations without rationale are what this
engine exists to prevent).  A standalone noqa comment line suppresses the
next code line, for findings on lines too long to annotate in place.

Grandfathered findings live in a checked-in baseline
(``analysis-baseline.json``): a list of fingerprints — stable hashes of
``(path, rule, source line)`` that survive line-number drift — matched as
a multiset against the current findings.  ``analyze`` exits non-zero only
for findings outside the baseline, so the rule set can ship strict while
legacy exceptions are burned down one by one.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: Lock-like constructors whose attributes make a class "lock-owning".
LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
}

#: Callables that publish a scratch file atomically (the manual pattern the
#: atomic-write helper wraps); their presence in a function legitimizes a
#: raw ``open(..., "w")`` on the scratch path.
ATOMIC_PUBLISHERS = {"os.replace", "os.rename"}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\-\s]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    source_line: str

    @property
    def fingerprint(self) -> str:
        """A line-number-free identity: hash of (path, rule, source text).

        Stable when code above the finding moves it to a different line;
        changes when the flagged line itself is edited — exactly the
        granularity a grandfathering baseline wants.
        """
        text = f"{self.path}::{self.rule}::{self.source_line}"
        return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    rules: Set[str]
    reason: str

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip())


@dataclass
class ClassLockInfo:
    """Lock ownership facts about one class (filled by the context pass)."""

    name: str
    node: ast.ClassDef
    lock_attrs: Set[str] = field(default_factory=set)
    guarded_attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleContext:
    """Everything the context pass learned about one module."""

    path: str
    source: str
    lines: List[str]
    tree: ast.Module
    #: local name -> fully dotted module/object it binds (``np`` -> ``numpy``).
    imports: Dict[str, str]
    #: line number -> suppression parsed from that line (standalone noqa
    #: comment lines are already propagated onto the line they cover).
    suppressions: Dict[int, Suppression]
    classes: List[ClassLockInfo]
    #: id(FunctionDef) for functions containing an os.replace/os.rename call.
    atomic_functions: Set[int]

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully dotted name of a Name/Attribute chain, through the imports.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the module
        did ``import numpy as np``; returns None for anything that is not a
        plain dotted chain (calls, subscripts, ...).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.imports.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def module_name(self) -> List[str]:
        """Dotted package path of this module, derived from its file path.

        Used to resolve relative imports: ``["repro", "serve"]`` for both
        ``src/repro/serve/cli.py`` and ``src/repro/serve/__init__.py``.
        Without a ``src`` segment every leading directory counts.
        """
        parts = list(Path(self.path).parts)
        if parts and parts[-1].endswith(".py"):
            parts = parts[:-1]
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        return parts

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Suppression]:
    """Map line number -> suppression covering that line.

    A noqa comment on a code line covers that line.  A noqa comment on a
    line of its own covers the next non-blank, non-comment line (so long
    flagged lines can carry their rationale on the line above).
    """
    parsed: Dict[int, Suppression] = {}
    pending: List[Suppression] = []
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        match = _NOQA_RE.search(raw)
        if match is not None:
            rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
            suppression = Suppression(
                line=number, rules=rules, reason=match.group("reason").strip()
            )
            if stripped.startswith("#"):
                pending.append(suppression)
                continue
            parsed[number] = suppression
        elif stripped and not stripped.startswith("#"):
            if pending:
                merged = Suppression(
                    line=number,
                    rules=set().union(*(s.rules for s in pending)),
                    reason="; ".join(s.reason for s in pending if s.reason.strip()),
                )
                parsed[number] = merged
                pending = []
    return parsed


class _ContextVisitor(ast.NodeVisitor):
    """The shared first pass: imports, class lock facts, atomic functions."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self._class_stack: List[ClassLockInfo] = []
        self._function_stack: List[ast.AST] = []
        self._with_lock_depth = 0

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.ctx.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            package = self.ctx.module_name()
            prefix = package[: len(package) - (node.level - 1)] if node.level > 1 else package
            base = ".".join(prefix + ([node.module] if node.module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.ctx.imports[local] = f"{base}.{alias.name}" if base else alias.name
        self.generic_visit(node)

    # -- atomic-publish functions --------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.resolve(node.func)
        if name in ATOMIC_PUBLISHERS:
            for function in self._function_stack:
                self.ctx.atomic_functions.add(id(function))
        self.generic_visit(node)

    # -- class lock facts ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassLockInfo(name=node.name, node=node)
        # Lock attributes first (a pre-scan, so methods defined *before*
        # __init__ still see which attributes are locks), then the full
        # visit collects what gets written under those locks.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                if self.ctx.resolve(sub.value.func) in LOCK_FACTORIES:
                    for target in sub.targets:
                        attr = _self_attr(target, subscript=False)
                        if attr is not None:
                            info.lock_attrs.add(attr)
        self.ctx.classes.append(info)
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        info = self._class_stack[-1] if self._class_stack else None
        locked = info is not None and any(
            _self_attr(item.context_expr) in info.lock_attrs for item in node.items
        )
        if locked:
            self._with_lock_depth += 1
        self.generic_visit(node)
        if locked:
            self._with_lock_depth -= 1

    def _note_write(self, target: ast.AST) -> None:
        if not self._class_stack or self._with_lock_depth == 0:
            return
        attr = _self_attr(target)
        if attr is not None:
            self._class_stack[-1].guarded_attrs.add(attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_write(node.target)
        self.generic_visit(node)


def _self_attr(node: Optional[ast.AST], subscript: bool = True) -> Optional[str]:
    """Attribute name for ``self.X`` (and, optionally, ``self.X[...]``)."""
    if subscript:
        while isinstance(node, ast.Subscript):
            node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def build_context(source: str, path: str) -> ModuleContext:
    """Run the context pass over one module's source."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    ctx = ModuleContext(
        path=Path(path).as_posix(),
        source=source,
        lines=lines,
        tree=tree,
        imports={},
        suppressions=_parse_suppressions(lines),
        classes=[],
        atomic_functions=set(),
    )
    _ContextVisitor(ctx).visit(tree)
    return ctx


def _apply_suppressions(
    findings: Iterable[Finding], ctx: ModuleContext
) -> List[Finding]:
    kept: List[Finding] = []
    for finding in findings:
        suppression = ctx.suppressions.get(finding.line)
        if suppression is not None and finding.rule in suppression.rules:
            if suppression.valid:
                continue
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message
                + " (noqa present but missing a reason; add one after the bracket)",
                hint=finding.hint,
                source_line=finding.source_line,
            )
        kept.append(finding)
    return kept


def analyze_source(
    source: str, path: str, rules: Optional[Sequence[Any]] = None
) -> List[Finding]:
    """Context pass + rule pass over one module; suppressed findings dropped."""
    from repro.analysis.rules import ALL_RULES

    ctx = build_context(source, path)
    findings: List[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        findings.extend(rule.check(ctx))
    findings = _apply_suppressions(findings, ctx)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[Any]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    collected: Set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in entry.rglob("*.py"):
                if not any(part.startswith(".") for part in found.parts):
                    collected.add(found)
        elif entry.suffix == ".py":
            collected.add(entry)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(collected)


@dataclass
class Report:
    """The outcome of one ``analyze`` run, before baseline filtering."""

    findings: List[Finding]
    files: int
    errors: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def analyze_paths(
    paths: Sequence[Any], rules: Optional[Sequence[Any]] = None
) -> Report:
    """Analyze every Python file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    errors: List[str] = []
    files = iter_python_files(paths)
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
            findings.extend(analyze_source(source, str(file_path), rules=rules))
        except SyntaxError as exc:
            errors.append(f"{file_path}: syntax error: {exc}")
        except OSError as exc:
            errors.append(f"{file_path}: {exc}")
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(findings=findings, files=len(files), errors=errors)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

BASELINE_VERSION = 1
DEFAULT_BASELINE = "analysis-baseline.json"


def load_baseline(path: Any) -> List[Dict[str, Any]]:
    """Parse a baseline document into its finding entries."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, Mapping) or document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {os.fspath(path)!r} is not a version-{BASELINE_VERSION} "
            "analysis baseline"
        )
    entries = document.get("findings", [])
    if not isinstance(entries, list):
        raise ValueError(f"baseline {os.fspath(path)!r}: 'findings' must be a list")
    return entries


def split_baseline(
    findings: Sequence[Finding], entries: Sequence[Mapping[str, Any]]
) -> Tuple[List[Finding], List[Finding], List[Mapping[str, Any]]]:
    """Split findings into (new, grandfathered) and report stale entries.

    Matching is a multiset over fingerprints: each baseline entry absorbs at
    most one current finding, so a *second* occurrence of a grandfathered
    pattern still fails the run.  Entries matching nothing are returned as
    stale — the finding was fixed and the baseline should be regenerated.
    """
    budget: Dict[str, int] = {}
    for entry in entries:
        fingerprint = str(entry.get("fingerprint", ""))
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    matched_fingerprints: Dict[str, int] = {}
    for finding in matched:
        key = finding.fingerprint
        matched_fingerprints[key] = matched_fingerprints.get(key, 0) + 1
    stale: List[Mapping[str, Any]] = []
    for entry in entries:
        key = str(entry.get("fingerprint", ""))
        if matched_fingerprints.get(key, 0) > 0:
            matched_fingerprints[key] -= 1
        else:
            stale.append(entry)
    return new, matched, stale


def baseline_document(findings: Sequence[Finding]) -> Dict[str, Any]:
    """A baseline document grandfathering exactly the given findings."""
    return {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "fingerprint": finding.fingerprint,
                "note": finding.message,
            }
            for finding in findings
        ],
    }
