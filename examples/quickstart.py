"""Quickstart: the P2S problem, the environment, and a few policy steps.

This script walks through the core objects of the library in under a minute:

1. build the two benchmark circuits and print their Table 1 design/spec spaces,
2. simulate the default op-amp sizing,
3. create the RL design environment, take a few random tuning actions and
   watch the Eq. (1) reward respond, and
4. create the untrained GCN-FC policy and run one policy-driven step.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.agents import make_gcn_fc_policy
from repro.circuits import build_rf_pa, build_two_stage_opamp
from repro.env import make_opamp_env
from repro.experiments import format_table1
from repro.simulation import OpAmpSimulator


def main() -> None:
    print("=" * 72)
    print("Table 1: benchmark circuits, design spaces, specification spaces")
    print("=" * 72)
    print(format_table1())

    print()
    print("=" * 72)
    print("Simulating the default (mid-range) op-amp sizing")
    print("=" * 72)
    opamp = build_two_stage_opamp()
    result = OpAmpSimulator().simulate(opamp.netlist)
    for name, value in result.specs.items():
        print(f"  {name:<14s} = {value:.4g}")

    print()
    print("=" * 72)
    print("Interacting with the circuit design environment")
    print("=" * 72)
    env = make_opamp_env(seed=0)
    observation = env.reset()
    print(f"  target specs : { {k: round(v, 4) for k, v in env.target_specs.items()} }")
    print(f"  graph nodes  : {env.num_graph_nodes}, tunable parameters: {env.num_parameters}")
    rng = np.random.default_rng(0)
    for step in range(3):
        action = env.action_space.sample(rng)
        observation, reward, done, info = env.step(action)
        print(f"  random action step {step + 1}: reward = {reward:+.3f}, "
              f"met {info['met_fraction']:.0%} of specs")

    print()
    print("=" * 72)
    print("One step with the (untrained) GCN-FC multimodal policy")
    print("=" * 72)
    policy = make_gcn_fc_policy(env, rng)
    print(f"  policy parameters: {policy.num_parameters()}")
    observation = env.reset()
    action, log_prob, value = policy.act(observation, rng)
    _, reward, _, _ = env.step(action)
    print(f"  policy action log-prob = {log_prob:.2f}, critic value = {value:.2f}, "
          f"reward = {reward:+.3f}")

    print()
    print("RF PA benchmark is available too:")
    rf_pa = build_rf_pa()
    print(f"  {rf_pa.name}: {rf_pa.num_parameters} parameters, "
          f"{len(rf_pa.netlist)} devices, technology {rf_pa.technology}")
    print()
    print("Next: examples/opamp_design.py trains a policy and deploys it.")


if __name__ == "__main__":
    main()
