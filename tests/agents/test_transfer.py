"""Tests for the coarse-to-fine transfer-learning workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.ppo import PPOConfig
from repro.agents.transfer import (
    TransferLearningWorkflow,
    reward_fidelity_report,
)
from repro import make_env, make_policy


class TestRewardFidelity:
    def test_report_statistics(self, rf_pa_coarse_env, rf_pa_env):
        report = reward_fidelity_report(rf_pa_coarse_env, rf_pa_env, num_samples=40, seed=0)
        assert report.num_samples == 40
        assert report.mean_abs_error >= 0.0
        assert report.p90_abs_error >= report.mean_abs_error * 0.1
        assert report.max_abs_error >= report.p90_abs_error

    def test_coarse_rewards_track_fine_rewards(self, rf_pa_coarse_env, rf_pa_env):
        """The paper's ±10% claim: mean relative reward error stays moderate."""
        report = reward_fidelity_report(rf_pa_coarse_env, rf_pa_env, num_samples=80, seed=1)
        assert report.mean_abs_relative_error < 0.25

    def test_mismatched_circuits_rejected(self, rf_pa_env):
        opamp_env = make_env("opamp-p2s-v0", seed=0)
        with pytest.raises(ValueError):
            reward_fidelity_report(opamp_env, rf_pa_env, num_samples=5)


class TestWorkflow:
    def test_workflow_requires_matching_benchmarks(self, rf_pa_coarse_env):
        opamp_env = make_env("opamp-p2s-v0", seed=0)
        policy = make_policy("gcn_fc", rf_pa_coarse_env, np.random.default_rng(0))
        with pytest.raises(ValueError):
            TransferLearningWorkflow(rf_pa_coarse_env, opamp_env, policy)

    def test_coarse_train_fine_deploy_smoke(self):
        coarse = make_env("rf_pa-coarse-v0", seed=0, max_steps=6)
        fine = make_env("rf_pa-fine-v0", seed=0, max_steps=6)
        policy = make_policy("gcn_fc", coarse, np.random.default_rng(0))
        workflow = TransferLearningWorkflow(
            coarse, fine, policy,
            config=PPOConfig(minibatch_size=16, update_epochs=1),
            seed=0,
        )
        result = workflow.run(coarse_episodes=4, episodes_per_update=4, eval_targets=3)
        assert 0.0 <= result.coarse_accuracy <= 1.0
        assert 0.0 <= result.fine_accuracy <= 1.0
        assert result.fine_evaluation.num_targets == 3
        assert result.coarse_history.records
        assert result.fine_tune_history is None

    def test_fine_tuning_phase_runs_when_requested(self):
        coarse = make_env("rf_pa-coarse-v0", seed=1, max_steps=5)
        fine = make_env("rf_pa-fine-v0", seed=1, max_steps=5)
        policy = make_policy("gcn_fc", coarse, np.random.default_rng(1))
        workflow = TransferLearningWorkflow(
            coarse, fine, policy, config=PPOConfig(minibatch_size=16, update_epochs=1), seed=1
        )
        result = workflow.run(
            coarse_episodes=2, fine_tune_episodes=2, episodes_per_update=2, eval_targets=2
        )
        assert result.fine_tune_history is not None
        assert result.fine_tune_history.records
