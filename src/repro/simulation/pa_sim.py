"""GaN RF power-amplifier simulators: fine (harmonic-balance-like) and coarse.

The paper's RF circuits are characterized with Keysight ADS:

* **Harmonic-balance (HB) simulation** (~1 minute per run) gives accurate
  output power and efficiency — this is what deployment must use.
* **DC simulation** (~1 second) gives rough estimates whose rewards are
  "often in ±10 % error range compared to the ones obtained from the HB
  simulation" — this is what the transfer-learning technique trains against.

This module reproduces both levels of fidelity with behavioural models:

* :class:`RfPaFineSimulator` — drives the device chain with a sinusoid,
  builds the power device's clipped drain-current waveform, Fourier-analyses
  it (the essence of harmonic balance) and computes output power delivered to
  the load plus drain + driver DC power.
* :class:`RfPaCoarseSimulator` — replaces the waveform analysis with ideal
  class-B formulas evaluated from DC quantities, plus a bounded deterministic
  model-mismatch term (default 8 %), mimicking the fast-but-rough DC
  characterization.

Both return the two Table 1 specifications ``output_power`` (W) and
``efficiency`` (fraction), so the RL environment can swap them freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.circuits.library.rf_pa import RF_PA_DRIVERS, RF_PA_POWER_DEVICE
from repro.circuits.netlist import Netlist
from repro.simulation.base import SimulationResult
from repro.simulation.gan_hemt import GanHemtModel
from repro.simulation.technology import GAN_150NM, GanTechnology

#: Amplitude of the RF input signal applied to the first driver's gate (V).
RF_INPUT_AMPLITUDE = 0.3

#: Fraction of the driver supply available as voltage swing at a driver drain.
DRIVER_SWING_FRACTION = 0.42

#: Number of phase points used for the waveform (harmonic-balance) analysis.
WAVEFORM_POINTS = 256


@dataclass
class DriverChainResult:
    """Summary of the driver-chain analysis."""

    drive_amplitude: float
    stage_amplitudes: List[float]
    dc_power: float
    quiescent_currents: List[float]


@dataclass
class PaOperatingPoint:
    """Full operating-point summary of the PA (fine simulation)."""

    drive_amplitude: float
    fundamental_current: float
    dc_current: float
    quiescent_current: float
    load_voltage: float
    output_power: float
    dc_power_main: float
    dc_power_driver: float
    efficiency: float
    voltage_clipped: bool


class _PaBase:
    """Shared netlist parsing and driver-chain analysis."""

    def __init__(self, technology: GanTechnology = GAN_150NM) -> None:
        self.technology = technology

    # ------------------------------------------------------------------
    # Netlist parsing
    # ------------------------------------------------------------------
    def _device_models(self, netlist: Netlist) -> Dict[str, GanHemtModel]:
        models: Dict[str, GanHemtModel] = {}
        for name in RF_PA_DRIVERS + (RF_PA_POWER_DEVICE,):
            models[name] = GanHemtModel(
                self.technology,
                netlist.get_parameter(name, "width"),
                netlist.get_parameter(name, "fingers"),
            )
        return models

    def _bias_voltages(self, netlist: Netlist) -> Tuple[float, float]:
        driver_bias = netlist.get_parameter("VBIAS1", "voltage")
        power_bias = netlist.get_parameter("VBIAS2", "voltage")
        return driver_bias, power_bias

    def _load_resistance(self, netlist: Netlist) -> float:
        return netlist.get_parameter("RLOAD", "value")

    # ------------------------------------------------------------------
    # Driver chain
    # ------------------------------------------------------------------
    def analyze_driver_chain(self, netlist: Netlist) -> DriverChainResult:
        """Propagate the RF drive through D1…D5 and DF to the power gate.

        Each stage delivers a fundamental current limited by its
        transconductance and by half its saturation current; that current
        develops a voltage across the parallel combination of the stage's
        pull-up resistor and the next stage's gate capacitance, clamped to
        the available supply swing.  Every stage also burns quiescent DC
        power proportional to its size — the efficiency cost of over-sizing
        the driver chain.
        """
        tech = self.technology
        models = self._device_models(netlist)
        driver_bias, _ = self._bias_voltages(netlist)
        omega = 2.0 * math.pi * tech.rf_frequency
        swing_limit = DRIVER_SWING_FRACTION * tech.driver_supply

        amplitude = RF_INPUT_AMPLITUDE
        stage_amplitudes: List[float] = []
        quiescent_currents: List[float] = []
        chain = list(RF_PA_DRIVERS)
        for index, name in enumerate(chain):
            stage = models[name]
            next_name = chain[index + 1] if index + 1 < len(chain) else RF_PA_POWER_DEVICE
            next_gate_cap = tech.cgs_per_width * models[next_name].total_width
            # Fundamental output current available from this stage.
            available_current = min(stage.gm * amplitude, stage.imax / 2.0)
            # Load seen by the stage: pull-up resistor in parallel with the
            # next gate capacitance at the RF frequency.
            resistive = tech.driver_load_resistance
            capacitive = 1.0 / (omega * next_gate_cap) if next_gate_cap > 0 else float("inf")
            magnitude = resistive / math.sqrt(1.0 + (resistive / capacitive) ** 2)
            amplitude = min(available_current * magnitude, swing_limit)
            stage_amplitudes.append(amplitude)
            quiescent_currents.append(float(stage.drain_current(driver_bias)))

        dc_power = tech.driver_supply * float(np.sum(quiescent_currents))
        return DriverChainResult(
            drive_amplitude=amplitude,
            stage_amplitudes=stage_amplitudes,
            dc_power=dc_power,
            quiescent_currents=quiescent_currents,
        )

    # ------------------------------------------------------------------
    # Output-stage power computation shared by both fidelity levels
    # ------------------------------------------------------------------
    def _output_power(
        self,
        fundamental_current: float,
        dc_current: float,
        driver_power: float,
        load_resistance: float,
    ) -> Tuple[float, float, float, bool]:
        """Return (output power, total DC power, load voltage, clipped)."""
        tech = self.technology
        max_swing = tech.drain_supply - tech.knee_voltage
        load_voltage = fundamental_current * load_resistance
        clipped = load_voltage > max_swing
        if clipped:
            load_voltage = max_swing
            delivered_current = load_voltage / load_resistance
        else:
            delivered_current = fundamental_current
        output_power = 0.5 * load_voltage * delivered_current
        dc_power = tech.drain_supply * dc_current + driver_power
        return output_power, dc_power, load_voltage, clipped


class RfPaFineSimulator(_PaBase):
    """Harmonic-balance-like waveform analysis of the RF PA (the "ADS HB" substitute)."""

    name = "rf_pa_fine"

    def simulate(self, netlist: Netlist) -> SimulationResult:
        op = self.operating_point(netlist)
        specs = {
            "output_power": float(op.output_power),
            "efficiency": float(op.efficiency),
        }
        details = {
            "drive_amplitude": op.drive_amplitude,
            "fundamental_current": op.fundamental_current,
            "dc_current": op.dc_current,
            "quiescent_current": op.quiescent_current,
            "load_voltage": op.load_voltage,
            "dc_power_main": op.dc_power_main,
            "dc_power_driver": op.dc_power_driver,
            "voltage_clipped": float(op.voltage_clipped),
        }
        valid = op.output_power > 0.0 and 0.0 < op.efficiency < 1.0
        return SimulationResult(specs=specs, details=details, valid=valid)

    def operating_point(self, netlist: Netlist) -> PaOperatingPoint:
        """Full waveform-level analysis of the power stage."""
        models = self._device_models(netlist)
        _, power_bias = self._bias_voltages(netlist)
        load_resistance = self._load_resistance(netlist)
        chain = self.analyze_driver_chain(netlist)
        power_device = models[RF_PA_POWER_DEVICE]

        waveform = power_device.current_waveform(
            power_bias, chain.drive_amplitude, num_points=WAVEFORM_POINTS
        )
        harmonics = power_device.fourier_components(waveform, num_harmonics=5)
        dc_current = float(harmonics[0])
        fundamental_current = float(abs(harmonics[1]))
        quiescent = float(power_device.drain_current(power_bias))

        output_power, dc_power, load_voltage, clipped = self._output_power(
            fundamental_current, dc_current, chain.dc_power, load_resistance
        )
        efficiency = output_power / dc_power if dc_power > 0 else 0.0
        return PaOperatingPoint(
            drive_amplitude=chain.drive_amplitude,
            fundamental_current=fundamental_current,
            dc_current=dc_current,
            quiescent_current=quiescent,
            load_voltage=load_voltage,
            output_power=output_power,
            dc_power_main=dc_power - chain.dc_power,
            dc_power_driver=chain.dc_power,
            efficiency=float(np.clip(efficiency, 0.0, 1.0)),
            voltage_clipped=clipped,
        )


class RfPaCoarseSimulator(_PaBase):
    """Fast DC-estimate simulator used for transfer-learning pre-training.

    Parameters
    ----------
    technology:
        GaN process constants.
    mismatch:
        Peak relative model error versus the fine simulator.  The error is a
        smooth deterministic function of the power-device geometry (so the
        simulator stays a pure function of the netlist), bounded by
        ``mismatch`` — defaulting to 8 %, inside the ±10 % band the paper
        reports for DC-estimated rewards.
    """

    name = "rf_pa_coarse"

    def __init__(self, technology: GanTechnology = GAN_150NM, mismatch: float = 0.08) -> None:
        super().__init__(technology)
        if not 0.0 <= mismatch < 0.5:
            raise ValueError("mismatch must be in [0, 0.5)")
        self.mismatch = mismatch

    def _mismatch_factor(self, netlist: Netlist) -> float:
        """Deterministic, bounded model-error multiplier in [1-m, 1+m]."""
        width = netlist.get_parameter(RF_PA_POWER_DEVICE, "width")
        fingers = netlist.get_parameter(RF_PA_POWER_DEVICE, "fingers")
        phase = 17.0 * width * 1e6 + 3.0 * fingers
        return 1.0 + self.mismatch * math.sin(phase)

    def simulate(self, netlist: Netlist) -> SimulationResult:
        models = self._device_models(netlist)
        _, power_bias = self._bias_voltages(netlist)
        load_resistance = self._load_resistance(netlist)
        chain = self.analyze_driver_chain(netlist)
        power_device = models[RF_PA_POWER_DEVICE]

        # Ideal conduction-angle estimate from DC quantities only (the
        # classic class-AB closed forms), without the waveform-level Imax
        # clipping and harmonic interaction the fine simulator captures.
        quiescent_overdrive = power_bias - power_device.vth
        drive = chain.drive_amplitude
        quiescent = float(power_device.drain_current(power_bias))
        if drive <= 0.0:
            fundamental_current = 0.0
            dc_current = quiescent
        else:
            # Conduction half-angle alpha: current flows while
            # cos(theta) > -Vq / Vd.
            ratio = np.clip(-quiescent_overdrive / drive, -1.0, 1.0)
            alpha = math.acos(ratio)
            peak_current = power_device.gm * (quiescent_overdrive + drive)
            capped_peak = min(peak_current, power_device.imax)
            scale = capped_peak / peak_current if peak_current > 0 else 0.0
            denom = 1.0 - math.cos(alpha)
            if denom <= 1e-9:
                fundamental_current = 0.0
                dc_current = quiescent
            else:
                dc_current = scale * peak_current / (2.0 * math.pi) * (
                    2.0 * math.sin(alpha) - 2.0 * alpha * math.cos(alpha)
                ) / denom
                fundamental_current = scale * peak_current / (2.0 * math.pi) * (
                    2.0 * alpha - math.sin(2.0 * alpha)
                ) / denom

        output_power, dc_power, load_voltage, clipped = self._output_power(
            fundamental_current, dc_current, chain.dc_power, load_resistance
        )
        factor = self._mismatch_factor(netlist)
        output_power *= factor
        efficiency = output_power / dc_power if dc_power > 0 else 0.0
        specs = {
            "output_power": float(output_power),
            "efficiency": float(np.clip(efficiency, 0.0, 1.0)),
        }
        details = {
            "drive_amplitude": chain.drive_amplitude,
            "fundamental_current": fundamental_current,
            "dc_current": dc_current,
            "quiescent_current": quiescent,
            "load_voltage": load_voltage,
            "dc_power_driver": chain.dc_power,
            "mismatch_factor": factor,
            "voltage_clipped": float(clipped),
        }
        valid = output_power > 0.0 and 0.0 < efficiency < 1.0
        return SimulationResult(specs=specs, details=details, valid=valid)
