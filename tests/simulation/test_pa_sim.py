"""Tests for the fine (HB-like) and coarse RF PA simulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_rf_pa
from repro.simulation.pa_sim import RfPaCoarseSimulator


def sized_netlist(overrides=None):
    benchmark = build_rf_pa()
    netlist = benchmark.fresh_netlist()
    for (device, attribute), value in (overrides or {}).items():
        netlist.set_parameter(device, attribute, value)
    return netlist


class TestFineSimulator:
    def test_returns_both_specs(self, pa_fine_simulator):
        result = pa_fine_simulator.simulate(sized_netlist())
        assert set(result.specs) == {"output_power", "efficiency"}
        assert result.spec("output_power") > 0.0
        assert 0.0 < result.spec("efficiency") < 1.0

    def test_details_expose_waveform_quantities(self, pa_fine_simulator):
        result = pa_fine_simulator.simulate(sized_netlist())
        for key in ("drive_amplitude", "fundamental_current", "dc_current", "dc_power_driver"):
            assert key in result.details

    def test_output_power_bounded_by_supply_and_load(self, pa_fine_simulator, rf_pa_benchmark):
        """Pout can never exceed (Vdd - Vknee)^2 / (2 RL)."""
        tech = pa_fine_simulator.technology
        load = rf_pa_benchmark.metadata["load_resistance"]
        bound = (tech.drain_supply - tech.knee_voltage) ** 2 / (2.0 * load)
        netlist = sized_netlist({("M1", "width"): 100e-6, ("M1", "fingers"): 16})
        result = pa_fine_simulator.simulate(netlist)
        assert result.spec("output_power") <= bound + 1e-9

    def test_output_power_increases_with_power_device_size(self, pa_fine_simulator):
        small = pa_fine_simulator.simulate(
            sized_netlist({("M1", "width"): 20e-6, ("M1", "fingers"): 2})
        )
        large = pa_fine_simulator.simulate(
            sized_netlist({("M1", "width"): 80e-6, ("M1", "fingers"): 8})
        )
        assert large.spec("output_power") > small.spec("output_power")

    def test_oversized_drivers_hurt_efficiency(self, pa_fine_simulator):
        drivers = ("D1", "D2", "D3", "D4", "D5", "DF")
        lean_overrides = {(name, "width"): 24e-6 for name in drivers}
        lean_overrides.update({(name, "fingers"): 1 for name in drivers})
        bloated_overrides = {(name, "width"): 100e-6 for name in drivers}
        bloated_overrides.update({(name, "fingers"): 16 for name in drivers})
        lean = sized_netlist(lean_overrides)
        bloated = sized_netlist(bloated_overrides)
        assert (
            pa_fine_simulator.simulate(lean).spec("efficiency")
            > pa_fine_simulator.simulate(bloated).spec("efficiency")
        )

    def test_driver_chain_analysis(self, pa_fine_simulator):
        chain = pa_fine_simulator.analyze_driver_chain(sized_netlist())
        assert chain.drive_amplitude > 0.0
        assert len(chain.stage_amplitudes) == 6
        assert len(chain.quiescent_currents) == 6
        assert chain.dc_power > 0.0
        swing_limit = 0.42 * pa_fine_simulator.technology.driver_supply
        assert all(a <= swing_limit + 1e-9 for a in chain.stage_amplitudes)

    def test_undersized_final_driver_limits_drive(self, pa_fine_simulator):
        weak = sized_netlist({("DF", "width"): 16e-6, ("DF", "fingers"): 1})
        strong = sized_netlist({("DF", "width"): 80e-6, ("DF", "fingers"): 8})
        weak_chain = pa_fine_simulator.analyze_driver_chain(weak)
        strong_chain = pa_fine_simulator.analyze_driver_chain(strong)
        assert strong_chain.drive_amplitude >= weak_chain.drive_amplitude

    def test_table1_spec_space_is_reachable(self, pa_fine_simulator, rf_pa_benchmark):
        """A known tapered design meets a mid-range (Pout, efficiency) target.

        Lean early drivers, a moderately sized final driver and a large power
        device give >2.2 W at >52 % efficiency — confirming the Table 1
        sampling space is populated with solutions.
        """
        target = {"output_power": 2.2, "efficiency": 0.52}
        good_design = {
            ("D1", "width"): 18e-6, ("D1", "fingers"): 2,
            ("D2", "width"): 82e-6, ("D2", "fingers"): 3,
            ("D3", "width"): 22e-6, ("D3", "fingers"): 4,
            ("D4", "width"): 20e-6, ("D4", "fingers"): 2,
            ("D5", "width"): 72e-6, ("D5", "fingers"): 1,
            ("DF", "width"): 44e-6, ("DF", "fingers"): 1,
            ("M1", "width"): 90e-6, ("M1", "fingers"): 5,
        }
        result = pa_fine_simulator.simulate(sized_netlist(good_design))
        assert rf_pa_benchmark.spec_space.all_met(result.specs, target)

    def test_deterministic(self, pa_fine_simulator):
        netlist = sized_netlist()
        first = pa_fine_simulator.simulate(netlist).specs
        assert first == pa_fine_simulator.simulate(netlist).specs


class TestCoarseSimulator:
    def test_returns_both_specs(self, pa_coarse_simulator):
        result = pa_coarse_simulator.simulate(sized_netlist())
        assert set(result.specs) == {"output_power", "efficiency"}

    def test_mismatch_bounds_validation(self):
        with pytest.raises(ValueError):
            RfPaCoarseSimulator(mismatch=0.9)

    def test_mismatch_factor_bounded(self, pa_coarse_simulator):
        for width in (20e-6, 47e-6, 83e-6):
            netlist = sized_netlist({("M1", "width"): width})
            factor = pa_coarse_simulator._mismatch_factor(netlist)
            mismatch = pa_coarse_simulator.mismatch
            assert 1.0 - mismatch <= factor <= 1.0 + mismatch

    def test_coarse_tracks_fine_on_average(self, pa_coarse_simulator, pa_fine_simulator,
                                            rf_pa_benchmark, rng):
        """Median relative error between coarse and fine output power stays small.

        This is the property the paper's transfer-learning section relies on
        ("approximated rewards are often in ±10% error range").
        """
        errors = []
        space = rf_pa_benchmark.design_space
        for _ in range(60):
            netlist = rf_pa_benchmark.fresh_netlist()
            space.apply_to_netlist(netlist, space.sample(rng))
            fine = pa_fine_simulator.simulate(netlist).spec("output_power")
            coarse = pa_coarse_simulator.simulate(netlist).spec("output_power")
            if fine > 0.05:
                errors.append(abs(fine - coarse) / fine)
        assert np.median(errors) < 0.15

    def test_zero_mismatch_still_close_to_fine(self, pa_fine_simulator):
        exact_coarse = RfPaCoarseSimulator(mismatch=0.0)
        netlist = sized_netlist()
        fine = pa_fine_simulator.simulate(netlist).spec("output_power")
        coarse = exact_coarse.simulate(netlist).spec("output_power")
        assert coarse == pytest.approx(fine, rel=0.2)

    def test_coarse_is_faster_in_operation_count(self, pa_coarse_simulator, pa_fine_simulator):
        """The coarse path never builds a waveform (structural check)."""
        result = pa_coarse_simulator.simulate(sized_netlist())
        assert "mismatch_factor" in result.details
        fine_result = pa_fine_simulator.simulate(sized_netlist())
        assert "mismatch_factor" not in fine_result.details
