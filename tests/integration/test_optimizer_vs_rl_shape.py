"""Shape-level integration checks behind the paper's headline comparisons."""

from __future__ import annotations

import pytest

from repro.baselines.base import SizingProblem
from repro.baselines.bayesian import BayesianOptimization, BayesianOptimizationConfig
from repro.baselines.genetic import GeneticAlgorithm, GeneticAlgorithmConfig
from repro.circuits import build_two_stage_opamp
from repro.simulation.opamp_sim import OpAmpSimulator


@pytest.fixture(scope="module")
def moderate_target():
    return {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}


class TestOptimizerSimulationBudgets:
    """The paper: GA needs ~400 simulations, BO ~100, per design."""

    def test_ga_uses_more_simulations_than_bo(self, moderate_target):
        benchmark = build_two_stage_opamp()
        ga_problem = SizingProblem(benchmark, OpAmpSimulator(), targets=moderate_target)
        ga = GeneticAlgorithm(
            GeneticAlgorithmConfig(population_size=16, num_generations=25), seed=0
        )
        ga_result = ga.optimize(ga_problem)

        bo_problem = SizingProblem(benchmark, OpAmpSimulator(), targets=moderate_target)
        bo = BayesianOptimization(
            BayesianOptimizationConfig(num_initial=8, num_iterations=60), seed=0
        )
        bo_result = bo.optimize(bo_problem)

        # Both need tens-to-hundreds of simulator calls for one design,
        # an order of magnitude above a trained policy's ~20 steps.
        assert ga_result.num_simulations > 16
        assert bo_result.num_simulations > 8
        if ga_result.success and bo_result.success:
            assert ga_result.num_simulations >= bo_result.num_simulations

    def test_optimizers_must_restart_per_target(self, moderate_target):
        """Changing the target invalidates the previous run (no reuse) —
        the qualitative drawback the paper attributes to GA/BO."""
        benchmark = build_two_stage_opamp()
        problem_one = SizingProblem(benchmark, OpAmpSimulator(), targets=moderate_target)
        optimizer = BayesianOptimization(
            BayesianOptimizationConfig(num_initial=5, num_iterations=5), seed=0
        )
        optimizer.optimize(problem_one)
        second_target = dict(moderate_target, gain=450.0)
        problem_two = SizingProblem(benchmark, OpAmpSimulator(), targets=second_target)
        result_two = optimizer.optimize(problem_two)
        # The second run pays its own full simulation budget.
        assert result_two.num_simulations >= 10
