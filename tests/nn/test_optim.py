"""Tests for SGD / Adam optimizers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_loss(param: Tensor, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        param = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param, target).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([2.0])

        def run(momentum: float) -> float:
            param = Tensor(np.zeros(1), requires_grad=True)
            optimizer = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                quadratic_loss(param, target).backward()
                optimizer.step()
            return abs(float(param.data[0]) - 2.0)

        assert run(0.9) < run(0.0)

    def test_validation(self):
        param = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1))], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([[0.5, -1.5], [2.0, 0.0]])
        param = Tensor(np.zeros((2, 2)), requires_grad=True)
        optimizer = Adam([param], lr=0.05)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(param, target).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_skips_parameters_without_gradients(self):
        used = Tensor(np.zeros(1), requires_grad=True)
        unused = Tensor(np.ones(1), requires_grad=True)
        optimizer = Adam([used, unused], lr=0.1)
        quadratic_loss(used, np.array([1.0])).backward()
        optimizer.step()
        np.testing.assert_allclose(unused.data, [1.0])
        assert used.data[0] != 0.0

    def test_weight_decay_shrinks_weights(self):
        param = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            optimizer.zero_grad()
            # Constant zero-gradient loss: only weight decay acts.
            (param * 0.0).sum().backward()
            optimizer.step()
        assert abs(float(param.data[0])) < 5.0

    def test_validation(self):
        param = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([param], lr=0.0)
        with pytest.raises(ValueError):
            Adam([param], betas=(1.1, 0.9))


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        param.grad = np.full(4, 10.0)
        norm_before = clip_grad_norm([param], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients_untouched(self):
        param = Tensor(np.zeros(2), requires_grad=True)
        param.grad = np.array([0.1, 0.2])
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.2])

    def test_handles_missing_gradients(self):
        param = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([param], max_norm=1.0) == 0.0
