"""Shared configuration for the benchmark suite.

Every module in this directory regenerates one table or figure of the paper.
The paper-scale budgets (3.5e4 / 3.5e3 training episodes, 200-group
deployment batches, 6 seeds) take many CPU-hours with this pure-Python
substrate, so the benchmarks run a *reduced* configuration — enough to
exercise every code path and to show the qualitative shape of each result —
and attach the measured quantities to pytest-benchmark's ``extra_info`` so
they appear in the saved benchmark JSON.

To run a full paper-scale experiment use the harnesses in
``repro.experiments`` directly with ``scale=paper_scale()``.
"""

from __future__ import annotations

import os

import pytest

# The bench suite imports the library exactly like the test suite does: from
# the installed package (``pip install -e .[dev]``, as CI does) or via
# ``PYTHONPATH=src`` — never by mutating ``sys.path`` here, so benchmarks run
# identically in CI and locally.
from repro.api.seeding import seed_everything
from repro.experiments.configs import ExperimentScale

#: One seed for the whole benchmark suite, applied per test below.
BENCHMARK_SEED = 0


@pytest.fixture(autouse=True)
def _seeded_benchmark():
    """Route every benchmark through the shared seeding entry point.

    Benchmarks used to rely on each harness's internal ``seed=0`` defaults;
    seeding all global sources per test makes the measured work bit-identical
    to a standalone run of the same harness with ``seed_everything(0)``.
    """
    seed_everything(BENCHMARK_SEED)


def benchmark_scale() -> ExperimentScale:
    """Budgets used by the benchmark suite (smaller than ``bench_scale``)."""
    return ExperimentScale(
        name="benchmark_suite",
        opamp_training_episodes=24,
        rf_pa_training_episodes=20,
        episodes_per_update=8,
        eval_interval=3,
        eval_specs=6,
        deployment_specs=8,
        optimizer_runs=3,
        num_seeds=1,
        supervised_samples=200,
        supervised_epochs=30,
    )


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Budgets for the suite; ``REPRO_BENCH_SCALE`` selects larger ones.

    The default is the reduced per-PR configuration above.  The nightly
    workflow exports ``REPRO_BENCH_SCALE=bench`` to run the full
    (non-reduced) suite at :func:`repro.experiments.configs.bench_scale`
    budgets; ``paper`` selects the paper-scale budgets for long offline
    runs.
    """
    name = os.environ.get("REPRO_BENCH_SCALE", "").strip().lower()
    if not name or name == "benchmark":
        return benchmark_scale()
    from repro.experiments.configs import get_scale

    return get_scale(name)
