"""Monte-Carlo yield report: sharding, determinism, and store resume."""

from __future__ import annotations

import pytest

from repro.corners.model import (
    COLD_TEMPERATURE_C,
    FAST_VTH_SCALE,
    HOT_TEMPERATURE_C,
    SLOW_VTH_SCALE,
)
from repro.experiments.yield_report import (
    ZOO_YIELD_CIRCUITS,
    default_targets,
    monte_carlo_corner_set,
    run_yield_report,
    yield_report_units,
    yield_shard_unit,
)

FAST_CIRCUITS = ("two_stage_opamp", "current_mirror_ota")  # kernel-batched


class TestMonteCarloCornerSet:
    def test_points_are_deterministic_in_the_seed(self):
        first = monte_carlo_corner_set(8, seed=3)
        second = monte_carlo_corner_set(8, seed=3)
        assert first == second
        assert monte_carlo_corner_set(8, seed=4) != first

    def test_points_stay_inside_the_corner_box(self):
        corner_set = monte_carlo_corner_set(64, seed=0)
        assert len(corner_set) == 64
        assert corner_set.names[0] == "mc0"
        for corner in corner_set:
            assert FAST_VTH_SCALE <= corner.vth_scale <= SLOW_VTH_SCALE
            assert FAST_VTH_SCALE <= corner.mobility_scale <= SLOW_VTH_SCALE
            assert COLD_TEMPERATURE_C <= corner.temperature_c <= HOT_TEMPERATURE_C

    def test_zero_samples_is_an_error(self):
        with pytest.raises(ValueError):
            monte_carlo_corner_set(0, seed=0)


class TestUnits:
    def test_one_unit_per_circuit_and_shard(self):
        units = yield_report_units(FAST_CIRCUITS, samples=10, shards=3, seed=0)
        assert [unit.unit_id for unit in units] == [
            "yield+two_stage_opamp+shard0",
            "yield+two_stage_opamp+shard1",
            "yield+two_stage_opamp+shard2",
            "yield+current_mirror_ota+shard0",
            "yield+current_mirror_ota+shard1",
            "yield+current_mirror_ota+shard2",
        ]
        # 10 samples over 3 shards: 4 + 3 + 3, distinct derived seeds.
        sizes = [unit.payload["samples"] for unit in units[:3]]
        assert sizes == [4, 3, 3]
        seeds = {unit.payload["seed"] for unit in units[:3]}
        assert len(seeds) == 3

    def test_more_shards_than_samples_drops_empty_units(self):
        units = yield_report_units(("rf_pa",), samples=2, shards=5, seed=0)
        assert len(units) == 2

    def test_unknown_circuit_raises(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            yield_report_units(("ring_oscillator",), samples=4, shards=1, seed=0)

    def test_default_targets_are_the_easy_end_of_every_range(self):
        for circuit in ZOO_YIELD_CIRCUITS:
            targets = default_targets(circuit)
            assert targets  # every spec has a target
            assert all(isinstance(value, float) for value in targets.values())


class TestShardUnit:
    def test_shard_is_a_pure_function_of_its_payload(self):
        unit = yield_report_units(("current_mirror_ota",), 6, shards=1, seed=5)[0]
        first = yield_shard_unit(unit.payload)
        second = yield_shard_unit(unit.payload)
        assert first == second
        assert first["samples"] == 6
        assert 0 <= first["passed"] <= 6
        for count in first["per_spec_passed"].values():
            assert 0 <= count <= 6


class TestRunYieldReport:
    def test_report_aggregates_shards_per_circuit(self):
        report = run_yield_report(FAST_CIRCUITS, samples=8, shards=2, seed=0)
        assert {entry.circuit for entry in report.results} == set(FAST_CIRCUITS)
        for entry in report.results:
            assert entry.samples == 8
            assert 0.0 <= entry.yield_fraction <= 1.0
            assert set(entry.per_spec_fraction()) == set(entry.targets)
        text = report.as_text()
        assert "current_mirror_ota" in text and "yield" in text
        document = report.as_json()
        assert document["samples_per_circuit"] == 8
        assert len(document["circuits"]) == 2

    def test_workers2_matches_workers1(self):
        kwargs = dict(circuits=FAST_CIRCUITS, samples=8, shards=4, seed=0)
        sequential = run_yield_report(workers=1, **kwargs)
        parallel = run_yield_report(workers=2, **kwargs)
        assert sequential.as_json() == parallel.as_json()

    def test_unknown_circuit_raises_before_any_work(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            run_yield_report(("ring_oscillator",), samples=4)

    def test_store_resumes_shards_without_resimulating(self, tmp_path, monkeypatch):
        kwargs = dict(
            circuits=("current_mirror_ota",), samples=8, shards=2, seed=0,
            store=tmp_path / "yield_store",
        )
        first = run_yield_report(**kwargs)
        # Sabotage the shard runner: if any shard re-executed, the rerun
        # fails — passing proves the report came from the artifact store.
        import repro.experiments.yield_report as yr

        def boom(arguments):
            raise AssertionError("shard re-executed despite stored artifact")

        monkeypatch.setattr(yr, "yield_shard_unit", boom)
        second = run_yield_report(**kwargs)
        assert second.as_json() == first.as_json()

    def test_no_resume_reexecutes(self, tmp_path):
        kwargs = dict(
            circuits=("current_mirror_ota",), samples=4, shards=1, seed=0,
            store=tmp_path / "yield_store",
        )
        first = run_yield_report(**kwargs)
        second = run_yield_report(resume=False, **kwargs)
        assert second.as_json() == first.as_json()
