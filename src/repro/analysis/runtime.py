"""Runtime lock auditing: the dynamic half of the REP-LOCK01 invariant.

The static rule proves lock discipline *within one class*; it cannot see a
caller that was supposed to hold the lock.  :class:`LockAudit` closes that
gap at test time: it instruments a live object so every access to its
lock-guarded attributes is checked against whether the current thread
actually holds the lock, and records the ones that do not.  Wiring it into
the gateway/service concurrency tests turns them into a race detector —
the tests keep asserting behaviour, and the audit additionally fails loudly
if any code path touches shared serve state unlocked (the pre-gateway
``ServeStats`` tier-fold bug would have been caught exactly here).

The instrumentation is reversible and confined to the audited instance:
the object's class is swapped for a dynamically created subclass whose
``__setattr__``/``__getattribute__`` consult the audit, and its lock is
wrapped so acquisitions are attributed to threads.  Nothing about the
class itself (or other instances) changes, and :meth:`LockAudit.uninstall`
restores the original class and lock.

Usage::

    audit = LockAudit(service.stats)          # guards every data attribute
    ...drive concurrent traffic...
    audit.assert_clean()                      # raises on unlocked access

or as a context manager (uninstalls on exit)::

    with LockAudit(service.stats, record_reads=False) as audit:
        ...
    audit.assert_clean()
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple


class LockAuditError(AssertionError):
    """Raised by :meth:`LockAudit.assert_clean` when violations were recorded."""


@dataclass(frozen=True)
class LockViolation:
    """One guarded-state access that happened with the lock unheld."""

    attribute: str
    operation: str  # "read" or "write"
    thread: str
    location: str

    def render(self) -> str:
        return (
            f"{self.operation} of guarded attribute {self.attribute!r} without "
            f"the lock (thread {self.thread}, at {self.location})"
        )


class _AuditedLock:
    """Wraps a real lock, attributing holds to threads (re-entrant counted)."""

    def __init__(self, lock: Any) -> None:
        self._lock = lock
        self._holds: Dict[int, int] = {}

    def held_by_current_thread(self) -> bool:
        return self._holds.get(threading.get_ident(), 0) > 0

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            ident = threading.get_ident()
            self._holds[ident] = self._holds.get(ident, 0) + 1
        return acquired

    def release(self) -> None:
        ident = threading.get_ident()
        count = self._holds.get(ident, 0)
        if count <= 1:
            self._holds.pop(ident, None)
        else:
            self._holds[ident] = count - 1
        self._lock.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *_exc: Any) -> None:
        self.release()

    # Condition-style passthroughs (wait/notify consult the real object).
    def __getattr__(self, name: str) -> Any:
        return getattr(self._lock, name)


def _caller_location() -> str:
    """`file:line in func` of the nearest frame outside this module."""
    for frame in reversed(traceback.extract_stack()[:-2]):
        if not frame.filename.endswith("runtime.py"):
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class LockAudit:
    """Record every unlocked access to an object's lock-guarded attributes.

    Parameters
    ----------
    target:
        The live object to audit (e.g. a ``ServeStats`` instance).
    lock_attr:
        Name of the attribute holding the lock (default ``"_lock"``).
    guarded:
        Attribute names to guard.  Default: every instance attribute present
        at install time except the lock itself — for a stats object, all of
        its counters.
    record_reads:
        Also record unlocked *reads* (default True).  Mutating a guarded
        container (``self.by_env[k] = v``) is a read of the container
        attribute, so read-auditing is what catches unlocked dict/list
        mutation; turn it off only for objects whose plain reads are a
        documented part of their API.
    """

    def __init__(
        self,
        target: Any,
        lock_attr: str = "_lock",
        guarded: Optional[Iterable[str]] = None,
        record_reads: bool = True,
    ) -> None:
        real_lock = getattr(target, lock_attr)
        self.target = target
        self.lock_attr = lock_attr
        if guarded is None:
            guarded = [name for name in vars(target) if name != lock_attr]
        self.guarded = frozenset(guarded)
        self.record_reads = bool(record_reads)
        self._original_class = type(target)
        self._real_lock = real_lock
        self._audited_lock = _AuditedLock(real_lock)
        self._violations: List[LockViolation] = []
        self._violations_lock = threading.Lock()
        self._installed = False
        self._install()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _record(self, attribute: str, operation: str) -> None:
        violation = LockViolation(
            attribute=attribute,
            operation=operation,
            thread=threading.current_thread().name,
            location=_caller_location(),
        )
        with self._violations_lock:
            self._violations.append(violation)

    def _install(self) -> None:
        audit = self
        original = self._original_class

        def __setattr__(instance: Any, name: str, value: Any) -> None:
            if name in audit.guarded and not audit._audited_lock.held_by_current_thread():
                audit._record(name, "write")
            original.__setattr__(instance, name, value)

        def __getattribute__(instance: Any, name: str) -> Any:
            if (
                audit.record_reads
                and name in audit.guarded
                and not audit._audited_lock.held_by_current_thread()
            ):
                audit._record(name, "read")
            return original.__getattribute__(instance, name)

        audited_class = type(
            f"LockAudited{original.__name__}",
            (original,),
            {"__setattr__": __setattr__, "__getattribute__": __getattribute__},
        )
        object.__setattr__(self.target, self.lock_attr, self._audited_lock)
        object.__setattr__(self.target, "__class__", audited_class)
        self._installed = True

    def uninstall(self) -> None:
        """Restore the original class and lock; the audit stops recording."""
        if not self._installed:
            return
        object.__setattr__(self.target, "__class__", self._original_class)
        object.__setattr__(self.target, self.lock_attr, self._real_lock)
        self._installed = False

    def __enter__(self) -> "LockAudit":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def violations(self) -> Tuple[LockViolation, ...]:
        with self._violations_lock:
            return tuple(self._violations)

    def assert_clean(self) -> None:
        """Raise :class:`LockAuditError` if any unlocked access was recorded."""
        violations = self.violations
        if violations:
            rendered = "\n  ".join(v.render() for v in violations)
            raise LockAuditError(
                f"{len(violations)} unlocked guarded-state accesses:\n  {rendered}"
            )
