"""Tests for the string-ID component registry and the catalog contents."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.agents.policy import ActorCriticPolicy
from repro.api import Optimizer, UnknownComponentError
from repro.api.registry import Registry
from repro.env.circuit_env import CircuitDesignEnv


class TestCatalogRoundTrips:
    def test_every_listed_env_constructs(self):
        assert len(repro.list_envs()) >= 5
        for env_id in repro.list_envs():
            env = repro.make_env(env_id, seed=0)
            assert isinstance(env, CircuitDesignEnv)

    def test_every_listed_policy_constructs(self, opamp_env, rng):
        assert set(repro.list_policies()) == {"gcn_fc", "gat_fc", "baseline_a", "baseline_b"}
        for policy_id in repro.list_policies():
            policy = repro.make_policy(policy_id, opamp_env, rng)
            assert isinstance(policy, ActorCriticPolicy)

    def test_every_listed_optimizer_constructs(self):
        assert set(repro.list_optimizers()) == {
            "ppo", "genetic", "bayesian", "random", "supervised",
        }
        for optimizer_id in repro.list_optimizers():
            optimizer = repro.make_optimizer(optimizer_id)
            assert isinstance(optimizer, Optimizer)
            assert optimizer.id == optimizer_id

    def test_env_ids_cover_both_circuits_and_tasks(self):
        ids = repro.list_envs()
        assert "opamp-p2s-v0" in ids
        assert "rf_pa-coarse-v0" in ids and "rf_pa-fine-v0" in ids
        assert "rf_pa-fom-v0" in ids and "rf_pa-fom-coarse-v0" in ids

    def test_legacy_aliases_resolve(self):
        from repro.api import ENVS, OPTIMIZERS

        assert ENVS.resolve("rf_pa-p2s-v0") == "rf_pa-fine-v0"
        assert OPTIMIZERS.resolve("genetic_algorithm") == "genetic"
        assert OPTIMIZERS.resolve("bayesian_optimization") == "bayesian"
        assert OPTIMIZERS.resolve("random_search") == "random"
        assert OPTIMIZERS.resolve("supervised_learning") == "supervised"

    def test_describe_components_lists_all_kinds(self):
        catalog = repro.describe_components()
        assert set(catalog) == {"environments", "policies", "optimizers"}
        for entries in catalog.values():
            assert entries  # every kind is populated
            assert all(isinstance(text, str) for text in entries.values())


class TestUnknownIds:
    def test_unknown_env_error_is_helpful(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            repro.make_env("opamp-p2s-v1")
        message = str(excinfo.value)
        assert "opamp-p2s-v1" in message
        assert "Did you mean" in message
        assert "opamp-p2s-v0" in message

    def test_unknown_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            repro.make_optimizer("simulated_annealing")

    def test_unknown_error_lists_available_ids(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            repro.make_policy("resnet", None)
        for policy_id in repro.list_policies():
            assert policy_id in str(excinfo.value)


class TestRegistryMechanics:
    def test_decorator_registration_and_defaults(self):
        registry = Registry("widget")

        @registry.register("w-v0", description="a widget", defaults={"size": 3}, aliases=("w",))
        def _make(size: int = 1, color: str = "red"):
            return (size, color)

        assert registry.ids() == ["w-v0"]
        assert "w" in registry and "w-v0" in registry
        assert registry.make("w-v0") == (3, "red")          # defaults applied
        assert registry.make("w", size=5, color="blue") == (5, "blue")  # caller wins

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("w-v0", lambda: 1)
        with pytest.raises(ValueError):
            registry.register("w-v0", lambda: 2)
        registry.register("w-v0", lambda: 2, overwrite=True)
        assert registry.make("w-v0") == 2

    def test_alias_collision_rejected(self):
        registry = Registry("widget")
        registry.register("w-v0", lambda: 1, aliases=("w",))
        with pytest.raises(ValueError):
            registry.register("w", lambda: 2)

    def test_overwrite_repoints_canonical_id_via_alias(self):
        registry = Registry("widget")
        registry.register("w-v0", lambda: "old", aliases=("w",))
        registry.register("w-v1", lambda: "new", aliases=("w-v0",), overwrite=True)
        assert registry.make("w-v0") == "new"     # old canonical ID repointed
        assert registry.ids() == ["w-v1"]
        assert "w" not in registry                # stale alias of the old entry dropped

    def test_overwrite_drops_stale_aliases_of_replaced_entry(self):
        registry = Registry("widget")
        registry.register("w-v0", lambda: "old", aliases=("w", "widget"))
        registry.register("w-v0", lambda: "new", aliases=("w",), overwrite=True)
        assert registry.make("w") == "new"
        assert "widget" not in registry

    def test_unregister_removes_aliases(self):
        registry = Registry("widget")
        registry.register("w-v0", lambda: 1, aliases=("w",))
        registry.unregister("w")
        assert len(registry) == 0
        assert "w" not in registry

    def test_user_extension_via_register_env(self, opamp_env):
        from repro.api import ENVS

        @repro.register_env("custom-opamp-v0", description="test extension")
        def _custom(seed=None):
            return repro.make_env("opamp-p2s-v0", seed=seed, max_steps=7)

        try:
            env = repro.make_env("custom-opamp-v0", seed=1)
            assert env.max_steps == 7
            assert "custom-opamp-v0" in repro.list_envs()
        finally:
            ENVS.unregister("custom-opamp-v0")


class TestPolicyEquivalence:
    def test_registry_policy_matches_legacy_builder(self, opamp_env):
        """The registry path builds the exact same network as the old factory."""
        from repro.agents.policy import POLICY_FACTORIES

        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        observation = opamp_env.reset(target_specs=target)
        new = repro.make_policy("gcn_fc", opamp_env, np.random.default_rng(4))
        old = POLICY_FACTORIES["gcn_fc"](opamp_env, np.random.default_rng(4))
        np.testing.assert_allclose(
            new.action_distribution(observation).probs,
            old.action_distribution(observation).probs,
        )
