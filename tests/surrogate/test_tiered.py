"""TieredSimulator: cold parity, warm consults, corpus feedback, refits."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_env
from repro.parallel import DiskSimulationCache
from repro.simulation.base import SimulationResult
from repro.surrogate import SurrogateConfig, TieredSimulator, harvest_corpus

#: Small-but-learnable knobs shared by the warm-path tests.
FAST_CONFIG = dict(hidden=(16, 16), epochs=120, min_train_points=8, ensemble_size=2)


class CountingSimulator:
    """Deterministic stand-in simulator that counts real evaluations."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def simulate(self, netlist):
        self.calls += 1
        total = float(np.sum(netlist.parameter_array()))
        return SimulationResult(
            specs={"gain": total, "power": total * 0.5},
            details={},
            valid=True,
        )


@pytest.fixture(scope="module")
def lna_env():
    return make_env("common_source_lna-p2s-v0", seed=0)


def sample_netlists(env, count, seed):
    rng = np.random.default_rng(seed)
    space = env.benchmark.design_space
    items = []
    for _ in range(count):
        netlist = env.benchmark.fresh_netlist()
        space.apply_to_netlist(netlist, space.sample(rng))
        items.append(netlist)
    return items


def warm_tier(env, seed=1, count=40):
    """A tier whose surrogate memorized ``count`` exact observations."""
    tier = TieredSimulator(CountingSimulator(), config=SurrogateConfig(**FAST_CONFIG))
    netlists = sample_netlists(env, count, seed)
    for netlist in netlists:
        tier.simulate(netlist)
    report = tier.refit()
    assert report is not None and report.threshold is not None
    return tier, netlists


class TestColdParity:
    def test_no_surrogate_matches_disk_cache_exactly(self, lna_env, tmp_path):
        netlists = sample_netlists(lna_env, 6, seed=0)
        plain_sim, tier_sim = CountingSimulator(), CountingSimulator()
        plain = DiskSimulationCache(plain_sim, tmp_path / "plain")
        tier = TieredSimulator(tier_sim, directory=tmp_path / "tier")
        for netlist in netlists:
            a = plain.simulate(netlist)
            b = tier.simulate(netlist)
            assert a.specs == b.specs and a.valid == b.valid
        assert plain_sim.calls == tier_sim.calls == len(netlists)
        assert plain.stats.misses == tier.stats.misses
        assert tier.stats.surrogate_hits == tier.stats.trust_rejections == 0

    def test_untrained_surrogate_answers_nothing(self, lna_env):
        from repro.surrogate import SpecSurrogate

        netlists = sample_netlists(lna_env, 4, seed=0)
        template = netlists[0].parameter_array()
        surrogate = SpecSurrogate(
            netlists[0].name, ["gain", "power"], num_inputs=template.size
        )
        simulator = CountingSimulator()
        tier = TieredSimulator(simulator, surrogate=surrogate)
        for netlist in netlists:
            result = tier.simulate(netlist)
            assert "surrogate" not in result.details
        assert simulator.calls == len(netlists)
        # Consulted-and-rejected is still counted, but answers stay exact.
        assert tier.stats.trust_rejections == len(netlists)
        assert tier.stats.surrogate_hits == 0
        assert tier.stats.exact_fallbacks == len(netlists)

    def test_disk_tier_serves_previous_process_entries(self, lna_env, tmp_path):
        netlists = sample_netlists(lna_env, 5, seed=0)
        first = TieredSimulator(CountingSimulator(), directory=tmp_path / "corpus")
        for netlist in netlists:
            first.simulate(netlist)
        second_sim = CountingSimulator()
        second = TieredSimulator(second_sim, directory=tmp_path / "corpus")
        for netlist in netlists:
            second.simulate(netlist)
        assert second_sim.calls == 0
        assert second.stats.disk_hits == len(netlists)


class TestWarmTier:
    def test_trusted_queries_skip_the_exact_simulator(self, lna_env):
        trained, netlists = warm_tier(lna_env)
        simulator = CountingSimulator()
        tier = TieredSimulator(simulator, surrogate=trained.surrogate)
        for netlist in netlists:
            tier.simulate(netlist)
        stats = tier.stats
        assert stats.surrogate_hits > 0
        assert stats.surrogate_hits + stats.trust_rejections == len(netlists)
        assert simulator.calls == stats.trust_rejections == stats.exact_fallbacks
        assert stats.misses == simulator.calls

    def test_surrogate_answers_are_flagged_and_not_persisted(self, lna_env, tmp_path):
        trained, netlists = warm_tier(lna_env)
        corpus = tmp_path / "corpus"
        tier = TieredSimulator(
            CountingSimulator(), surrogate=trained.surrogate, directory=corpus
        )
        for netlist in netlists:
            result = tier.simulate(netlist)
            if result.details.get("surrogate") == 1.0:
                assert "surrogate_disagreement" in result.details
        assert tier.stats.surrogate_hits > 0
        # Only exact fallbacks reach the corpus: a surrogate estimate on disk
        # would poison future disk hits and its own training set.
        entries = list(corpus.glob("*.json"))
        assert len(entries) == tier.stats.misses
        assert len(harvest_corpus(corpus)) == tier.stats.misses

    def test_foreign_topology_is_exact_not_rejected(self, lna_env):
        trained, _ = warm_tier(lna_env)
        opamp_env = make_env("opamp-p2s-v0", seed=0)
        simulator = CountingSimulator()
        tier = TieredSimulator(simulator, surrogate=trained.surrogate)
        for netlist in sample_netlists(opamp_env, 3, seed=0):
            tier.simulate(netlist)
        assert simulator.calls == 3
        assert tier.stats.surrogate_hits == 0
        assert tier.stats.trust_rejections == 0  # not consulted at all
        assert tier.stats.exact_fallbacks == 0

    def test_repeat_queries_hit_the_memory_tier(self, lna_env):
        trained, netlists = warm_tier(lna_env)
        tier = TieredSimulator(CountingSimulator(), surrogate=trained.surrogate)
        for netlist in netlists:
            tier.simulate(netlist)
        surrogate_hits = tier.stats.surrogate_hits
        for netlist in netlists:
            tier.simulate(netlist)
        assert tier.stats.surrogate_hits == surrogate_hits  # memoized, not re-asked
        assert tier.stats.hits == len(netlists)


class TestFeedbackLoop:
    def test_observations_buffer_only_valid_results(self, lna_env):
        class SometimesInvalid(CountingSimulator):
            def simulate(self, netlist):
                result = super().simulate(netlist)
                if self.calls % 2 == 0:
                    return SimulationResult(result.specs, result.details, valid=False)
                return result

        tier = TieredSimulator(SometimesInvalid())
        for netlist in sample_netlists(lna_env, 6, seed=0):
            tier.simulate(netlist)
        assert tier.num_observed() == 3

    def test_refit_below_min_train_points_returns_none(self, lna_env):
        tier = TieredSimulator(CountingSimulator(), config=SurrogateConfig(**FAST_CONFIG))
        for netlist in sample_netlists(lna_env, 4, seed=0):
            tier.simulate(netlist)
        assert tier.refit() is None
        assert tier.surrogate is None

    def test_refit_on_empty_buffer_returns_none(self):
        tier = TieredSimulator(CountingSimulator())
        assert tier.refit() is None
        with pytest.raises(ValueError, match="no exact observations"):
            tier.observed_dataset()

    def test_refit_interval_trains_online(self, lna_env):
        config = SurrogateConfig(**FAST_CONFIG)
        tier = TieredSimulator(CountingSimulator(), refit_interval=10, config=config)
        netlists = sample_netlists(lna_env, 10, seed=1)
        for netlist in netlists[:9]:
            tier.simulate(netlist)
        assert tier.surrogate is None
        tier.simulate(netlists[9])
        assert tier.surrogate is not None and tier.surrogate.is_trained
        assert tier.last_report is not None
        assert tier.last_report.num_points == 10

    def test_observed_dataset_matches_the_corpus_layout(self, lna_env, tmp_path):
        corpus = tmp_path / "corpus"
        tier = TieredSimulator(CountingSimulator(), directory=corpus)
        for netlist in sample_netlists(lna_env, 5, seed=2):
            tier.simulate(netlist)
        observed = tier.observed_dataset()
        harvested = harvest_corpus(corpus)
        assert observed.circuit == harvested.circuit
        assert observed.spec_names == harvested.spec_names
        assert observed.num_inputs == harvested.num_inputs
        assert len(observed) == len(harvested) == 5
        # Same rows up to file-name ordering: compare as sorted multisets.
        def as_multiset(rows):
            return sorted(map(tuple, rows))

        assert as_multiset(observed.parameters) == as_multiset(harvested.parameters)

    def test_invalid_refit_interval_raises(self):
        with pytest.raises(ValueError, match="refit_interval"):
            TieredSimulator(CountingSimulator(), refit_interval=0)
