"""Spec-incomplete FoM results must score as worst, never as NaN.

``FomReward.figure_of_merit`` degrades to NaN when a simulator omits a
required spec; a NaN fitness would win every ``np.argmax`` in the search
baselines, silently reporting the broken candidate as the best design.
``SizingProblem._score`` therefore maps non-finite FoMs to ``-inf``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SizingProblem
from repro.circuits import build_rf_pa
from repro.env.reward import FomReward
from repro.simulation.base import SimulationResult


class _SpecDroppingSimulator:
    """Marks results valid but omits 'efficiency' for one parameter value."""

    name = "spec_dropping"

    def simulate(self, netlist):
        width = netlist.get_parameter("M1", "width")
        specs = {"output_power": 2.5, "efficiency": 0.55}
        if width > 50e-6:
            del specs["efficiency"]
        return SimulationResult(specs=specs, details={}, valid=True)


def test_incomplete_fom_scores_minus_inf_not_nan():
    benchmark = build_rf_pa()
    problem = SizingProblem(
        benchmark, _SpecDroppingSimulator(), fom_reward=FomReward(benchmark.spec_space)
    )
    width_index = benchmark.design_space.names.index("M1.width")
    healthy = benchmark.design_space.center()
    healthy[width_index] = 20e-6
    broken = healthy.copy()
    broken[width_index] = 100e-6

    good = problem.objective(healthy)
    bad = problem.objective(broken)
    assert np.isfinite(good)
    assert bad == -np.inf

    # The argmax selection every baseline uses must pick the healthy design.
    fitness = np.array([bad, good])
    assert int(np.argmax(fitness)) == 1
