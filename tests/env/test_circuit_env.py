"""Tests for the circuit design environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_env
from repro.env import GOAL_BONUS
from repro.env.circuit_env import CircuitDesignEnv


class TestReset:
    def test_reset_samples_target_from_table1_space(self, opamp_env):
        opamp_env.reset()
        targets = opamp_env.target_specs
        assert 300.0 <= targets["gain"] <= 500.0
        assert 1e6 <= targets["bandwidth"] <= 2.5e7
        assert 55.0 <= targets["phase_margin"] <= 60.0
        assert 1e-4 <= targets["power"] <= 1e-2

    def test_reset_with_explicit_target(self, opamp_env):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        opamp_env.reset(target_specs=target)
        assert opamp_env.target_specs == target

    def test_reset_returns_observation_with_initial_specs(self, opamp_env):
        observation = opamp_env.reset()
        assert set(observation.measured_specs) == {"gain", "bandwidth", "phase_margin", "power"}
        assert observation.num_parameters == 15

    def test_center_initialization_is_reproducible(self, opamp_env):
        first = opamp_env.reset().normalized_parameters
        second = opamp_env.reset().normalized_parameters
        np.testing.assert_allclose(first, second)

    def test_reset_with_initial_parameters(self, opamp_env, opamp_benchmark):
        start = opamp_benchmark.design_space.lower_bounds
        observation = opamp_env.reset(initial_parameters=start)
        np.testing.assert_allclose(observation.normalized_parameters, np.zeros(15), atol=1e-9)


class TestStep:
    def test_step_before_reset_raises(self, opamp_env):
        with pytest.raises(RuntimeError):
            opamp_env.step(opamp_env.action_space.no_op())

    def test_invalid_action_rejected(self, opamp_env):
        opamp_env.reset()
        with pytest.raises(ValueError):
            opamp_env.step(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            opamp_env.step(np.full(15, 7, dtype=np.int64))

    def test_step_returns_reward_and_info(self, opamp_env, rng):
        opamp_env.reset()
        observation, reward, done, info = opamp_env.step(opamp_env.action_space.sample(rng))
        assert isinstance(reward, float)
        assert reward <= GOAL_BONUS
        assert info["step"] == 1
        assert "specs" in info and "met_fraction" in info
        assert isinstance(done, bool)

    def test_keep_action_leaves_parameters_unchanged(self, opamp_env):
        observation = opamp_env.reset()
        before = observation.normalized_parameters.copy()
        after, _, _, _ = opamp_env.step(opamp_env.action_space.no_op())
        np.testing.assert_allclose(before, after.normalized_parameters)

    def test_episode_terminates_at_max_steps(self):
        env = make_env("opamp-p2s-v0", seed=0, max_steps=5)
        env.reset(
            target_specs={"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12}
        )
        done = False
        steps = 0
        while not done:
            _, _, done, _ = env.step(env.action_space.no_op())
            steps += 1
        assert steps == 5

    def test_episode_terminates_with_bonus_when_goal_reached(self, opamp_env):
        # A trivially easy target: the initial center sizing already meets it.
        easy_target = {"gain": 1.1, "bandwidth": 1.0, "phase_margin": 0.0, "power": 10.0}
        opamp_env.reset(target_specs=easy_target)
        _, reward, done, info = opamp_env.step(opamp_env.action_space.no_op())
        assert done
        assert info["goal_reached"]
        assert reward == GOAL_BONUS

    def test_trajectory_recorded(self, opamp_env, rng):
        opamp_env.reset()
        for _ in range(3):
            _, _, done, _ = opamp_env.step(opamp_env.action_space.sample(rng))
            if done:
                break
        trajectory = opamp_env.trajectory
        assert trajectory is not None
        assert trajectory.length >= 1
        assert trajectory.spec_series("gain").shape == (trajectory.length,)
        assert isinstance(trajectory.total_reward, float)


class TestConfiguration:
    def test_max_steps_default_from_metadata(self, opamp_env, rf_pa_env):
        assert opamp_env.max_steps == 50
        assert rf_pa_env.max_steps == 30

    def test_invalid_initial_sizing(self, opamp_benchmark, opamp_simulator):
        with pytest.raises(ValueError):
            CircuitDesignEnv(opamp_benchmark, opamp_simulator, initial_sizing="warm")

    def test_invalid_max_steps(self, opamp_benchmark, opamp_simulator):
        with pytest.raises(ValueError):
            CircuitDesignEnv(opamp_benchmark, opamp_simulator, max_steps=0)

    def test_random_initial_sizing_differs_between_episodes(self):
        env = make_env("opamp-p2s-v0", seed=3, initial_sizing="random")
        first = env.reset().normalized_parameters.copy()
        second = env.reset().normalized_parameters.copy()
        assert not np.allclose(first, second)

    def test_dimensions_exposed(self, opamp_env, rf_pa_env):
        assert opamp_env.num_parameters == 15
        assert rf_pa_env.num_parameters == 14
        assert opamp_env.spec_feature_dimension == 12
        assert rf_pa_env.spec_feature_dimension == 6
        assert opamp_env.num_graph_nodes == 12
        assert opamp_env.node_feature_dimension > 0


class TestFomMode:
    def test_fom_env_never_terminates_early(self):
        env = make_env("rf_pa-fom-v0", seed=0, max_steps=4)
        env.reset()
        steps = 0
        done = False
        while not done:
            _, _, done, info = env.step(env.action_space.no_op())
            steps += 1
            assert "figure_of_merit" in info
        assert steps == 4

    def test_fom_mode_flag(self):
        assert make_env("rf_pa-fom-v0", seed=0).is_fom_mode
        assert not make_env("opamp-p2s-v0", seed=0).is_fom_mode


class TestRegistry:
    def test_fidelity_selection(self):
        assert make_env("rf_pa-fine-v0").simulator.name == "rf_pa_fine"
        assert make_env("rf_pa-coarse-v0").simulator.name == "rf_pa_coarse"
        with pytest.raises(ValueError):
            make_env("rf_pa-medium-v0")

    def test_seeded_environments_sample_same_targets(self):
        env_a = make_env("opamp-p2s-v0", seed=11)
        env_b = make_env("opamp-p2s-v0", seed=11)
        env_a.reset(), env_b.reset()
        assert env_a.target_specs == env_b.target_specs
