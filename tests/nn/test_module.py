"""Tests for the Module base class (parameter traversal, state dicts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import MLP, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(3, 4, rng)
        self.second = Linear(4, 2, rng)
        self.scale = Tensor(np.ones(1), requires_grad=True)

    def forward(self, x):
        return self.second(self.first(x).tanh()) * self.scale


class TestParameterTraversal:
    def test_named_parameters_include_children(self, rng):
        net = TinyNet(rng)
        names = dict(net.named_parameters())
        assert "scale" in names
        assert "first.weight" in names
        assert "second.bias" in names
        assert len(names) == 5

    def test_num_parameters(self, rng):
        net = TinyNet(rng)
        assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2) + 1

    def test_zero_grad_clears_all(self, rng):
        net = TinyNet(rng)
        (net(Tensor(np.ones((1, 3)))) ** 2).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        net_a = TinyNet(np.random.default_rng(0))
        net_b = TinyNet(np.random.default_rng(1))
        x = Tensor(np.ones((1, 3)))
        assert not np.allclose(net_a(x).data, net_b(x).data)
        net_b.load_state_dict(net_a.state_dict())
        np.testing.assert_allclose(net_a(x).data, net_b(x).data)

    def test_state_dict_is_a_copy(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["scale"][0] = 99.0
        assert net.scale.data[0] == 1.0

    def test_strict_mismatch_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)
        net.load_state_dict(state, strict=False)  # tolerated when not strict

    def test_shape_mismatch_raises(self, rng):
        net = TinyNet(rng)
        state = net.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_copy_parameters_from(self, rng):
        source = MLP((3, 5, 2), np.random.default_rng(3))
        destination = MLP((3, 5, 2), np.random.default_rng(4))
        destination.copy_parameters_from(source)
        x = Tensor(np.random.default_rng(5).normal(size=(2, 3)))
        np.testing.assert_allclose(source(x).data, destination(x).data)
