"""Content-addressed on-disk artifact store for sweep results.

Layout (all JSON, all atomically replaced)::

    <root>/
      manifest.json                  # key -> {unit_id, status, wall_time_s}
      units/<key[:2]>/<key>.json     # full UnitRecord, one per executed unit
      sweeps/<sweep_key>.json        # sweep config + its unit keys/statuses

The unit file name is the unit's content address
(:meth:`~repro.orchestrate.units.WorkUnit.key`), so *any* sweep that expands
to the same (runner, payload) pair finds the artifact — resuming a sweep,
re-running it after a crash, or running a second sweep that overlaps the
first all skip the completed units.  Failed units are persisted too (their
traceback is worth keeping) but never satisfy a resume check.

Only the orchestrator process writes the store — workers hand records back
over the pool — so the manifest needs no cross-process locking; it is a
derived index and can always be rebuilt from the unit files with
:meth:`ArtifactStore.rebuild_manifest`.
"""

from __future__ import annotations

import functools
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.orchestrate.units import UnitRecord
from repro.utils import atomic_write_json

MANIFEST_NAME = "manifest.json"

_atomic_write_json = functools.partial(atomic_write_json, indent=2, sort_keys=True)


class ArtifactStore:
    """Directory of unit artifacts addressed by content key."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._units_dir = self.root / "units"
        self._sweeps_dir = self.root / "sweeps"

    # ------------------------------------------------------------------
    # Unit records
    # ------------------------------------------------------------------
    def unit_path(self, key: str) -> Path:
        return self._units_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[UnitRecord]:
        """Load the record for ``key`` (None when absent or unreadable)."""
        path = self.unit_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return UnitRecord.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def has_completed(self, key: str) -> bool:
        record = self.get(key)
        return record is not None and record.completed

    def put(self, record: UnitRecord, update_manifest: bool = True) -> Path:
        """Persist one record (and, by default, refresh the manifest index).

        Batch writers pass ``update_manifest=False`` and call
        :meth:`update_manifest` once for the whole batch — the manifest is a
        full-file rewrite, so per-record updates are quadratic in sweep size.
        """
        path = self.unit_path(record.key)
        _atomic_write_json(path, record.to_dict())
        if update_manifest:
            self.update_manifest([record])
        return path

    def update_manifest(self, records) -> None:
        """Merge ``records`` into the manifest index in one write."""
        records = list(records)
        if not records:
            return
        manifest = self.load_manifest()
        for record in records:
            manifest[record.key] = {
                "unit_id": record.unit_id,
                "status": record.status,
                "wall_time_s": record.wall_time_s,
            }
        _atomic_write_json(self.root / MANIFEST_NAME, manifest)

    def records(self) -> Iterator[UnitRecord]:
        """Iterate every stored unit record (manifest-independent)."""
        if not self._units_dir.is_dir():
            return
        for path in sorted(self._units_dir.glob("*/*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    yield UnitRecord.from_dict(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError):
                continue

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def load_manifest(self) -> Dict[str, Dict[str, Any]]:
        try:
            with open(self.root / MANIFEST_NAME, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return dict(data) if isinstance(data, dict) else {}
        except (OSError, ValueError):
            return {}

    def rebuild_manifest(self) -> Dict[str, Dict[str, Any]]:
        """Regenerate the manifest from the unit files (source of truth)."""
        manifest = {
            record.key: {
                "unit_id": record.unit_id,
                "status": record.status,
                "wall_time_s": record.wall_time_s,
            }
            for record in self.records()
        }
        _atomic_write_json(self.root / MANIFEST_NAME, manifest)
        return manifest

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    def sweep_path(self, sweep_key: str) -> Path:
        return self._sweeps_dir / f"{sweep_key}.json"

    def put_sweep(self, sweep_key: str, manifest: Mapping[str, Any]) -> Path:
        path = self.sweep_path(sweep_key)
        _atomic_write_json(path, dict(manifest))
        return path

    def get_sweep(self, sweep_key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.sweep_path(sweep_key), "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArtifactStore({str(self.root)!r})"
