"""Simulation substrate: technology models, a mini-SPICE, and circuit evaluators.

This package replaces the proprietary simulators the paper relies on
(Cadence Spectre for the op-amp, Keysight ADS harmonic balance for the RF PA)
with from-scratch equivalents:

* :mod:`repro.simulation.mna` — a modified-nodal-analysis DC/AC engine,
* :mod:`repro.simulation.opamp_sim` — the two-stage op-amp evaluator,
* :mod:`repro.simulation.pa_sim` — fine (HB-like) and coarse (DC-estimate)
  RF PA evaluators used by the transfer-learning workflow.
"""

from repro.simulation.base import CircuitSimulator, SimulationResult, Simulator
from repro.simulation.folded_cascode_sim import (
    FoldedCascodeOperatingPoint,
    FoldedCascodeSimulator,
)
from repro.simulation.gan_hemt import GanHemtModel, GanOperatingPoint
from repro.simulation.lna_sim import LnaOperatingPoint, LnaSimulator
from repro.simulation.mna import AcSolution, ConvergenceError, DcSolution, MnaCircuit
from repro.simulation.mosfet import MosfetModel, OperatingPoint, Region
from repro.simulation.opamp_sim import OpAmpOperatingPoint, OpAmpSimulator
from repro.simulation.ota_sim import CmOtaOperatingPoint, CmOtaSimulator
from repro.simulation.pa_sim import (
    DriverChainResult,
    PaOperatingPoint,
    RfPaCoarseSimulator,
    RfPaFineSimulator,
)
from repro.simulation.technology import CMOS_45NM, GAN_150NM, CmosTechnology, GanTechnology

__all__ = [
    "AcSolution",
    "CMOS_45NM",
    "CircuitSimulator",
    "CmOtaOperatingPoint",
    "CmOtaSimulator",
    "CmosTechnology",
    "ConvergenceError",
    "DcSolution",
    "DriverChainResult",
    "FoldedCascodeOperatingPoint",
    "FoldedCascodeSimulator",
    "GAN_150NM",
    "GanHemtModel",
    "GanOperatingPoint",
    "GanTechnology",
    "LnaOperatingPoint",
    "LnaSimulator",
    "MnaCircuit",
    "MosfetModel",
    "OpAmpOperatingPoint",
    "OpAmpSimulator",
    "OperatingPoint",
    "PaOperatingPoint",
    "Region",
    "RfPaCoarseSimulator",
    "RfPaFineSimulator",
    "SimulationResult",
    "Simulator",
]
