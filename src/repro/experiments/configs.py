"""Experiment configurations: paper-scale and bench-scale settings.

The paper trains the op-amp agents for 3.5e4 episodes and the RF PA agents
for 3.5e3 episodes, evaluates deployment accuracy on 200 sampled
specification groups, and repeats every RL experiment over 6 random seeds.
Those budgets take many CPU-hours with this pure-Python substrate, so each
experiment is parameterized by an :class:`ExperimentScale`:

* ``paper_scale()`` — the full budgets from the paper (use for an offline
  long run when compute allows);
* ``bench_scale()`` — reduced budgets sized so that the complete benchmark
  suite (``pytest benchmarks/``) finishes in tens of minutes on a laptop
  while still showing the qualitative shape of every figure and table;
* ``smoke_scale()`` — minimal budgets used by the integration tests.

The per-circuit RL hyper-parameters (episode lengths, PPO settings) live in
:func:`rl_hyperparameters` and match Sec. 4 where the paper specifies them.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.agents.ppo import PPOConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Budgets that trade fidelity against wall-clock time."""

    name: str
    opamp_training_episodes: int
    rf_pa_training_episodes: int
    episodes_per_update: int
    eval_interval: int
    eval_specs: int
    deployment_specs: int
    optimizer_runs: int
    num_seeds: int
    supervised_samples: int
    supervised_epochs: int

    def __post_init__(self) -> None:
        if min(
            self.opamp_training_episodes,
            self.rf_pa_training_episodes,
            self.episodes_per_update,
            self.eval_interval,
            self.eval_specs,
            self.deployment_specs,
            self.optimizer_runs,
            self.num_seeds,
            self.supervised_samples,
            self.supervised_epochs,
        ) <= 0:
            raise ValueError("all scale budgets must be positive")


def paper_scale() -> ExperimentScale:
    """The budgets reported in the paper (Sec. 4)."""
    return ExperimentScale(
        name="paper",
        opamp_training_episodes=35_000,
        rf_pa_training_episodes=3_500,
        episodes_per_update=20,
        eval_interval=50,
        eval_specs=200,
        deployment_specs=200,
        optimizer_runs=30,
        num_seeds=6,
        supervised_samples=20_000,
        supervised_epochs=500,
    )


def bench_scale() -> ExperimentScale:
    """Reduced budgets used by ``pytest benchmarks/`` (shape, not absolutes)."""
    return ExperimentScale(
        name="bench",
        opamp_training_episodes=240,
        rf_pa_training_episodes=160,
        episodes_per_update=10,
        eval_interval=8,
        eval_specs=20,
        deployment_specs=30,
        optimizer_runs=5,
        num_seeds=2,
        supervised_samples=600,
        supervised_epochs=60,
    )


def smoke_scale() -> ExperimentScale:
    """Tiny budgets for integration tests."""
    return ExperimentScale(
        name="smoke",
        opamp_training_episodes=20,
        rf_pa_training_episodes=16,
        episodes_per_update=4,
        eval_interval=4,
        eval_specs=4,
        deployment_specs=5,
        optimizer_runs=2,
        num_seeds=1,
        supervised_samples=80,
        supervised_epochs=10,
    )


SCALES = {
    "paper": paper_scale,
    "bench": bench_scale,
    "smoke": smoke_scale,
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale by name (``paper``, ``bench``, ``smoke``)."""
    try:
        return SCALES[name]()
    except KeyError as exc:
        raise ValueError(f"unknown scale '{name}', expected one of {sorted(SCALES)}") from exc


#: Method names of the four RL policies compared in Fig. 3 / Fig. 7 / Table 2.
RL_METHODS: Tuple[str, ...] = ("gat_fc", "gcn_fc", "baseline_a", "baseline_b")

#: Display labels used in reports (match the paper's legends).
METHOD_LABELS: Dict[str, str] = {
    "gat_fc": "GAT-FC (ours)",
    "gcn_fc": "GCN-FC (ours)",
    "baseline_a": "Baseline A (AutoCkt)",
    "baseline_b": "Baseline B (GCN-RL)",
    "genetic_algorithm": "Genetic Algorithm",
    "bayesian_optimization": "Bayesian Optimization",
    "supervised_learning": "Supervised Learning",
    "random_search": "Random Search",
}


@functools.lru_cache(maxsize=None)
def _episode_step_budget(circuit: str) -> int:
    """The circuit's episode step budget, read from its benchmark metadata.

    ``CircuitDesignEnv`` resolves ``max_steps=None`` from the same
    ``max_episode_steps`` entry, so the builder metadata stays the single
    source of truth and ``make_env(id)`` and the training harness can never
    disagree about episode length.
    """
    # Imported lazily: repro.circuits is import-cheap but this keeps the
    # configs module free of a hard circuits dependency at import time.
    from repro.circuits.library import BENCHMARK_BUILDERS

    if circuit not in BENCHMARK_BUILDERS:
        raise ValueError(f"unknown circuit '{circuit}'")
    return int(BENCHMARK_BUILDERS[circuit]().metadata.get("max_episode_steps", 50))


def rl_hyperparameters(circuit: str) -> Dict[str, object]:
    """Per-circuit episode length and PPO settings.

    The paper fixes the maximum episode length to 50 steps for the op-amp
    agent and 30 steps for the RF PA agent; zoo circuits declare theirs in
    benchmark metadata.  PPO hyper-parameters are not reported, so standard
    values tuned on this substrate are used (shared by every circuit).
    """
    return {
        "max_steps": _episode_step_budget(circuit),
        "ppo": PPOConfig(
            learning_rate=1e-3,
            clip_epsilon=0.2,
            update_epochs=4,
            minibatch_size=64,
            entropy_coef=0.01,
            value_coef=0.5,
        ),
    }
