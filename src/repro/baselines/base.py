"""Common interface and result types for the non-RL sizing baselines.

The paper compares against optimization methods (Genetic Algorithm [6],
Bayesian Optimization [5]) and a supervised-learning sizer [8].  All of them
consume the same problem definition — a circuit benchmark, a simulator, and a
target specification group — and produce a best parameter vector plus the
history of objective values versus simulation count (the Fig. 3 / Fig. 7
"# of simulation steps" curves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.env.reward import FomReward, P2SReward
from repro.simulation.base import CircuitSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.surrogate.prescreen import SurrogatePrescreener


@dataclass
class OptimizationTrace:
    """History of an optimization run (one point per simulator call)."""

    objective_values: List[float] = field(default_factory=list)
    best_values: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        self.objective_values.append(float(value))
        best_so_far = value if not self.best_values else max(self.best_values[-1], value)
        self.best_values.append(float(best_so_far))

    @property
    def num_evaluations(self) -> int:
        return len(self.objective_values)

    def best_curve(self) -> np.ndarray:
        """Monotone best-so-far curve (what Fig. 3's last column plots)."""
        return np.array(self.best_values)


@dataclass
class OptimizationResult:
    """Outcome of one optimization run.

    This is the unified result type of the :class:`repro.api.Optimizer`
    protocol: the first six fields are filled by every method, the trailing
    ``method`` / ``seed`` / ``budget`` / ``metadata`` fields carry the run
    context the :mod:`repro.api` adapters add (RL adapters stash their
    trained policy and training history under ``metadata``).
    """

    best_parameters: np.ndarray
    best_objective: float
    best_specs: Dict[str, float]
    success: bool
    num_simulations: int
    trace: OptimizationTrace
    method: str = ""
    seed: Optional[int] = None
    budget: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """JSON-serializable digest of the run (no traces, no live objects)."""
        return {
            "method": self.method,
            "best_parameters": [float(v) for v in np.asarray(self.best_parameters).ravel()],
            "best_objective": float(self.best_objective),
            "best_specs": {name: float(value) for name, value in self.best_specs.items()},
            "success": bool(self.success),
            "num_simulations": int(self.num_simulations),
            "seed": self.seed,
            "budget": self.budget,
        }


class SizingProblem:
    """Wraps benchmark + simulator + target into an objective function.

    The objective is the paper's Eq. (1) quantity ``r`` (without the goal
    bonus): zero when every specification is met, negative otherwise.  For
    FoM optimization an alternative objective built from
    :class:`~repro.env.reward.FomReward` is exposed.
    """

    def __init__(
        self,
        benchmark: CircuitBenchmark,
        simulator: CircuitSimulator,
        targets: Optional[Mapping[str, float]] = None,
        fom_reward: Optional[FomReward] = None,
        prescreener: Optional["SurrogatePrescreener"] = None,
    ) -> None:
        if targets is None and fom_reward is None:
            raise ValueError("either targets (P2S) or fom_reward (FoM) must be provided")
        self.benchmark = benchmark
        self.simulator = simulator
        self.targets = dict(targets) if targets is not None else None
        self.fom_reward = fom_reward
        self.reward_fn = P2SReward(benchmark.spec_space)
        self.trace = OptimizationTrace()
        self._evaluations = 0
        # One reusable working netlist: every evaluation overwrites the full
        # design-parameter vector, so re-using the copy is equivalent to a
        # fresh one and removes a deep netlist copy from the hot loop.
        self._netlist = benchmark.fresh_netlist()
        # Optional surrogate pre-screening of population batches.  While a
        # prescreener is attached, every exact evaluation also updates the
        # best-exact record that _build_result reports from, so the final
        # answer can never be a surrogate estimate.
        self._prescreener = prescreener
        self._best_exact: Optional[Tuple[np.ndarray, float, Dict[str, float]]] = None

    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        return self.benchmark.num_parameters

    @property
    def num_evaluations(self) -> int:
        return self._evaluations

    def simulate(self, parameters: np.ndarray) -> Dict[str, float]:
        """Evaluate a parameter vector into specs (one simulator call)."""
        self.benchmark.design_space.apply_to_netlist(self._netlist, parameters)
        result = self.simulator.simulate(self._netlist)
        self._evaluations += 1
        return dict(result.specs)

    def _score(self, specs: Mapping[str, float]) -> float:
        if self.targets is not None:
            return float(
                self.benchmark.spec_space.normalized_errors(specs, self.targets).sum()
            )
        assert self.fom_reward is not None
        fom = self.fom_reward.figure_of_merit(specs)
        # figure_of_merit degrades to NaN for spec-incomplete results; a NaN
        # fitness would win every np.argmax downstream, so score such
        # candidates as unconditionally worst instead.
        return fom if math.isfinite(fom) else -math.inf

    def objective(self, parameters: np.ndarray) -> float:
        """Scalar objective (larger is better, 0 or the FoM maximum is best)."""
        specs = self.simulate(parameters)
        value = self._score(specs)
        self.trace.record(value)
        if self._prescreener is not None and (
            self._best_exact is None or value > self._best_exact[1]
        ):
            # Strict > keeps first-row-wins ties, matching an unscreened
            # argmax over the same exact values.
            self._best_exact = (np.array(parameters, dtype=np.float64), value, dict(specs))
        return value

    def best_exact_record(self) -> Optional[Tuple[np.ndarray, float, Dict[str, float]]]:
        """Best exactly-simulated ``(parameters, objective, specs)`` so far.

        ``None`` unless surrogate pre-screening actually engaged — an
        attached-but-inactive prescreener leaves result construction bitwise
        identical to the unscreened path.
        """
        if self._prescreener is None or self._prescreener.stats.populations == 0:
            return None
        return self._best_exact

    def objective_from_unit(self, unit_parameters: np.ndarray) -> float:
        """Objective over the normalized [0, 1]^M search space."""
        parameters = self.benchmark.design_space.denormalize(unit_parameters)
        return self.objective(parameters)

    # ------------------------------------------------------------------
    # Population (batched) evaluation — the repro.parallel vector path
    # ------------------------------------------------------------------
    def objective_batch(self, parameters: np.ndarray) -> np.ndarray:
        """Objectives of a ``(P, M)`` population of candidate sizings.

        Results (values and trace entries, in row order) are identical to
        ``P`` sequential :meth:`objective` calls; wrapping the simulator in a
        :class:`repro.parallel.SimulationCache` makes duplicate rows — elites
        re-scored each generation, revisited grid points — cost one
        simulation for the whole population.
        """
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.ndim != 2 or parameters.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected a (P, {self.num_parameters}) population, "
                f"got shape {parameters.shape}"
            )
        screened = self._screened_batch(parameters)
        if screened is not None:
            return screened
        return np.array([self.objective(row) for row in parameters])

    def objective_from_unit_batch(self, unit_parameters: np.ndarray) -> np.ndarray:
        """Batched :meth:`objective_from_unit` over a ``(P, M)`` population."""
        unit_parameters = np.asarray(unit_parameters, dtype=np.float64)
        if unit_parameters.ndim != 2 or unit_parameters.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected a (P, {self.num_parameters}) population, "
                f"got shape {unit_parameters.shape}"
            )
        # One vectorized grid-denormalization for the whole population, then
        # per-candidate simulation (cache-backed when available).
        parameters = self.benchmark.design_space.denormalize(unit_parameters)
        screened = self._screened_batch(parameters)
        if screened is not None:
            return screened
        return np.array([self.objective(row) for row in parameters])

    def _screened_batch(self, parameters: np.ndarray) -> Optional[np.ndarray]:
        """Surrogate-rank the population, exactly verify the top candidates.

        Returns the optimizer-visible values — exact objectives for the
        verified top-k, surrogate estimates for the rest — or ``None`` when
        pre-screening does not apply (no/inactive prescreener, population no
        larger than the verified set, or a foreign topology), in which case
        the caller runs the plain all-exact loop.
        """
        prescreener = self._prescreener
        if prescreener is None:
            return None
        count = parameters.shape[0]
        if not prescreener.active or prescreener.num_exact(count) >= count:
            prescreener.stats.bypassed += count
            return None
        # The surrogate consumes full device-parameter vectors (the corpus
        # layout); writing each candidate into the working netlist is the
        # same design-space -> netlist mapping simulate() applies.
        full = np.stack(
            [
                self._full_parameters_for(row)
                for row in parameters
            ]
        )
        if not prescreener.matches(self._netlist.name, full.shape[1]):
            prescreener.stats.bypassed += count
            return None
        values = prescreener.predicted_objectives(full, self._score)
        top = prescreener.top_indices(values, count)
        for index in top:
            values[index] = self.objective(parameters[index])
        prescreener.stats.populations += 1
        prescreener.stats.candidates += count
        prescreener.stats.exact_verified += len(top)
        prescreener.stats.surrogate_ranked += count - len(top)
        return values

    def _full_parameters_for(self, parameters: np.ndarray) -> np.ndarray:
        self.benchmark.design_space.apply_to_netlist(self._netlist, parameters)
        return self._netlist.parameter_array()

    def is_successful(self, parameters: np.ndarray) -> bool:
        """Whether a parameter vector meets every target specification."""
        if self.targets is None:
            return False
        specs = self.simulate(parameters)
        return self.benchmark.spec_space.all_met(specs, self.targets)


class SizingOptimizer:
    """Base class for the optimization baselines."""

    name = "optimizer"

    def optimize(self, problem: SizingProblem) -> OptimizationResult:  # pragma: no cover
        raise NotImplementedError

    @staticmethod
    def _build_result(
        problem: SizingProblem, best_unit: np.ndarray, best_value: float
    ) -> OptimizationResult:
        exact = problem.best_exact_record()
        if exact is not None:
            # Pre-screening engaged: the optimizer's argmax may point at an
            # unverified surrogate estimate, so the reported answer is the
            # best *exactly simulated* candidate instead — parameters, value
            # and specs all straight from the exact simulator.
            parameters, best_value, specs = exact
            specs = dict(specs)
        else:
            parameters = problem.benchmark.design_space.denormalize(best_unit)
            specs = problem.simulate(parameters)
        if problem.targets is not None:
            success = problem.benchmark.spec_space.all_met(specs, problem.targets)
        else:
            success = True
        return OptimizationResult(
            best_parameters=parameters,
            best_objective=float(best_value),
            best_specs=specs,
            success=success,
            num_simulations=problem.num_evaluations,
            trace=problem.trace,
        )
