"""Quickstart: the unified ``repro.api`` front door in under a minute.

The whole library is driven through four calls::

    env       = repro.make_env("opamp-p2s-v0", seed=0)   # string-ID registry
    optimizer = repro.make_optimizer("bayesian")         # common protocol
    result    = optimizer.optimize(env, budget=40)       # one loop for all methods
    config    = repro.RunConfig(...)                     # serializable runs

This script walks through each of them:

1. discover every registered environment, policy and optimizer,
2. build the op-amp environment, inspect its Table 1 spaces, take a few
   random tuning actions and watch the Eq. (1) reward respond,
3. run one small optimization through the shared ``optimize()`` protocol,
4. round-trip the exact same run through a JSON ``RunConfig``.

Run with:  python examples/quickstart.py [--budget N]
"""

from __future__ import annotations

import argparse

import repro
from repro.experiments import format_table1


def main(budget: int, seed: int = 0) -> None:
    rng = repro.seed_everything(seed)
    print("=" * 72)
    print("Discovery: the component catalog")
    print("=" * 72)
    for kind, entries in repro.describe_components().items():
        print(f"  {kind}:")
        for component_id, description in entries.items():
            print(f"    {component_id:<22s} {description}")

    print()
    print("=" * 72)
    print("Table 1: benchmark circuits, design spaces, specification spaces")
    print("=" * 72)
    print(format_table1())

    print()
    print("=" * 72)
    print("Interacting with an environment built by string ID")
    print("=" * 72)
    env = repro.make_env("opamp-p2s-v0", seed=seed)
    env.reset()
    print(f"  target specs : { {k: round(v, 4) for k, v in env.target_specs.items()} }")
    print(f"  graph nodes  : {env.num_graph_nodes}, tunable parameters: {env.num_parameters}")
    for step in range(3):
        action = env.action_space.sample(rng)
        _, reward, _, info = env.step(action)
        print(f"  random action step {step + 1}: reward = {reward:+.3f}, "
              f"met {info['met_fraction']:.0%} of specs")

    policy = repro.make_policy("gcn_fc", env, rng)
    print(f"  untrained GCN-FC policy has {policy.num_parameters()} parameters")

    print()
    print("=" * 72)
    print(f"One optimization through the shared protocol (random, budget {budget})")
    print("=" * 72)
    optimizer = repro.make_optimizer("random")
    result = optimizer.optimize(env, budget=budget, seed=seed)
    print(f"  method          : {result.method}")
    print(f"  simulator calls : {result.num_simulations}")
    print(f"  best objective  : {result.best_objective:+.3f} (0 means every spec met)")
    print(f"  all specs met   : {result.success}")

    print()
    print("=" * 72)
    print("The same run as a serializable RunConfig (JSON round-trip)")
    print("=" * 72)
    config = repro.RunConfig(
        env=repro.EnvConfig("opamp-p2s-v0", {"seed": seed}),
        optimizer=repro.OptimizerConfig("random"),
        budget=budget,
        seed=seed,
        name="quickstart",
    )
    print(config.to_json())
    clone = repro.RunConfig.from_json(config.to_json())
    replay = clone.run()
    print(f"  replayed best objective: {replay.best_objective:+.3f} "
          f"(identical: {replay.best_objective == result.best_objective})")

    print()
    print("Next: examples/baselines_comparison.py runs every method through the")
    print("same optimize() loop; examples/opamp_design.py trains the RL policy.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=30,
                        help="simulator-call budget for the demo optimization")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed routed through repro.seed_everything")
    args = parser.parse_args()
    main(args.budget, args.seed)
