"""DeploymentService: routing, micro-batching, stats, and parity."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.agents.deployment import deploy_policy
from repro.serve import DeploymentService, ServeRequest


@pytest.fixture
def env():
    return repro.make_env("opamp-p2s-v0", seed=0, max_steps=8)


@pytest.fixture
def policy(env):
    return repro.make_policy("gcn_fc", env, np.random.default_rng(0))


@pytest.fixture
def targets(env):
    return env.benchmark.spec_space.sample_batch(np.random.default_rng(5), 5)


@pytest.fixture
def checkpoint_path(tmp_path, policy):
    return repro.save_checkpoint(
        tmp_path / "policy.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
    )


class TestConstruction:
    def test_from_checkpoint_uses_recorded_env_id(self, checkpoint_path):
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=2)
        assert service.env_ids == ["opamp-p2s-v0"]

    def test_env_id_override(self, checkpoint_path):
        service = DeploymentService.from_checkpoint(
            checkpoint_path, env_id="opamp-v0", batch_size=2
        )
        assert service.env_ids == ["opamp-v0"]

    def test_checkpoint_without_env_id_needs_override(self, tmp_path, policy):
        path = repro.save_checkpoint(tmp_path / "anon.npz", policy)
        with pytest.raises(repro.CheckpointError, match="env_id"):
            DeploymentService.from_checkpoint(path)
        service = DeploymentService.from_checkpoint(path, env_id="opamp-p2s-v0")
        assert service.env_ids == ["opamp-p2s-v0"]

    def test_rejects_mis_sized_policy(self, env):
        policy = repro.make_policy(
            "gcn_fc", repro.make_env("common_source_lna-p2s-v0"), np.random.default_rng(0)
        )
        service = DeploymentService()
        with pytest.raises(ValueError, match="parameters"):
            service.register_policy("opamp-p2s-v0", policy)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            DeploymentService(batch_size=0)


class TestServing:
    def test_responses_keep_request_order_and_match_sequential(
        self, env, policy, targets, checkpoint_path
    ):
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=3)
        responses = service.serve([dict(t) for t in targets])
        assert [r.index for r in responses] == list(range(len(targets)))
        # max_steps of the service envs comes from the registry default (50);
        # deploy sequentially against a matching env for the parity check.
        reference_env = repro.make_env("opamp-p2s-v0", seed=123)
        for response, target in zip(responses, targets):
            reference = deploy_policy(reference_env, policy, target)
            assert response.steps == reference.steps
            assert response.success == reference.success
            assert response.final_specs == reference.final_specs
            assert response.target_specs == dict(target)

    def test_final_parameters_named_and_on_grid(self, checkpoint_path, targets, env):
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=2)
        response = service.serve([dict(targets[0])])[0]
        names = env.benchmark.design_space.names
        assert sorted(response.final_parameters) == sorted(names)
        trajectory_final = response.result.trajectory.records[-1].parameters
        np.testing.assert_array_equal(
            [response.final_parameters[name] for name in names], trajectory_final
        )

    def test_serve_request_objects_with_max_steps(self, checkpoint_path):
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=4)
        impossible = {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12}
        responses = service.serve(
            [
                ServeRequest(target_specs=impossible, max_steps=3),
                ServeRequest(target_specs=impossible, max_steps=5),
            ]
        )
        assert [r.steps for r in responses] == [3, 5]

    def test_stats_and_cache_accumulate_across_calls(self, checkpoint_path, targets):
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=4)
        service.serve([dict(t) for t in targets[:2]])
        service.serve([dict(t) for t in targets[:2]])  # identical designs: cache hits
        stats = service.stats
        assert stats.episodes == 4
        assert stats.by_env == {"opamp-p2s-v0": 4}
        assert stats.design_steps >= 4
        assert service.cache_stats().hits > 0

    def test_unknown_env_id_is_helpful(self, checkpoint_path):
        service = DeploymentService.from_checkpoint(checkpoint_path)
        with pytest.raises(ValueError, match="opamp-p2s-v0"):
            service.serve([ServeRequest(target_specs={"gain": 1.0}, env_id="nope-v0")])

    def test_empty_service_is_helpful(self):
        with pytest.raises(ValueError, match="no registered policy"):
            DeploymentService().serve([{"gain": 1.0}])

    def test_rejects_non_mapping_request(self, checkpoint_path):
        service = DeploymentService.from_checkpoint(checkpoint_path)
        with pytest.raises(TypeError, match="ServeRequest"):
            service.serve([42])

    def test_multi_topology_routing(self, tmp_path, checkpoint_path):
        lna_env = repro.make_env("common_source_lna-p2s-v0", seed=0)
        lna_policy = repro.make_policy("gcn_fc", lna_env, np.random.default_rng(0))
        lna_path = repro.save_checkpoint(
            tmp_path / "lna.npz", lna_policy,
            policy_id="gcn_fc", env_id="common_source_lna-p2s-v0",
        )
        service = DeploymentService.from_checkpoint(checkpoint_path, batch_size=2)
        service.add_checkpoint(lna_path)
        assert service.env_ids == ["common_source_lna-p2s-v0", "opamp-p2s-v0"]
        opamp_target = {"gain": 350.0, "bandwidth": 1.8e7, "phase_margin": 55.0,
                        "power": 4e-3}
        lna_target = {"gain": 15.0, "noise_figure": 5.6, "power": 8e-3}
        responses = service.serve(
            [
                ServeRequest(target_specs=lna_target, env_id="common_source_lna-p2s-v0"),
                ServeRequest(target_specs=opamp_target),  # default env
            ]
        )
        assert responses[0].env_id == "common_source_lna-p2s-v0"
        assert responses[1].env_id == "opamp-p2s-v0"
        assert service.stats.by_env == {
            "common_source_lna-p2s-v0": 1, "opamp-p2s-v0": 1,
        }
