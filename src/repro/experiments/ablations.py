"""Ablation studies of the policy-design choices the paper motivates.

The paper's central claim is that infusing *domain knowledge* into the policy
is what closes the gap to human-level accuracy.  The knowledge enters through
three design choices, each of which this module can switch off
independently:

* ``graph_kind`` — GAT (multi-head attention) vs GCN topology modelling
  (the paper: "a better circuit topology modelling method … can further
  improve the performance of a policy");
* ``use_dynamic_node_features`` — dynamic device parameters vs the prior
  work's static technology constants as node features;
* ``use_spec_encoder`` — a dedicated FCNN branch extracting the couplings of
  specifications vs feeding the raw specification vector to the output
  layers.

Each variant is trained with the same PPO budget and evaluated on the same
deployment batch, yielding the rows of the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.agents.deployment import evaluate_deployment
from repro.agents.policy import ActorCriticPolicy, PolicyConfig
from repro.agents.ppo import PPOTrainer
from repro.experiments.configs import ExperimentScale, bench_scale, rl_hyperparameters
from repro.experiments.training import make_environment


@dataclass(frozen=True)
class AblationVariant:
    """One policy variant in the ablation sweep."""

    name: str
    use_graph: bool = True
    graph_kind: str = "gcn"
    use_spec_encoder: bool = True
    use_dynamic_node_features: bool = True


#: The default sweep: the full model, each ingredient removed in turn, and
#: the GAT upgrade.
DEFAULT_VARIANTS: Sequence[AblationVariant] = (
    AblationVariant(name="gat_fc_full", graph_kind="gat"),
    AblationVariant(name="gcn_fc_full", graph_kind="gcn"),
    AblationVariant(name="no_spec_encoder", use_spec_encoder=False),
    AblationVariant(name="static_node_features", use_dynamic_node_features=False),
    AblationVariant(name="no_graph", use_graph=False),
)


@dataclass
class AblationResult:
    """Outcome of one ablation variant."""

    variant: AblationVariant
    final_mean_reward: float
    deployment_accuracy: float
    mean_deployment_steps: float


def run_policy_ablation(
    circuit: str = "two_stage_opamp",
    variants: Sequence[AblationVariant] = DEFAULT_VARIANTS,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    total_episodes: Optional[int] = None,
) -> List[AblationResult]:
    """Train and evaluate every ablation variant under identical budgets."""
    scale = scale or bench_scale()
    hyper = rl_hyperparameters(circuit)
    episodes = total_episodes or (
        scale.opamp_training_episodes
        if circuit == "two_stage_opamp"
        else scale.rf_pa_training_episodes
    )
    results: List[AblationResult] = []
    for variant in variants:
        env = make_environment(circuit, seed=seed)
        rng = np.random.default_rng(seed)
        config = PolicyConfig(
            num_parameters=env.num_parameters,
            spec_feature_dim=env.spec_feature_dimension,
            node_feature_dim=env.node_feature_dimension,
            num_graph_nodes=env.num_graph_nodes,
            use_graph=variant.use_graph,
            graph_kind=variant.graph_kind,
            use_spec_encoder=variant.use_spec_encoder,
            use_dynamic_node_features=variant.use_dynamic_node_features,
        )
        policy = ActorCriticPolicy(config, rng)
        trainer = PPOTrainer(env, policy, config=hyper["ppo"], seed=seed, method_name=variant.name)
        history = trainer.train(
            total_episodes=episodes,
            episodes_per_update=scale.episodes_per_update,
            eval_interval=None,
        )
        evaluation = evaluate_deployment(
            env, policy, num_targets=scale.deployment_specs, seed=seed + 500
        )
        results.append(
            AblationResult(
                variant=variant,
                final_mean_reward=history.final_mean_reward,
                deployment_accuracy=evaluation.accuracy,
                mean_deployment_steps=evaluation.mean_steps,
            )
        )
    return results
