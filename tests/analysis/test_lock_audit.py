"""Unit tests for the runtime lock-audit sanitizer."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import LockAudit, LockAuditError


class Counter:
    """A miniature ServeStats: a lock plus the counters it guards."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self.by_key = {}

    def record(self, key, n):
        with self._lock:
            self.total += n
            self.by_key[key] = self.by_key.get(key, 0) + n

    def sloppy_record(self, key, n):
        self.total += n
        self.by_key[key] = self.by_key.get(key, 0) + n

    def snapshot(self):
        with self._lock:
            return {"total": self.total, "by_key": dict(self.by_key)}


class TestLockAudit:
    def test_locked_mutations_are_clean(self):
        counter = Counter()
        with LockAudit(counter) as audit:
            counter.record("a", 2)
            counter.record("b", 3)
            counter.snapshot()
        audit.assert_clean()
        assert counter.total == 5

    def test_unlocked_write_is_recorded(self):
        counter = Counter()
        with LockAudit(counter, record_reads=False) as audit:
            counter.sloppy_record("a", 2)
        violations = audit.violations
        # `self.total += n` is the attribute write; the dict mutation is a
        # subscript store (caught by read auditing, tested separately).
        assert [v.operation for v in violations] == ["write"]
        assert violations[0].attribute == "total"
        with pytest.raises(LockAuditError) as excinfo:
            audit.assert_clean()
        assert "total" in str(excinfo.value)

    def test_unlocked_container_mutation_caught_via_reads(self):
        counter = Counter()
        with LockAudit(counter, guarded=["by_key"]) as audit:
            with counter._lock:
                counter.by_key["locked"] = 1
            counter.by_key["unlocked"] = 2  # a *read* of by_key, then mutation
        violations = audit.violations
        assert violations and all(v.attribute == "by_key" for v in violations)
        assert all(v.operation == "read" for v in violations)

    def test_violation_records_thread_and_location(self):
        counter = Counter()
        audit = LockAudit(counter, record_reads=False)
        try:
            worker = threading.Thread(
                target=counter.sloppy_record, args=("a", 1), name="audit-worker"
            )
            worker.start()
            worker.join()
        finally:
            audit.uninstall()
        violation = audit.violations[0]
        assert violation.thread == "audit-worker"
        assert "sloppy_record" in violation.location
        assert "unlocked" in violation.render() or "without" in violation.render()

    def test_explicit_guarded_subset(self):
        counter = Counter()
        with LockAudit(counter, guarded=["total"], record_reads=False) as audit:
            counter.by_key["free"] = 1  # not guarded: no violation
            counter.total = 7  # guarded: violation
        assert [v.attribute for v in audit.violations] == ["total"]

    def test_uninstall_restores_class_and_lock(self):
        counter = Counter()
        original_class = type(counter)
        original_lock = counter._lock
        audit = LockAudit(counter)
        assert type(counter) is not original_class
        assert counter._lock is not original_lock
        audit.uninstall()
        assert type(counter) is original_class
        assert counter._lock is original_lock
        recorded_before = len(audit.violations)
        counter.total = 99  # no longer audited
        assert len(audit.violations) == recorded_before
        audit.uninstall()  # idempotent

    def test_reentrant_lock_holds_are_counted(self):
        class RCounter:
            def __init__(self):
                self._lock = threading.RLock()
                self.total = 0

            def bump_twice(self):
                with self._lock:
                    with self._lock:
                        self.total += 1
                    self.total += 1  # still held after inner release

        counter = RCounter()
        with LockAudit(counter) as audit:
            counter.bump_twice()
        audit.assert_clean()
        assert counter.total == 2

    def test_concurrent_locked_traffic_stays_clean(self):
        counter = Counter()
        audit = LockAudit(counter, record_reads=False)
        try:
            threads = [
                threading.Thread(target=counter.record, args=(f"k{i % 3}", 1))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            audit.uninstall()
        audit.assert_clean()
        assert counter.total == 8
