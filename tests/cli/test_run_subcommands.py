"""``python -m repro.run``: the consolidated subcommand tree.

One front door, six subcommands — each with its own ``--help`` — plus the
deprecated positional-config invocation routed through a warning shim.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import run as run_module

REPO_SRC = Path(repro.__file__).resolve().parents[1]


def run_cli(*args, timeout=300, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.run", *map(str, args)],
        capture_output=True, text=True, env=env, timeout=timeout, cwd=cwd,
    )


@pytest.fixture
def sweep_config(tmp_path):
    from repro.orchestrate import SweepConfig

    sweep = SweepConfig(
        name="help-test", optimizers=["random"], envs=["opamp-p2s-v0"],
        seeds=[0, 1], budget=4, store=str(tmp_path / "store"),
    )
    path = tmp_path / "sweep.json"
    sweep.save(path)
    return path


class TestHelp:
    def test_top_level_help_lists_every_command(self):
        for args in ([], ["--help"], ["-h"], ["help"]):
            completed = run_cli(*args)
            assert completed.returncode == 0, completed.stderr
            for command in ("sweep", "deploy", "serve", "surrogate", "analyze",
                            "yield"):
                assert command in completed.stdout

    @pytest.mark.parametrize(
        "command,marker",
        [
            ("sweep", "--workers"),
            ("deploy", "--batch-size"),
            ("serve", "--max-batch-delay-ms"),
            ("surrogate", "train"),
            ("analyze", "--strict"),
            ("yield", "--samples"),
        ],
    )
    def test_each_subcommand_has_its_own_help(self, command, marker):
        completed = run_cli(command, "--help")
        assert completed.returncode == 0, completed.stderr
        assert f"repro.run {command}" in completed.stdout
        assert marker in completed.stdout

    def test_unknown_command_is_exit_2_and_lists_commands(self):
        completed = run_cli("frobnicate")
        assert completed.returncode == 2
        assert "unknown command 'frobnicate'" in completed.stderr
        assert "sweep, deploy, serve, surrogate" in completed.stderr


class TestDispatch:
    def test_sweep_subcommand_expands_without_warning(self, sweep_config, capsys,
                                                      recwarn):
        status = run_module.main(["sweep", str(sweep_config), "--expand"])
        captured = capsys.readouterr()
        assert status == 0
        assert "2 units" in captured.out
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_legacy_positional_config_warns_and_still_works(self, sweep_config, capsys):
        with pytest.warns(DeprecationWarning, match="repro.run sweep"):
            status = run_module.main([str(sweep_config), "--expand"])
        captured = capsys.readouterr()
        assert status == 0
        assert "2 units" in captured.out

    def test_legacy_subprocess_shows_the_warning(self, sweep_config):
        completed = run_cli(sweep_config, "--expand")
        assert completed.returncode == 0, completed.stderr
        assert "DeprecationWarning" in completed.stderr
        assert "2 units" in completed.stdout

    def test_sweep_subcommand_runs_the_grid(self, sweep_config, tmp_path):
        completed = run_cli("sweep", sweep_config, "--quiet")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "2 units: 2 executed, 0 skipped" in completed.stdout
        assert "DeprecationWarning" not in completed.stderr

    def test_missing_config_under_sweep_is_exit_2(self, tmp_path):
        completed = run_cli("sweep", tmp_path / "nope.json")
        assert completed.returncode == 2
        assert "could not load sweep" in completed.stderr

    def test_bad_sweep_flag_validation(self, sweep_config, capsys):
        assert run_module.main(["sweep", str(sweep_config), "--workers", "0"]) == 2
        capsys.readouterr()

    def test_run_config_document_still_routes(self, tmp_path):
        """A single RunConfig JSON (not a grid) through the sweep subcommand."""
        config = repro.RunConfig(
            env={"id": "opamp-p2s-v0", "params": {"seed": 0, "max_steps": 6}},
            optimizer="random", budget=4, seed=1,
        )
        document = tmp_path / "run.json"
        document.write_text(config.to_json())
        completed = run_cli("sweep", document, "--store", tmp_path / "store", "--quiet")
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "1 units: 1 executed" in completed.stdout


class TestAnalyze:
    """``analyze``: the invariant lint subcommand, end to end."""

    FLAGGED = "def check(x):\n    return x == 0.5\n"
    CLEAN = "def check(x):\n    return abs(x - 0.5) < 1e-9\n"

    def test_finding_exits_1_with_rendered_report(self, tmp_path):
        target = tmp_path / "flagged.py"
        target.write_text(self.FLAGGED)
        completed = run_cli("analyze", target)
        assert completed.returncode == 1
        assert "REP-FLT01" in completed.stdout
        assert "hint:" in completed.stdout
        assert "1 finding(s)" in completed.stdout

    def test_clean_tree_exits_0(self, tmp_path):
        (tmp_path / "clean.py").write_text(self.CLEAN)
        completed = run_cli("analyze", tmp_path)
        assert completed.returncode == 0, completed.stderr
        assert "0 finding(s)" in completed.stdout

    def test_json_format_and_output_artifact(self, tmp_path):
        (tmp_path / "flagged.py").write_text(self.FLAGGED)
        report_path = tmp_path / "report.json"
        completed = run_cli(
            "analyze", tmp_path, "--format", "json", "--output", report_path
        )
        assert completed.returncode == 1
        document = json.loads(completed.stdout)
        assert document["summary"]["new"] == 1
        assert document["summary"]["by_rule"] == {"REP-FLT01": 1}
        assert json.loads(report_path.read_text()) == document

    def test_write_baseline_then_baselined_run_exits_0(self, tmp_path):
        (tmp_path / "flagged.py").write_text(self.FLAGGED)
        baseline = tmp_path / "baseline.json"
        wrote = run_cli("analyze", tmp_path, "--baseline", baseline, "--write-baseline")
        assert wrote.returncode == 0, wrote.stderr
        assert baseline.is_file()
        completed = run_cli("analyze", tmp_path, "--baseline", baseline)
        assert completed.returncode == 0, completed.stderr
        assert "1 baselined" in completed.stdout
        # A second instance of the grandfathered pattern still fails.
        (tmp_path / "flagged_again.py").write_text(self.FLAGGED)
        completed = run_cli("analyze", tmp_path, "--baseline", baseline)
        assert completed.returncode == 1

    def test_strict_ignores_the_baseline(self, tmp_path):
        (tmp_path / "flagged.py").write_text(self.FLAGGED)
        baseline = tmp_path / "baseline.json"
        run_cli("analyze", tmp_path, "--baseline", baseline, "--write-baseline")
        completed = run_cli("analyze", tmp_path, "--baseline", baseline, "--strict")
        assert completed.returncode == 1
        assert "strict" in completed.stdout

    def test_stale_baseline_entry_is_reported(self, tmp_path):
        flagged = tmp_path / "flagged.py"
        flagged.write_text(self.FLAGGED)
        baseline = tmp_path / "baseline.json"
        run_cli("analyze", tmp_path, "--baseline", baseline, "--write-baseline")
        flagged.write_text(self.CLEAN)  # pay down the debt
        completed = run_cli("analyze", tmp_path, "--baseline", baseline)
        assert completed.returncode == 0  # stale entries inform, never fail
        assert "stale baseline entry" in completed.stdout

    def test_syntax_error_exits_2(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        completed = run_cli("analyze", tmp_path)
        assert completed.returncode == 2
        assert "syntax error" in completed.stderr

    def test_missing_path_exits_2(self, tmp_path):
        completed = run_cli("analyze", tmp_path / "nope.txt")
        assert completed.returncode == 2
        assert "error:" in completed.stderr

    def test_rules_catalog_lists_every_rule(self):
        from repro.analysis import ALL_RULES

        completed = run_cli("analyze", "--rules")
        assert completed.returncode == 0
        for rule in ALL_RULES:
            assert rule.rule_id in completed.stdout

    def test_shipped_tree_passes_with_checked_in_baseline(self):
        repo_root = REPO_SRC.parent
        completed = run_cli("analyze", "src", cwd=repo_root)
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "baseline-aware" in completed.stdout


class TestYield:
    """``yield``: the Monte-Carlo PVT yield report, end to end."""

    def test_small_report_prints_table_and_writes_json(self, tmp_path):
        output = tmp_path / "yield.json"
        completed = run_cli(
            "yield", "--circuits", "current_mirror_ota", "--samples", "8",
            "--shards", "2", "--output", output,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "current_mirror_ota" in completed.stdout
        assert "yield" in completed.stdout
        document = json.loads(output.read_text())
        assert document["samples_per_circuit"] == 8
        assert document["circuits"][0]["circuit"] == "current_mirror_ota"
        assert 0 <= document["circuits"][0]["passed"] <= 8

    def test_unknown_circuit_is_exit_2(self):
        completed = run_cli("yield", "--circuits", "ring_oscillator", "--samples", "2")
        assert completed.returncode == 2
        assert "unknown circuit" in completed.stderr

    def test_bad_counts_are_exit_2(self, capsys):
        assert run_module.main(["yield", "--samples", "0"]) == 2
        capsys.readouterr()

    def test_targets_document_overrides_defaults(self, tmp_path):
        # Impossible targets force yield to zero; trivial ones force it to
        # one.  Both prove the override reaches the shard payloads.
        for gain, expected in ((1e9, 0.0), (1e-9, 1.0)):
            targets = tmp_path / f"targets_{expected}.json"
            targets.write_text(json.dumps({
                "current_mirror_ota": {
                    "gain": gain, "bandwidth": 1.0, "slew_rate": 1.0, "power": 1.0,
                }
            }))
            completed = run_cli(
                "yield", "--circuits", "current_mirror_ota", "--samples", "4",
                "--targets", targets, "--output", tmp_path / "out.json",
            )
            assert completed.returncode == 0, completed.stderr[-2000:]
            row = json.loads((tmp_path / "out.json").read_text())["circuits"][0]
            gain_passed = row["per_spec_passed"]["gain"]
            assert gain_passed == (0 if expected == 0.0 else 4)


def test_help_text_stays_in_sync_with_command_table():
    for command in run_module.COMMANDS:
        assert command in run_module._TOP_HELP
