"""``repro.surrogate`` — exact-simulation savings with an unchanged answer.

The surrogate subsystem's core claim, measured end-to-end: a population
optimizer pre-screened by a corpus-trained surrogate reaches the *identical*
final sizing (bitwise: parameters, objective and specs) while spending a
fraction of the exact simulations — the surrogate only re-orders which
candidates get verified, never replaces a verified value, and the reported
answer always comes from an exactly-simulated record.

One warm-corpus round trip:

1. run an unscreened random search through a :class:`TieredSimulator` whose
   corpus directory captures every exact simulation;
2. harvest the directory and train the ensemble surrogate on it;
3. re-run the identical search (same seed, same candidate draws) with the
   surrogate pre-screening each population down to its top quarter.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.surrogate import (
    SurrogateConfig,
    SurrogatePrescreener,
    harvest_corpus,
    train_surrogate,
)

ENV_ID = "opamp-p2s-v0"

#: Candidate evaluations per search run; all drawn before any scoring, so the
#: screened and unscreened runs see identical candidates.
BUDGET = 240

#: Fraction of each screened population that gets exact verification.
TOP_FRACTION = 0.25

#: Trained at corpus scale in a fraction of the search's own runtime.
SURROGATE_CONFIG = dict(hidden=(64, 64), epochs=400, ensemble_size=3)

SEARCH_SEED = 7


def _search(prescreen=None, surrogate_dir=None):
    env = repro.make_env(ENV_ID, seed=0, surrogate_dir=surrogate_dir)
    optimizer = repro.make_optimizer(
        "random", budget=BUDGET, stop_when_met=False, prescreen=prescreen
    )
    start = time.perf_counter()
    result = optimizer.optimize(env, seed=SEARCH_SEED)
    return result, time.perf_counter() - start


def test_prescreened_search_matches_exact_with_fewer_simulations(benchmark, tmp_path):
    """>=3x fewer exact simulations; bitwise-identical final sizing."""
    corpus = tmp_path / "corpus"

    def run():
        reference, reference_s = _search(surrogate_dir=corpus)
        dataset = harvest_corpus(corpus)
        surrogate, report = train_surrogate(
            dataset, config=SurrogateConfig(**SURROGATE_CONFIG), seed=0
        )
        prescreener = SurrogatePrescreener(surrogate, top_fraction=TOP_FRACTION)
        screened, screened_s = _search(prescreen=prescreener)
        return reference, screened, report, prescreener, reference_s, screened_s

    reference, screened, report, prescreener, reference_s, screened_s = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    # The answer is unchanged — not approximately: bitwise.
    assert np.array_equal(screened.best_parameters, reference.best_parameters)
    assert screened.best_objective == reference.best_objective
    assert screened.best_specs == reference.best_specs

    ratio = reference.num_simulations / max(screened.num_simulations, 1)
    stats = prescreener.stats
    assert stats.populations > 0, "the warm surrogate must actually screen"
    assert stats.exact_verified == screened.num_simulations

    benchmark.extra_info.update(
        {
            "env": ENV_ID,
            "budget": BUDGET,
            "top_fraction": TOP_FRACTION,
            "corpus_points": len(harvest_corpus(corpus)),
            "exact_sims_unscreened": reference.num_simulations,
            "exact_sims_prescreened": screened.num_simulations,
            "exact_sim_ratio": round(ratio, 2),
            "surrogate_val_error_mean": round(report.val_error_mean, 4),
            "unscreened_s": round(reference_s, 4),
            "prescreened_s": round(screened_s, 4),
        }
    )
    # Measured 4.0x at these budgets (240 candidates -> 60 verified); the
    # acceptance gate is >=3x.
    assert ratio >= 3.0, (
        f"pre-screening saved too little: {reference.num_simulations} exact "
        f"simulations unscreened vs {screened.num_simulations} screened "
        f"({ratio:.2f}x, expected >= 3x)"
    )
