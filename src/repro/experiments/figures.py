"""Optimization-baseline curves (Fig. 3, last column; also used by Fig. 7).

The last column of Fig. 3 plots, for one target specification group, the
Eq. (1) reward of the Genetic Algorithm and Bayesian Optimization against the
number of simulator calls; the paper observes GA needs roughly 400 and BO
roughly 100 simulations to converge (versus ~20 deployment steps for the
trained RL policies), and that neither reaches 100 % design accuracy over
repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.baselines.base import OptimizationResult, SizingProblem
from repro.baselines.bayesian import BayesianOptimization, BayesianOptimizationConfig
from repro.baselines.genetic import GeneticAlgorithm, GeneticAlgorithmConfig
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.circuits.library.rf_pa import build_rf_pa
from repro.circuits.library.two_stage_opamp import build_two_stage_opamp
from repro.experiments.configs import ExperimentScale, bench_scale
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.pa_sim import RfPaFineSimulator

#: Optimizer names shown in the Fig. 3 last-column legend.
OPTIMIZER_METHODS = ("genetic_algorithm", "bayesian_optimization")


def _benchmark_and_simulator(circuit: str):
    if circuit == "two_stage_opamp":
        return build_two_stage_opamp(), OpAmpSimulator()
    if circuit == "rf_pa":
        # The optimization baselines "cannot leverage transfer learning and
        # have to use HB simulation" (paper) — always the fine simulator.
        return build_rf_pa(), RfPaFineSimulator()
    raise ValueError(f"unknown circuit '{circuit}'")


def make_optimizer(name: str, seed: Optional[int] = None, budget: Optional[int] = None):
    """Instantiate one optimization baseline with a roughly equal budget."""
    if name == "genetic_algorithm":
        config = GeneticAlgorithmConfig()
        if budget is not None:
            config.num_generations = max(2, budget // config.population_size)
        return GeneticAlgorithm(config, seed=seed)
    if name == "bayesian_optimization":
        config = BayesianOptimizationConfig()
        if budget is not None:
            config.num_iterations = max(2, budget - config.num_initial)
        return BayesianOptimization(config, seed=seed)
    if name == "random_search":
        config = RandomSearchConfig()
        if budget is not None:
            config.num_samples = budget
        return RandomSearch(config, seed=seed)
    raise ValueError(f"unknown optimizer '{name}'")


@dataclass
class OptimizationCurve:
    """Best-objective-so-far curve of one optimizer on one target group."""

    method: str
    circuit: str
    target_specs: Dict[str, float]
    result: OptimizationResult

    @property
    def num_simulations(self) -> int:
        return self.result.num_simulations

    @property
    def success(self) -> bool:
        return self.result.success

    def curve(self) -> np.ndarray:
        return self.result.trace.best_curve()


def run_optimization_curves(
    circuit: str,
    target: Optional[Mapping[str, float]] = None,
    methods: Sequence[str] = OPTIMIZER_METHODS,
    seed: int = 0,
    ga_budget: Optional[int] = None,
    bo_budget: Optional[int] = None,
) -> Dict[str, OptimizationCurve]:
    """Run the GA / BO searches for one target group (Fig. 3, last column)."""
    benchmark, simulator = _benchmark_and_simulator(circuit)
    if target is None:
        target = benchmark.spec_space.sample(np.random.default_rng(seed))
    budgets = {"genetic_algorithm": ga_budget, "bayesian_optimization": bo_budget, "random_search": None}
    curves: Dict[str, OptimizationCurve] = {}
    for method in methods:
        problem = SizingProblem(benchmark, simulator, targets=target)
        optimizer = make_optimizer(method, seed=seed, budget=budgets.get(method))
        result = optimizer.optimize(problem)
        curves[method] = OptimizationCurve(
            method=method, circuit=circuit, target_specs=dict(target), result=result
        )
    return curves


@dataclass
class OptimizerAccuracy:
    """Design accuracy and simulation-count statistics over repeated runs."""

    method: str
    circuit: str
    accuracy: float
    mean_simulations: float
    results: List[OptimizationCurve] = field(default_factory=list)


def evaluate_optimizer_accuracy(
    circuit: str,
    method: str,
    num_runs: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> OptimizerAccuracy:
    """Repeat an optimizer over random target groups (the "30-group random
    experiments" behind the GA/BO accuracy numbers in Sec. 4 / Table 2)."""
    scale = scale or bench_scale()
    num_runs = num_runs or scale.optimizer_runs
    benchmark, simulator = _benchmark_and_simulator(circuit)
    rng = np.random.default_rng(seed)
    targets = benchmark.spec_space.sample_batch(rng, num_runs)
    runs: List[OptimizationCurve] = []
    for index, target in enumerate(targets):
        problem = SizingProblem(benchmark, simulator, targets=target)
        optimizer = make_optimizer(method, seed=seed + index)
        result = optimizer.optimize(problem)
        runs.append(
            OptimizationCurve(method=method, circuit=circuit, target_specs=dict(target), result=result)
        )
    accuracy = float(np.mean([run.success for run in runs]))
    mean_simulations = float(np.mean([run.num_simulations for run in runs]))
    return OptimizerAccuracy(
        method=method, circuit=circuit, accuracy=accuracy,
        mean_simulations=mean_simulations, results=runs,
    )
