"""Keyed cache of compiled plans with config-snapshot invalidation.

Plans are expensive to build (tracing + a build-time parity probe) and
cheap to replay, so they are cached per signature key — e.g.
``("env", benchmark_name, num_envs)`` — alongside a *config snapshot*: a
plain tuple of every configuration value the plan baked in at trace time.
``get_or_build`` revalidates the snapshot on every lookup and transparently
rebuilds when it drifts (someone mutated ``reward_fn.goal_bonus``, swapped
the simulator, resized the cache, ...), so a stale plan can never be
replayed against a configuration it was not traced for.

Build failures (:class:`~repro.compile.errors.UntraceableError`) are cached
too — as *negative* entries keyed on the same snapshot — so a permanently
untraceable configuration does not pay the failed trace on every step.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from repro.compile.errors import UntraceableError

DEFAULT_PLAN_CACHE_SIZE = 32


@dataclass
class PlanCacheStats:
    """Counters describing plan-cache behaviour (useful in tests/benchmarks)."""

    hits: int = 0
    misses: int = 0
    failures: int = 0
    invalidations: int = 0
    evictions: int = 0


@dataclass
class _Entry:
    config: Any
    plan: Optional[Any]
    failure: Optional[str] = None


@dataclass
class PlanCache:
    """LRU cache mapping signature keys to compiled plans.

    Parameters
    ----------
    max_entries:
        Maximum number of cached plans (LRU eviction beyond this).
    """

    max_entries: int = DEFAULT_PLAN_CACHE_SIZE
    stats: PlanCacheStats = field(default_factory=PlanCacheStats)
    _entries: "OrderedDict[Hashable, _Entry]" = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(
        self,
        key: Hashable,
        builder: Callable[[], Any],
        config: Any = None,
    ) -> Optional[Any]:
        """Return the cached plan for ``key``, building it on first use.

        ``config`` is the caller's current configuration snapshot; a cached
        entry whose snapshot differs is invalidated and rebuilt.  Returns
        ``None`` when the builder raised :class:`UntraceableError` (the
        failure is cached; see :meth:`failure_reason`).
        """
        entry = self._entries.get(key)
        if entry is not None:
            if entry.config == config:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry.plan
            self.stats.invalidations += 1
            del self._entries[key]
        self.stats.misses += 1
        try:
            plan = builder()
        except UntraceableError as error:
            self.stats.failures += 1
            self._store(key, _Entry(config=config, plan=None, failure=error.reason))
            return None
        self._store(key, _Entry(config=config, plan=plan))
        return plan

    def failure_reason(self, key: Hashable) -> Optional[str]:
        """Reason the last build for ``key`` failed, or ``None``."""
        entry = self._entries.get(key)
        return None if entry is None else entry.failure

    def invalidate(self, key: Hashable) -> bool:
        """Drop the entry for ``key`` (if present).  Returns True if dropped."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def _store(self, key: Hashable, entry: _Entry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
