"""Cross-topology transfer: weight-transfer primitive and matrix harness."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.agents.transfer import transfer_policy_parameters
from repro.experiments import ZOO_TRANSFER_CIRCUITS, run_transfer_matrix, smoke_scale
from repro.experiments.training import CIRCUIT_ENV_IDS


class TestTransferPolicyParameters:
    def _policies(self):
        source_env = repro.make_env("opamp-p2s-v0", seed=0)
        target_env = repro.make_env("folded_cascode-p2s-v0", seed=0)
        source = repro.make_policy("gcn_fc", source_env, np.random.default_rng(0))
        target = repro.make_policy("gcn_fc", target_env, np.random.default_rng(1))
        return source, target

    def test_graph_branch_transfers_across_topologies(self):
        source, target = self._policies()
        copied = transfer_policy_parameters(source, target)
        assert any("graph_encoder" in name for name in copied)
        source_state = source.state_dict()
        for name in copied:
            value = dict(target.named_parameters())[name].data
            assert np.array_equal(value, source_state[name])

    def test_shape_mismatched_heads_keep_initialization(self):
        source, target = self._policies()
        before = {
            name: parameter.data.copy() for name, parameter in target.named_parameters()
        }
        copied = set(transfer_policy_parameters(source, target))
        for name, parameter in target.named_parameters():
            if name not in copied:
                assert np.array_equal(parameter.data, before[name])

    def test_identical_topologies_transfer_everything(self):
        env = repro.make_env("folded_cascode-p2s-v0", seed=0)
        source = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
        target = repro.make_policy("gcn_fc", env, np.random.default_rng(1))
        copied = transfer_policy_parameters(source, target)
        assert len(copied) == len(list(target.named_parameters()))


class TestTransferMatrix:
    def test_zoo_matrix_covers_four_topologies(self):
        assert len(ZOO_TRANSFER_CIRCUITS) == 4
        for circuit in ZOO_TRANSFER_CIRCUITS:
            assert circuit in CIRCUIT_ENV_IDS

    def test_smoke_matrix_run(self):
        matrix = run_transfer_matrix(
            circuits=("two_stage_opamp", "common_source_lna"),
            method="gcn_fc",
            scale=smoke_scale(),
            seed=0,
            fine_tune_episodes=4,
            include_scratch=True,
            eval_targets=2,
        )
        assert len(matrix.cells) == 2
        for cell in matrix.cells:
            assert cell.num_transferred > 0
            assert 0.0 < cell.transferred_fraction <= 1.0
            assert 0.0 <= cell.accuracy <= 1.0
            assert cell.scratch_accuracy is not None
            assert cell.transfer_gain is not None
        text = matrix.as_text()
        assert "two_stage_opamp" in text and "common_source_lna" in text
        assert matrix.cell("two_stage_opamp", "common_source_lna").target == (
            "common_source_lna"
        )
        with pytest.raises(KeyError):
            matrix.cell("two_stage_opamp", "rf_pa")

    def test_zero_shot_matrix_skips_fine_tuning(self):
        matrix = run_transfer_matrix(
            circuits=("two_stage_opamp", "common_source_lna"),
            method="baseline_a",
            scale=smoke_scale(),
            seed=0,
            fine_tune_episodes=0,
            eval_targets=2,
        )
        for cell in matrix.cells:
            assert cell.scratch_accuracy is None
            assert cell.transfer_gain is None

    def test_requires_two_circuits(self):
        with pytest.raises(ValueError):
            run_transfer_matrix(circuits=("two_stage_opamp",), scale=smoke_scale())

    def test_workers2_matches_workers1(self):
        kwargs = dict(
            circuits=("two_stage_opamp", "common_source_lna"),
            method="baseline_a",
            scale=smoke_scale(),
            seed=0,
            fine_tune_episodes=0,
            eval_targets=2,
        )
        sequential = run_transfer_matrix(workers=1, **kwargs)
        parallel = run_transfer_matrix(workers=2, **kwargs)
        assert sequential.source_accuracies == parallel.source_accuracies
        assert [(c.source, c.target, c.accuracy, c.mean_steps) for c in sequential.cells] \
            == [(c.source, c.target, c.accuracy, c.mean_steps) for c in parallel.cells]

    def test_store_resumes_rows_without_retraining(self, tmp_path, monkeypatch):
        kwargs = dict(
            circuits=("two_stage_opamp", "common_source_lna"),
            method="baseline_a",
            scale=smoke_scale(),
            seed=0,
            fine_tune_episodes=0,
            eval_targets=2,
            store=tmp_path / "matrix_store",
        )
        first = run_transfer_matrix(**kwargs)
        # Sabotage the row runner: if any row re-executed, the rerun fails —
        # passing proves every row was served from the artifact store.
        import repro.experiments.transfer_matrix as tm

        def boom(arguments):
            raise AssertionError("row re-executed despite stored artifact")

        monkeypatch.setattr(tm, "transfer_source_unit", boom)
        second = run_transfer_matrix(**kwargs)
        assert second.source_accuracies == first.source_accuracies
        assert [c.accuracy for c in second.cells] == [c.accuracy for c in first.cells]
