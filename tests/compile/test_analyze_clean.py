"""The compiled-execution subsystem must satisfy the invariant lint rules.

``repro.compile`` is the determinism-critical core of the compiled path —
plans are replayed thousands of times per episode, so a global-RNG call or
an unannotated exact float comparison there would be a reproducibility bug,
not a style nit.  Unlike the tree-wide check in ``tests/analysis``, this one
allows no baseline: the subsystem starts clean and stays clean.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_compile_subsystem_is_lint_clean(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    report = analyze_paths(["src/repro/compile"])
    assert report.errors == []
    assert report.files >= 6  # the whole subsystem was scanned
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"repro.compile must stay lint-clean:\n{rendered}"
