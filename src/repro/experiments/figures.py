"""Optimization-baseline curves (Fig. 3, last column; also used by Fig. 7).

The last column of Fig. 3 plots, for one target specification group, the
Eq. (1) reward of the Genetic Algorithm and Bayesian Optimization against the
number of simulator calls; the paper observes GA needs roughly 400 and BO
roughly 100 simulations to converge (versus ~20 deployment steps for the
trained RL policies), and that neither reaches 100 % design accuracy over
repeated runs.

All runs route through the common :class:`repro.api.Optimizer` protocol, so
any registered optimizer ID works as a ``methods`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.api.catalog import OPTIMIZERS, make_env
from repro.api.catalog import make_optimizer as _api_make_optimizer
from repro.baselines.base import OptimizationResult
from repro.experiments.configs import ExperimentScale, bench_scale
from repro.experiments.training import CIRCUIT_ENV_IDS

#: Optimizer names shown in the Fig. 3 last-column legend (registry aliases
#: of ``"genetic"`` and ``"bayesian"``).
OPTIMIZER_METHODS = ("genetic_algorithm", "bayesian_optimization")

#: The optimization baselines "cannot leverage transfer learning and have to
#: use HB simulation" (paper) — the RF PA always uses the fine simulator.
SEARCH_ENV_IDS = {circuit: ids["fine"] for circuit, ids in CIRCUIT_ENV_IDS.items()}


def _circuit_env(circuit: str, seed: Optional[int] = None):
    if circuit not in SEARCH_ENV_IDS:
        raise ValueError(f"unknown circuit '{circuit}', expected one of {sorted(SEARCH_ENV_IDS)}")
    return make_env(SEARCH_ENV_IDS[circuit], seed=seed)


def make_optimizer(name: str, seed: Optional[int] = None, budget: Optional[int] = None):
    """Deprecated: use ``repro.make_optimizer(name, seed=..., budget=...)``.

    Returns the raw :class:`repro.baselines.base.SizingOptimizer` the old
    API produced (the new protocol adapters wrap the same object).
    """
    from repro.api.deprecation import warn_deprecated

    warn_deprecated(
        "repro.experiments.make_optimizer", "repro.make_optimizer(name, seed=..., budget=...)"
    )
    adapter = _api_make_optimizer(name, seed=seed, budget=budget)
    if not hasattr(adapter, "build_search"):
        raise ValueError(
            f"'{name}' is not a direct-search optimizer; use repro.make_optimizer instead"
        )
    return adapter.build_search()


@dataclass
class OptimizationCurve:
    """Best-objective-so-far curve of one optimizer on one target group."""

    method: str
    circuit: str
    target_specs: Dict[str, float]
    result: OptimizationResult

    @property
    def num_simulations(self) -> int:
        return self.result.num_simulations

    @property
    def success(self) -> bool:
        return self.result.success

    def curve(self) -> np.ndarray:
        return self.result.trace.best_curve()


def run_optimization_curves(
    circuit: str,
    target: Optional[Mapping[str, float]] = None,
    methods: Sequence[str] = OPTIMIZER_METHODS,
    seed: int = 0,
    ga_budget: Optional[int] = None,
    bo_budget: Optional[int] = None,
) -> Dict[str, OptimizationCurve]:
    """Run the GA / BO searches for one target group (Fig. 3, last column)."""
    env = _circuit_env(circuit, seed=seed)
    if target is None:
        target = env.benchmark.spec_space.sample(np.random.default_rng(seed))
    # Keyed by canonical registry ID so alias method names share the budget.
    budgets = {"genetic": ga_budget, "bayesian": bo_budget}
    curves: Dict[str, OptimizationCurve] = {}
    for method in methods:
        optimizer = _api_make_optimizer(method)
        result = optimizer.optimize(
            env, budget=budgets.get(OPTIMIZERS.resolve(method)), seed=seed, target_specs=target
        )
        curves[method] = OptimizationCurve(
            method=method, circuit=circuit, target_specs=dict(target), result=result
        )
    return curves


@dataclass
class OptimizerAccuracy:
    """Design accuracy and simulation-count statistics over repeated runs."""

    method: str
    circuit: str
    accuracy: float
    mean_simulations: float
    results: List[OptimizationCurve] = field(default_factory=list)


def evaluate_optimizer_accuracy(
    circuit: str,
    method: str,
    num_runs: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> OptimizerAccuracy:
    """Repeat an optimizer over random target groups (the "30-group random
    experiments" behind the GA/BO accuracy numbers in Sec. 4 / Table 2)."""
    scale = scale or bench_scale()
    num_runs = num_runs or scale.optimizer_runs
    env = _circuit_env(circuit, seed=seed)
    rng = np.random.default_rng(seed)
    targets = env.benchmark.spec_space.sample_batch(rng, num_runs)
    runs: List[OptimizationCurve] = []
    for index, target in enumerate(targets):
        optimizer = _api_make_optimizer(method)
        result = optimizer.optimize(env, seed=seed + index, target_specs=target)
        runs.append(
            OptimizationCurve(
                method=method, circuit=circuit, target_specs=dict(target), result=result
            )
        )
    accuracy = float(np.mean([run.success for run in runs]))
    mean_simulations = float(np.mean([run.num_simulations for run in runs]))
    return OptimizerAccuracy(
        method=method, circuit=circuit, accuracy=accuracy,
        mean_simulations=mean_simulations, results=runs,
    )
