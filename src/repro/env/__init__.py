"""The circuit design environment: reward, data processing, and episode loop."""

from repro.env.circuit_env import CircuitDesignEnv, EpisodeTrajectory, StepRecord
from repro.env.data_processor import DataProcessor
from repro.env.registry import make_opamp_env, make_rf_pa_env, make_rf_pa_fom_env
from repro.env.reward import GOAL_BONUS, FomReward, P2SReward, RewardOutcome
from repro.env.spaces import (
    ACTION_DECREASE,
    ACTION_INCREASE,
    ACTION_KEEP,
    NUM_ACTION_CHOICES,
    ActionSpace,
    Observation,
)

__all__ = [
    "ACTION_DECREASE",
    "ACTION_INCREASE",
    "ACTION_KEEP",
    "ActionSpace",
    "CircuitDesignEnv",
    "DataProcessor",
    "EpisodeTrajectory",
    "FomReward",
    "GOAL_BONUS",
    "NUM_ACTION_CHOICES",
    "Observation",
    "P2SReward",
    "RewardOutcome",
    "StepRecord",
    "make_opamp_env",
    "make_rf_pa_env",
    "make_rf_pa_fom_env",
]
