"""Tests for policy deployment and design-accuracy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.deployment import deploy_policy, deploy_policy_batch, evaluate_deployment
from repro.parallel import VectorCircuitEnv
from repro import make_env, make_policy


@pytest.fixture
def env():
    return make_env("opamp-p2s-v0", seed=0, max_steps=10)


@pytest.fixture
def policy(env):
    return make_policy("gcn_fc", env, np.random.default_rng(0))


class TestDeployPolicy:
    def test_returns_trajectory_and_final_specs(self, env, policy):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        result = deploy_policy(env, policy, target, rng=np.random.default_rng(0))
        assert result.target_specs == target
        assert 1 <= result.steps <= env.max_steps
        assert result.trajectory.length == result.steps
        assert set(result.final_specs) == {"gain", "bandwidth", "phase_margin", "power"}

    def test_success_on_trivial_target(self, env, policy):
        trivial = {"gain": 1.1, "bandwidth": 1.0, "phase_margin": 0.0, "power": 10.0}
        result = deploy_policy(env, policy, trivial, rng=np.random.default_rng(0))
        assert result.success
        assert result.steps == 1

    def test_max_steps_override_is_restored(self, env, policy):
        target = {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12}
        result = deploy_policy(env, policy, target, max_steps=3, rng=np.random.default_rng(0))
        assert result.steps == 3
        assert env.max_steps == 10

    def test_deterministic_deployment_is_reproducible(self, env, policy):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        first = deploy_policy(env, policy, target, deterministic=True)
        second = deploy_policy(env, policy, target, deterministic=True)
        assert first.steps == second.steps
        assert first.final_specs == second.final_specs


class TestInferenceFastPath:
    def test_inference_and_grad_paths_deploy_identically(self, env, policy):
        targets = env.benchmark.spec_space.sample_batch(np.random.default_rng(9), 3)
        for target in targets:
            grad = deploy_policy(env, policy, target, inference=False)
            fast = deploy_policy(env, policy, target)
            assert grad.steps == fast.steps
            assert grad.success == fast.success
            assert grad.final_specs == fast.final_specs
            for record_a, record_b in zip(
                grad.trajectory.records, fast.trajectory.records
            ):
                np.testing.assert_array_equal(record_a.parameters, record_b.parameters)

    def test_stochastic_paths_share_the_rng_stream(self, env, policy):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        grad = deploy_policy(
            env, policy, target, deterministic=False,
            rng=np.random.default_rng(4), inference=False,
        )
        fast = deploy_policy(
            env, policy, target, deterministic=False, rng=np.random.default_rng(4)
        )
        assert grad.steps == fast.steps
        for record_a, record_b in zip(grad.trajectory.records, fast.trajectory.records):
            np.testing.assert_array_equal(record_a.parameters, record_b.parameters)


class TestDeployPolicyBatch:
    @pytest.mark.parametrize("policy_id", ["gcn_fc", "gat_fc", "baseline_a", "baseline_b"])
    def test_batched_results_identical_to_sequential(self, env, policy_id):
        policy = make_policy(policy_id, env, np.random.default_rng(1))
        targets = env.benchmark.spec_space.sample_batch(np.random.default_rng(2), 5)
        sequential = [deploy_policy(env, policy, target) for target in targets]
        vector_env = VectorCircuitEnv.from_env(env, num_envs=3, autoreset=False)
        batched = deploy_policy_batch(vector_env, policy, targets)
        assert len(batched) == len(sequential)
        for a, b in zip(sequential, batched):
            assert a.steps == b.steps
            assert a.success == b.success
            assert a.final_specs == b.final_specs
            assert a.target_specs == b.target_specs
            for record_a, record_b in zip(a.trajectory.records, b.trajectory.records):
                np.testing.assert_array_equal(record_a.parameters, record_b.parameters)
                assert record_a.specs == record_b.specs

    def test_batch_wider_than_targets(self, env, policy):
        targets = env.benchmark.spec_space.sample_batch(np.random.default_rng(2), 2)
        vector_env = VectorCircuitEnv.from_env(env, num_envs=6, autoreset=False)
        results = deploy_policy_batch(vector_env, policy, targets)
        assert [r.steps for r in results] == [
            deploy_policy(env, policy, t).steps for t in targets
        ]

    def test_max_steps_override_restored(self, env, policy):
        vector_env = VectorCircuitEnv.from_env(env, num_envs=2, autoreset=False)
        target = {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12}
        results = deploy_policy_batch(vector_env, policy, [target, target], max_steps=3)
        assert [r.steps for r in results] == [3, 3]
        assert all(sub.max_steps == env.max_steps for sub in vector_env.envs)

    def test_rejects_non_vector_env(self, env, policy):
        with pytest.raises(TypeError, match="VectorCircuitEnv"):
            deploy_policy_batch(env, policy, [{"gain": 1.0}])


class TestEvaluateDeployment:
    def test_accuracy_and_steps_statistics(self, env, policy):
        evaluation = evaluate_deployment(env, policy, num_targets=5, seed=42)
        assert evaluation.num_targets == 5
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert 1.0 <= evaluation.mean_steps <= env.max_steps

    def test_same_seed_gives_same_targets(self, env, policy):
        first = evaluate_deployment(env, policy, num_targets=4, seed=7)
        second = evaluate_deployment(env, policy, num_targets=4, seed=7)
        assert [r.target_specs for r in first.results] == [r.target_specs for r in second.results]

    def test_explicit_target_list(self, env, policy):
        targets = [
            {"gain": 1.1, "bandwidth": 1.0, "phase_margin": 0.0, "power": 10.0},
            {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12},
        ]
        evaluation = evaluate_deployment(env, policy, targets=targets)
        assert evaluation.num_targets == 2
        assert evaluation.results[0].success
        assert not evaluation.results[1].success
        assert evaluation.accuracy == pytest.approx(0.5)
        assert evaluation.mean_successful_steps == pytest.approx(1.0)

    def test_batched_evaluation_matches_sequential(self, env, policy):
        sequential = evaluate_deployment(env, policy, num_targets=6, seed=11)
        batched = evaluate_deployment(env, policy, num_targets=6, seed=11, batch_size=4)
        assert batched.accuracy == sequential.accuracy
        assert batched.mean_steps == sequential.mean_steps
        assert [r.steps for r in batched.results] == [r.steps for r in sequential.results]
        assert [r.target_specs for r in batched.results] == [
            r.target_specs for r in sequential.results
        ]

    def test_batched_evaluation_is_seed_reproducible_for_random_starts(self):
        env = make_env("opamp-p2s-v0", seed=0, max_steps=6, initial_sizing="random")
        policy = make_policy("baseline_a", env, np.random.default_rng(0))
        first = evaluate_deployment(env, policy, num_targets=5, seed=13, batch_size=3)
        second = evaluate_deployment(env, policy, num_targets=5, seed=13, batch_size=3)
        assert [r.steps for r in first.results] == [r.steps for r in second.results]
        assert [r.final_specs for r in first.results] == [
            r.final_specs for r in second.results
        ]

    def test_batched_evaluation_rejects_grad_path(self, env, policy):
        with pytest.raises(ValueError, match="grad-free"):
            evaluate_deployment(env, policy, num_targets=4, batch_size=4, inference=False)

    def test_empty_evaluation_degenerate_values(self):
        from repro.agents.deployment import DeploymentEvaluation

        empty = DeploymentEvaluation()
        assert empty.accuracy == 0.0
        assert empty.mean_steps == 0.0
        assert np.isnan(empty.mean_successful_steps)
