"""repro — domain knowledge-infused RL for analog/RF circuit sizing.

A from-scratch reproduction of "Domain Knowledge-Infused Deep Learning for
Automated Analog/Radio-Frequency Circuit Parameter Optimization" (DAC 2022).

Quickstart (the :mod:`repro.api` front door)
--------------------------------------------
>>> import repro
>>> env = repro.make_env("opamp-p2s-v0", seed=0)
>>> optimizer = repro.make_optimizer("bayesian")
>>> result = optimizer.optimize(env, budget=60, seed=0)
>>> result.success, result.num_simulations          # doctest: +SKIP

Discovery: :func:`repro.list_envs`, :func:`repro.list_policies`,
:func:`repro.list_optimizers`.  Serializable runs: :class:`repro.RunConfig`.

Package map
-----------
``repro.api``         string-ID registry, Optimizer protocol, run configs
``repro.nn``          numpy autograd, dense/graph layers, Adam, distributions
``repro.circuits``    devices, netlists, design spaces, spec spaces, benchmarks
``repro.graph``       circuit-topology graphs and node features
``repro.simulation``  technology models, MNA mini-SPICE, op-amp / PA evaluators
``repro.env``         the P2S / FoM circuit design environment
``repro.parallel``    vectorized env batches and simulation caching
``repro.orchestrate`` process-parallel sweeps, artifact store, resumable runs
``repro.agents``      GNN-FC multimodal policy, PPO, deployment, checkpoints
``repro.serve``       micro-batched deployment service over checkpoints
``repro.surrogate``   learned simulation tier with trust-gated exact fallback
``repro.baselines``   genetic algorithm, Bayesian optimization, SL sizer
``repro.experiments`` harnesses regenerating every paper table and figure
"""

from repro.api import (
    EnvConfig,
    OptimizationCallback,
    OptimizationResult,
    Optimizer,
    OptimizerConfig,
    RunConfig,
    UnknownComponentError,
    describe_components,
    list_envs,
    list_optimizers,
    list_policies,
    make_env,
    make_optimizer,
    make_policy,
    register_env,
    register_optimizer,
    register_policy,
    seed_everything,
)

# Legacy entry points: importable for backward compatibility; calling the
# factory functions emits a DeprecationWarning (see repro.api for the
# replacements).
from repro.agents import (
    CheckpointError,
    PolicyCheckpoint,
    PPOConfig,
    PPOTrainer,
    deploy_policy,
    deploy_policy_batch,
    evaluate_deployment,
    load_checkpoint,
    make_baseline_a_policy,
    make_baseline_b_policy,
    make_gat_fc_policy,
    make_gcn_fc_policy,
    save_checkpoint,
)
from repro.circuits import (
    build_common_source_lna,
    build_current_mirror_ota,
    build_folded_cascode,
    build_rf_pa,
    build_two_stage_opamp,
)
from repro.env import make_opamp_env, make_rf_pa_env, make_rf_pa_fom_env
from repro.nn import inference_mode
from repro.orchestrate import ArtifactStore, SweepConfig, SweepResult, run_sweep
from repro.parallel import DiskSimulationCache, SimulationCache, VectorCircuitEnv
from repro.serve import DeploymentService, Gateway, ServeRequest, ServeResponse
from repro.surrogate import (
    SpecSurrogate,
    SurrogatePrescreener,
    TieredSimulator,
    harvest_corpus,
    load_surrogate,
    save_surrogate,
    train_surrogate,
)

__version__ = "1.5.0"

__all__ = [
    "ArtifactStore",
    "CheckpointError",
    "DeploymentService",
    "DiskSimulationCache",
    "EnvConfig",
    "Gateway",
    "OptimizationCallback",
    "OptimizationResult",
    "Optimizer",
    "OptimizerConfig",
    "PPOConfig",
    "PPOTrainer",
    "PolicyCheckpoint",
    "RunConfig",
    "ServeRequest",
    "ServeResponse",
    "SimulationCache",
    "SpecSurrogate",
    "SurrogatePrescreener",
    "SweepConfig",
    "SweepResult",
    "TieredSimulator",
    "UnknownComponentError",
    "VectorCircuitEnv",
    "__version__",
    "build_common_source_lna",
    "build_current_mirror_ota",
    "build_folded_cascode",
    "build_rf_pa",
    "build_two_stage_opamp",
    "deploy_policy",
    "deploy_policy_batch",
    "describe_components",
    "evaluate_deployment",
    "harvest_corpus",
    "inference_mode",
    "list_envs",
    "load_checkpoint",
    "load_surrogate",
    "list_optimizers",
    "list_policies",
    "make_baseline_a_policy",
    "make_baseline_b_policy",
    "make_env",
    "make_gat_fc_policy",
    "make_gcn_fc_policy",
    "make_opamp_env",
    "make_optimizer",
    "make_policy",
    "make_rf_pa_env",
    "make_rf_pa_fom_env",
    "register_env",
    "register_optimizer",
    "register_policy",
    "run_sweep",
    "save_checkpoint",
    "save_surrogate",
    "seed_everything",
    "train_surrogate",
]
