"""The ``python -m repro.run surrogate`` train/eval subcommands."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.parallel.disk_cache import entry_path, write_disk_entry
from repro.run import main as run_main
from repro.simulation.base import SimulationResult
from repro.surrogate import load_surrogate
from repro.surrogate.cli import main_surrogate


@pytest.fixture
def corpus(tmp_path):
    """A smooth 60-point corpus an 8x8 ensemble learns quickly."""
    directory = tmp_path / "corpus"
    directory.mkdir()
    rng = np.random.default_rng(0)
    for index in range(60):
        x = rng.uniform(-1.0, 1.0, size=2)
        result = SimulationResult(
            specs={"gain": float(x[0] + 0.5 * x[1]), "power": float(x[0] * x[1])},
            details={},
            valid=True,
        )
        write_disk_entry(
            entry_path(directory, f"key-{index}".encode()), result,
            circuit="lna", parameters=x,
        )
    return directory


FAST_TRAIN = ["--epochs", "120", "--hidden", "8", "8", "--ensemble", "2"]


class TestTrain:
    def test_trains_and_writes_a_loadable_model(self, corpus, tmp_path, capsys):
        model = tmp_path / "model.npz"
        code = main_surrogate(["train", str(corpus), str(model), *FAST_TRAIN])
        assert code == 0
        out = capsys.readouterr().out
        assert "trained 'lna' surrogate" in out and str(model) in out
        restored = load_surrogate(model)
        assert restored.circuit == "lna" and restored.is_trained

    def test_json_report(self, corpus, tmp_path, capsys):
        model = tmp_path / "model.npz"
        code = main_surrogate(["train", str(corpus), str(model), "--json", *FAST_TRAIN])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["circuit"] == "lna"
        assert report["num_train"] + report["num_val"] == report["num_points"] == 60
        assert report["corpus"]["harvested"] == 60

    def test_empty_corpus_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main_surrogate(["train", str(empty), str(tmp_path / "m.npz")])
        assert code == 2
        assert "trainable entries" in capsys.readouterr().err

    def test_routed_through_repro_run(self, corpus, tmp_path):
        model = tmp_path / "model.npz"
        assert run_main(["surrogate", "train", str(corpus), str(model), *FAST_TRAIN]) == 0
        assert model.exists()


class TestEval:
    @pytest.fixture
    def model(self, corpus, tmp_path):
        path = tmp_path / "model.npz"
        assert main_surrogate(["train", str(corpus), str(path), *FAST_TRAIN]) == 0
        return path

    def test_scores_a_corpus(self, model, corpus, capsys):
        capsys.readouterr()
        assert main_surrogate(["eval", str(model), str(corpus), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["circuit"] == "lna" and report["num_points"] == 60
        assert report["error_mean"] >= 0.0
        assert 0.0 <= report["accept_rate"] <= 1.0

    def test_missing_model_exits_2(self, corpus, tmp_path, capsys):
        assert main_surrogate(["eval", str(tmp_path / "nope.npz"), str(corpus)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_corpus_without_matching_circuit_exits_2(self, model, tmp_path, capsys):
        other = tmp_path / "other"
        other.mkdir()
        write_disk_entry(
            entry_path(other, b"x"),
            SimulationResult(specs={"gain": 1.0}, details={}, valid=True),
            circuit="opamp", parameters=np.ones(2),
        )
        assert main_surrogate(["eval", str(model), str(other)]) == 2
        assert "no entries" in capsys.readouterr().err

    def test_mismatched_layout_exits_2(self, model, tmp_path, capsys):
        stale = tmp_path / "stale"
        stale.mkdir()
        write_disk_entry(
            entry_path(stale, b"x"),
            SimulationResult(specs={"gain": 1.0}, details={}, valid=True),
            circuit="lna", parameters=np.ones(5),  # wrong parameter count
        )
        assert main_surrogate(["eval", str(model), str(stale)]) == 2
        assert "does not match" in capsys.readouterr().err
