"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_env
from repro.circuits import build_rf_pa, build_two_stage_opamp
from repro.simulation import OpAmpSimulator, RfPaCoarseSimulator, RfPaFineSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def opamp_benchmark():
    return build_two_stage_opamp()


@pytest.fixture
def rf_pa_benchmark():
    return build_rf_pa()


@pytest.fixture
def opamp_simulator():
    return OpAmpSimulator()


@pytest.fixture
def pa_fine_simulator():
    return RfPaFineSimulator()


@pytest.fixture
def pa_coarse_simulator():
    return RfPaCoarseSimulator()


@pytest.fixture
def opamp_env():
    return make_env("opamp-p2s-v0", seed=0)


@pytest.fixture
def rf_pa_env():
    return make_env("rf_pa-fine-v0", seed=0)


@pytest.fixture
def rf_pa_coarse_env():
    return make_env("rf_pa-coarse-v0", seed=0)
