"""Tests for policy deployment and design-accuracy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.agents.deployment import deploy_policy, evaluate_deployment
from repro import make_env, make_policy


@pytest.fixture
def env():
    return make_env("opamp-p2s-v0", seed=0, max_steps=10)


@pytest.fixture
def policy(env):
    return make_policy("gcn_fc", env, np.random.default_rng(0))


class TestDeployPolicy:
    def test_returns_trajectory_and_final_specs(self, env, policy):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        result = deploy_policy(env, policy, target, rng=np.random.default_rng(0))
        assert result.target_specs == target
        assert 1 <= result.steps <= env.max_steps
        assert result.trajectory.length == result.steps
        assert set(result.final_specs) == {"gain", "bandwidth", "phase_margin", "power"}

    def test_success_on_trivial_target(self, env, policy):
        trivial = {"gain": 1.1, "bandwidth": 1.0, "phase_margin": 0.0, "power": 10.0}
        result = deploy_policy(env, policy, trivial, rng=np.random.default_rng(0))
        assert result.success
        assert result.steps == 1

    def test_max_steps_override_is_restored(self, env, policy):
        target = {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12}
        result = deploy_policy(env, policy, target, max_steps=3, rng=np.random.default_rng(0))
        assert result.steps == 3
        assert env.max_steps == 10

    def test_deterministic_deployment_is_reproducible(self, env, policy):
        target = {"gain": 400.0, "bandwidth": 1e7, "phase_margin": 57.0, "power": 2e-3}
        first = deploy_policy(env, policy, target, deterministic=True)
        second = deploy_policy(env, policy, target, deterministic=True)
        assert first.steps == second.steps
        assert first.final_specs == second.final_specs


class TestEvaluateDeployment:
    def test_accuracy_and_steps_statistics(self, env, policy):
        evaluation = evaluate_deployment(env, policy, num_targets=5, seed=42)
        assert evaluation.num_targets == 5
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert 1.0 <= evaluation.mean_steps <= env.max_steps

    def test_same_seed_gives_same_targets(self, env, policy):
        first = evaluate_deployment(env, policy, num_targets=4, seed=7)
        second = evaluate_deployment(env, policy, num_targets=4, seed=7)
        assert [r.target_specs for r in first.results] == [r.target_specs for r in second.results]

    def test_explicit_target_list(self, env, policy):
        targets = [
            {"gain": 1.1, "bandwidth": 1.0, "phase_margin": 0.0, "power": 10.0},
            {"gain": 1e9, "bandwidth": 1e12, "phase_margin": 90.0, "power": 1e-12},
        ]
        evaluation = evaluate_deployment(env, policy, targets=targets)
        assert evaluation.num_targets == 2
        assert evaluation.results[0].success
        assert not evaluation.results[1].success
        assert evaluation.accuracy == pytest.approx(0.5)
        assert evaluation.mean_successful_steps == pytest.approx(1.0)

    def test_empty_evaluation_degenerate_values(self):
        from repro.agents.deployment import DeploymentEvaluation

        empty = DeploymentEvaluation()
        assert empty.accuracy == 0.0
        assert empty.mean_steps == 0.0
        assert np.isnan(empty.mean_successful_steps)
