"""Neural-network substrate: numpy autograd, dense and graph layers, optimizers.

This package replaces PyTorch + Deep Graph Library from the paper's original
implementation with a self-contained reverse-mode autograd engine and the
exact layer types the multimodal policy network needs (Linear/MLP, GCN, GAT,
multi-head attention, Adam, categorical action distributions).
"""

from repro.nn.distributions import Categorical, MultiCategorical
from repro.nn.functional import explained_variance, huber_loss, mse_loss
from repro.nn.graph_layers import (
    GATLayer,
    GCNLayer,
    GraphEncoder,
    GraphReadout,
    normalized_adjacency,
)
from repro.nn.initializers import get_initializer, he_normal, orthogonal, xavier_uniform, zeros
from repro.nn.layers import MLP, Linear, Sequential, get_activation
from repro.nn.module import Module
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import (
    Tensor,
    concatenate,
    inference_mode,
    is_grad_enabled,
    maximum,
    minimum,
    set_grad_enabled,
    stack,
    where,
)

__all__ = [
    "Adam",
    "Categorical",
    "GATLayer",
    "GCNLayer",
    "GraphEncoder",
    "GraphReadout",
    "Linear",
    "MLP",
    "Module",
    "MultiCategorical",
    "Optimizer",
    "SGD",
    "Sequential",
    "Tensor",
    "clip_grad_norm",
    "concatenate",
    "explained_variance",
    "get_activation",
    "get_initializer",
    "he_normal",
    "huber_loss",
    "inference_mode",
    "is_grad_enabled",
    "maximum",
    "minimum",
    "mse_loss",
    "normalized_adjacency",
    "orthogonal",
    "set_grad_enabled",
    "stack",
    "where",
    "xavier_uniform",
    "zeros",
]
