"""``python -m repro.run`` — the experiment and serving command line.

One front door, six subcommands (each with its own ``--help``)::

    python -m repro.run sweep sweep.json [--workers N] [--expand] ...
    python -m repro.run deploy ckpt/latest.npz requests.json [--batch-size N]
    python -m repro.run serve ckpt/latest.npz (--stdin | --port N) ...
    python -m repro.run surrogate {train,eval} ...
    python -m repro.run analyze src/ [--strict] [--output report.json]
    python -m repro.run yield [--circuits a,b] [--samples N] [--workers N] ...

``sweep`` drives a whole experiment grid from one JSON document — either a
:class:`repro.orchestrate.SweepConfig` (grid) or a single
:class:`repro.api.RunConfig` (detected by its ``env``/``optimizer`` keys and
wrapped as a one-unit sweep with its literal seed).  CLI flags override the
document's runtime knobs (``workers``, ``store``, ``disk_cache``); the
scientific content of the sweep lives only in the JSON.

``deploy`` runs a finite request document against a checkpoint; ``serve``
keeps the async gateway running over NDJSON or HTTP (both documented in
:mod:`repro.serve.cli`); ``surrogate`` trains/evaluates the learned
simulation tier (:mod:`repro.surrogate.cli`); ``analyze`` lints the tree
against the project's invariant rules (:mod:`repro.analysis.cli`);
``yield`` runs the Monte-Carlo PVT yield report
(:mod:`repro.experiments.yield_cli`).  The serving subcommands pull in the
nn/agents stack only when used.

The pre-subcommand invocation ``python -m repro.run CONFIG.json [flags]``
still works but emits a :class:`DeprecationWarning`; use
``python -m repro.run sweep CONFIG.json``.

Exit status: 0 on success (for ``sweep``: every unit completed or was
skipped via the artifact store), 1 when any sweep unit failed, 2 on bad
input or an unknown command.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import List, Optional, Sequence

COMMANDS = ("sweep", "deploy", "serve", "surrogate", "analyze", "yield")

_TOP_HELP = """\
usage: python -m repro.run COMMAND [options]

commands:
  sweep      run an experiment sweep (or a single run config) from a JSON document
  deploy     deploy a checkpointed policy over a batch of specification targets
  serve      run the async serving gateway (NDJSON over stdin/stdout, or HTTP)
  surrogate  train or evaluate the learned simulation surrogate
  analyze    lint the tree against the project's invariant rules
  yield      Monte-Carlo PVT yield report over the circuit zoo

Run 'python -m repro.run COMMAND --help' for per-command options.
"""


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run sweep",
        description="Run an experiment sweep (or a single run config) from a JSON document.",
    )
    parser.add_argument("config", help="path to a SweepConfig or RunConfig JSON document")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: the document's 'workers', else 1)")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: the document's 'store')")
    parser.add_argument("--disk-cache", default=None, dest="disk_cache",
                        help="persistent simulation-cache directory "
                             "(default: the document's 'disk_cache', else disabled)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-execute every unit even when its artifact exists")
    parser.add_argument("--expand", action="store_true",
                        help="print the expanded unit list and exit without running")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-unit progress lines (summary still prints)")
    return parser


# Kept under its old name for pre-subcommand callers.
build_parser = build_sweep_parser


def load_sweep(path: str):
    from repro.orchestrate import sweep_from_document

    with open(path, "r", encoding="utf-8") as handle:
        return sweep_from_document(json.load(handle))


def main_sweep(argv: Optional[Sequence[str]] = None) -> int:
    from repro.orchestrate import UnitRecord, run_sweep

    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        sweep = load_sweep(args.config)
        if args.disk_cache is not None:
            sweep.disk_cache = args.disk_cache
        if args.expand:
            # The only eager expansion: the run path below leaves it to
            # run_sweep (expanding twice would re-derive every unit seed).
            for unit in sweep.expand():
                print(f"{unit.unit_id:<44s} seed={unit.payload['run']['seed']:<12d} "
                      f"key={unit.key()[:12]}")
            print(f"{sweep.num_units} units "
                  f"({len(sweep.optimizers)} optimizers x {len(sweep.envs)} envs "
                  f"x {len(sweep.seeds)} seeds)")
            return 0
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"error: could not load sweep from {args.config!r}: {exc}", file=sys.stderr)
        return 2

    total = sweep.num_units
    progress_state = {"done": 0}

    def on_progress(event: str, record: UnitRecord) -> None:
        progress_state["done"] += 1
        if args.quiet:
            return
        label = {"skipped": "skipped (artifact store)", "completed": "completed",
                 "failed": "FAILED"}[event]
        print(f"[{progress_state['done']}/{total}] {record.unit_id:<44s} "
              f"{label} ({record.wall_time_s:.2f}s)", flush=True)

    name = sweep.name or "sweep"
    print(f"{name}: {total} units -> store {args.store or sweep.store!r}"
          + (f", disk cache {sweep.disk_cache!r}" if sweep.disk_cache else ""))
    result = run_sweep(
        sweep,
        store=args.store,
        workers=args.workers,
        resume=not args.no_resume,
        on_progress=on_progress,
    )
    print()
    print(result.summary_table())
    for unit_id in result.failed:
        record = result.record(unit_id)
        last_line = (record.error or "").strip().splitlines()[-1:] or ["unknown error"]
        print(f"failed: {unit_id}: {last_line[0]}", file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv: List[str] = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_TOP_HELP, end="")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "sweep":
        return main_sweep(rest)
    if command == "deploy":
        # Deployment serving is its own parser (and pulls in the nn/agents
        # stack only when used).
        from repro.serve.cli import main_deploy

        return main_deploy(rest)
    if command == "serve":
        from repro.serve.cli import main_serve

        return main_serve(rest)
    if command == "surrogate":
        # Surrogate training/evaluation (pulls in the nn stack only when used).
        from repro.surrogate.cli import main_surrogate

        return main_surrogate(rest)
    if command == "analyze":
        from repro.analysis.cli import main_analyze

        return main_analyze(rest)
    if command == "yield":
        # Monte-Carlo PVT yield report (pure numpy; loads the experiment
        # harness only when used).
        from repro.experiments.yield_cli import main_yield

        return main_yield(rest)
    # Pre-subcommand invocation: `python -m repro.run CONFIG.json [flags]`.
    # Recognized by a config-file-looking first token (or a leading flag, for
    # shapes like `--expand sweep.json`) and routed to `sweep` with a warning.
    if command.startswith("-") or command.endswith(".json") or Path(command).exists():
        warnings.warn(
            "'python -m repro.run CONFIG.json' is deprecated; use "
            "'python -m repro.run sweep CONFIG.json'",
            DeprecationWarning,
            stacklevel=2,
        )
        return main_sweep(argv)
    print(
        f"error: unknown command {command!r} (commands: {', '.join(COMMANDS)})",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
