"""Table 2 — comparison summary of all design-automation methods.

Regenerates the Table 2 rows (design accuracy and mean design steps on the
two-stage op-amp) for the optimization baselines, the supervised-learning
sizer, and the RL methods, all at the reduced benchmark budget.  The
structural claims asserted here are the ones that survive the budget
reduction:

* the supervised sizer uses exactly one design step;
* GA/BO need an order of magnitude more simulator calls per design than a
  deployed RL policy's episode budget;
* every accuracy lies in [0, 1] and every row is populated.

Absolute accuracies at paper scale (77 % GA, 84 % BO, 79 % SL, 92–99 % RL)
require the full training budget — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments import build_table2


def test_table2_regeneration(benchmark, scale):
    def run():
        return build_table2(
            scale=scale,
            seed=0,
            circuits=("two_stage_opamp",),
            rl_methods=("gcn_fc", "baseline_a"),
            optimizer_methods=("genetic_algorithm", "bayesian_optimization"),
            include_supervised=True,
            include_fom=False,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    methods = {row.method for row in table.rows}
    assert methods == {
        "genetic_algorithm", "bayesian_optimization", "supervised_learning",
        "gcn_fc", "baseline_a",
    }

    supervised = table.row("supervised_learning")
    assert supervised.opamp_mean_steps == 1.0

    for optimizer in ("genetic_algorithm", "bayesian_optimization"):
        row = table.row(optimizer)
        assert row.opamp_mean_steps > 50, "optimizers need more sims than one RL episode budget"
        assert 0.0 <= row.opamp_accuracy <= 1.0

    for method in ("gcn_fc", "baseline_a"):
        row = table.row(method)
        assert row.opamp_mean_steps <= 50.0
        assert 0.0 <= row.opamp_accuracy <= 1.0
        assert row.uses_domain_knowledge == (method == "gcn_fc")

    benchmark.extra_info["table"] = table.as_text()
    benchmark.extra_info["scale"] = table.scale_name
