"""Device primitives used to describe analog/RF circuit netlists.

Every circuit in the paper (the 45 nm CMOS two-stage op-amp of Fig. 2 and the
150 nm GaN RF power amplifier of Fig. 4) is described as a set of devices
connected between named nets.  A device carries

* a :class:`DeviceType` (which also drives the one-hot part of the graph node
  features, Sec. 3 "State Representation"),
* a terminal→net mapping, and
* a parameter dictionary (width/fingers for transistors, value for passives,
  voltage for supplies/bias sources).

The tunable subset of those parameters is managed separately by
:mod:`repro.circuits.parameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple


class DeviceType(Enum):
    """All device categories that may appear in a circuit graph.

    The paper's node-feature encoding uses "the binary representation of the
    node type"; the enum ordering below fixes that encoding for the whole
    library (see :mod:`repro.graph.features`).
    """

    NMOS = "nmos"
    PMOS = "pmos"
    GAN_HEMT = "gan_hemt"
    RESISTOR = "resistor"
    CAPACITOR = "capacitor"
    INDUCTOR = "inductor"
    SUPPLY = "supply"
    GROUND = "ground"
    BIAS = "bias"
    CURRENT_SOURCE = "current_source"

    @property
    def is_transistor(self) -> bool:
        return self in (DeviceType.NMOS, DeviceType.PMOS, DeviceType.GAN_HEMT)

    @property
    def is_passive(self) -> bool:
        return self in (DeviceType.RESISTOR, DeviceType.CAPACITOR, DeviceType.INDUCTOR)

    @property
    def is_source(self) -> bool:
        return self in (
            DeviceType.SUPPLY,
            DeviceType.GROUND,
            DeviceType.BIAS,
            DeviceType.CURRENT_SOURCE,
        )


#: Canonical ordering used for one-hot node-type encodings.
DEVICE_TYPE_ORDER: Tuple[DeviceType, ...] = tuple(DeviceType)


@dataclass
class Device:
    """A single circuit element.

    Parameters
    ----------
    name:
        Unique instance name within a netlist (e.g. ``"M1"``, ``"CC"``).
    dtype:
        The :class:`DeviceType`.
    terminals:
        Mapping of terminal name to net name, e.g.
        ``{"d": "net1", "g": "vin_p", "s": "tail", "b": "vgnd"}``.
    parameters:
        Numeric device parameters.  Transistors use ``width`` (metres) and
        ``fingers`` (dimensionless count); passives use ``value`` (SI units);
        sources use ``voltage`` (volts) or ``current`` (amperes).
    """

    name: str
    dtype: DeviceType
    terminals: Dict[str, str]
    parameters: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        if not self.terminals:
            raise ValueError(f"device '{self.name}' must have at least one terminal")
        self.terminals = {str(k): str(v) for k, v in self.terminals.items()}
        self.parameters = {str(k): float(v) for k, v in self.parameters.items()}

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def get_parameter(self, key: str) -> float:
        try:
            return self.parameters[key]
        except KeyError as exc:
            raise KeyError(f"device '{self.name}' has no parameter '{key}'") from exc

    def set_parameter(self, key: str, value: float) -> None:
        if key not in self.parameters:
            raise KeyError(f"device '{self.name}' has no parameter '{key}'")
        self.parameters[key] = float(value)

    # ------------------------------------------------------------------
    # Net helpers
    # ------------------------------------------------------------------
    @property
    def nets(self) -> Tuple[str, ...]:
        """All nets this device touches (deduplicated, order-preserving)."""
        seen: Dict[str, None] = {}
        for net in self.terminals.values():
            seen.setdefault(net, None)
        return tuple(seen)

    def connects_to(self, net: str) -> bool:
        return net in self.terminals.values()

    def copy(self) -> "Device":
        return Device(
            name=self.name,
            dtype=self.dtype,
            terminals=dict(self.terminals),
            parameters=dict(self.parameters),
        )


# ----------------------------------------------------------------------
# Convenience constructors — keep circuit builders readable.
# ----------------------------------------------------------------------
def nmos(name: str, drain: str, gate: str, source: str, bulk: Optional[str] = None,
         width: float = 10e-6, fingers: int = 2) -> Device:
    """N-type MOSFET with ``width`` in metres and integer ``fingers``."""
    return Device(
        name=name,
        dtype=DeviceType.NMOS,
        terminals={"d": drain, "g": gate, "s": source, "b": bulk if bulk is not None else source},
        parameters={"width": width, "fingers": float(fingers)},
    )


def pmos(name: str, drain: str, gate: str, source: str, bulk: Optional[str] = None,
         width: float = 10e-6, fingers: int = 2) -> Device:
    """P-type MOSFET with ``width`` in metres and integer ``fingers``."""
    return Device(
        name=name,
        dtype=DeviceType.PMOS,
        terminals={"d": drain, "g": gate, "s": source, "b": bulk if bulk is not None else source},
        parameters={"width": width, "fingers": float(fingers)},
    )


def gan_hemt(name: str, drain: str, gate: str, source: str,
             width: float = 50e-6, fingers: int = 4) -> Device:
    """GaN high-electron-mobility transistor (the RF PA's active device)."""
    return Device(
        name=name,
        dtype=DeviceType.GAN_HEMT,
        terminals={"d": drain, "g": gate, "s": source},
        parameters={"width": width, "fingers": float(fingers)},
    )


def resistor(name: str, plus: str, minus: str, value: float) -> Device:
    return Device(
        name=name,
        dtype=DeviceType.RESISTOR,
        terminals={"p": plus, "n": minus},
        parameters={"value": value},
    )


def capacitor(name: str, plus: str, minus: str, value: float) -> Device:
    return Device(
        name=name,
        dtype=DeviceType.CAPACITOR,
        terminals={"p": plus, "n": minus},
        parameters={"value": value},
    )


def inductor(name: str, plus: str, minus: str, value: float) -> Device:
    return Device(
        name=name,
        dtype=DeviceType.INDUCTOR,
        terminals={"p": plus, "n": minus},
        parameters={"value": value},
    )


def supply(name: str, net: str, voltage: float) -> Device:
    """Power-supply node (``VP`` in the paper's graphs)."""
    return Device(
        name=name,
        dtype=DeviceType.SUPPLY,
        terminals={"p": net},
        parameters={"voltage": voltage},
    )


def ground(name: str, net: str = "vgnd") -> Device:
    """Ground node (``VGND``), fixed at 0 V."""
    return Device(
        name=name,
        dtype=DeviceType.GROUND,
        terminals={"p": net},
        parameters={"voltage": 0.0},
    )


def bias(name: str, net: str, voltage: float) -> Device:
    """DC bias voltage node (``Vbias,k`` in the paper's state encoding)."""
    return Device(
        name=name,
        dtype=DeviceType.BIAS,
        terminals={"p": net},
        parameters={"voltage": voltage},
    )


def current_source(name: str, plus: str, minus: str, current: float) -> Device:
    return Device(
        name=name,
        dtype=DeviceType.CURRENT_SOURCE,
        terminals={"p": plus, "n": minus},
        parameters={"current": current},
    )
