"""Training-curve experiments (Fig. 3, first three columns).

For each RL method (GAT-FC, GCN-FC, Baseline A, Baseline B) and each circuit
(two-stage op-amp, RF PA) the paper plots mean episode reward, mean episode
length and deployment accuracy against the number of trained episodes,
averaged over random seeds.  :func:`run_training_experiment` reproduces one
(method, circuit) cell and :func:`run_fig3_training` sweeps a whole figure
row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.agents.policy import ActorCriticPolicy
from repro.agents.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.api.catalog import ENVS, list_envs, make_env, make_policy
from repro.env.circuit_env import CircuitDesignEnv
from repro.experiments.configs import ExperimentScale, RL_METHODS, bench_scale, rl_hyperparameters

#: Training env registry IDs per (circuit, fidelity) — the paper's protocol:
#: RF PA agents train on the coarse simulator, every analytic circuit (the
#: op-amp and the three topology-zoo circuits) has a single fast evaluator
#: serving both fidelities.
CIRCUIT_ENV_IDS = {
    "two_stage_opamp": {"coarse": "opamp-p2s-v0", "fine": "opamp-p2s-v0"},
    "folded_cascode": {
        "coarse": "folded_cascode-p2s-v0", "fine": "folded_cascode-p2s-v0",
    },
    "current_mirror_ota": {
        "coarse": "current_mirror_ota-p2s-v0", "fine": "current_mirror_ota-p2s-v0",
    },
    "common_source_lna": {
        "coarse": "common_source_lna-p2s-v0", "fine": "common_source_lna-p2s-v0",
    },
    "rf_pa": {"coarse": "rf_pa-coarse-v0", "fine": "rf_pa-fine-v0"},
}

#: Circuits recognized by the training harness.
CIRCUITS = tuple(CIRCUIT_ENV_IDS)


def make_environment(
    circuit: str, seed: Optional[int] = None, fidelity: Optional[str] = None
) -> CircuitDesignEnv:
    """Build the training environment for a circuit (or registry env ID).

    ``circuit`` may be a paper circuit name (``"two_stage_opamp"``,
    ``"rf_pa"``) — resolved through :data:`CIRCUIT_ENV_IDS` with the
    paper's per-circuit episode lengths — or any registered environment ID
    (see ``repro.list_envs()``), built with the registry defaults.

    ``fidelity`` defaults to ``"coarse"`` for circuit names (the paper's
    transfer-learning protocol); an env ID already encodes its fidelity, so
    combining one with an explicit ``fidelity`` is rejected rather than
    silently ignored.
    """
    if circuit in CIRCUIT_ENV_IDS:
        fidelities = CIRCUIT_ENV_IDS[circuit]
        fidelity = fidelity or "coarse"
        if fidelity not in fidelities:
            raise ValueError(
                f"unknown fidelity '{fidelity}' for circuit '{circuit}', "
                f"expected one of {sorted(fidelities)}"
            )
        hyper = rl_hyperparameters(circuit)
        return make_env(fidelities[fidelity], seed=seed, max_steps=hyper["max_steps"])
    if circuit in ENVS:
        if fidelity is not None:
            raise ValueError(
                f"'{circuit}' is an environment id, which already encodes its fidelity; "
                f"drop the fidelity argument or pick the matching id from repro.list_envs()"
            )
        return make_env(circuit, seed=seed)
    raise ValueError(
        f"unknown circuit '{circuit}': expected a circuit name from {CIRCUITS} "
        f"or an environment id from repro.list_envs() = {list_envs()}"
    )


@dataclass
class MethodTrainingResult:
    """Training outcome of one (method, circuit, seed) run."""

    method: str
    circuit: str
    seed: int
    history: TrainingHistory
    policy: ActorCriticPolicy
    env: CircuitDesignEnv


@dataclass
class TrainingCurves:
    """Per-method training curves aggregated over seeds (one Fig. 3 line)."""

    method: str
    circuit: str
    runs: List[MethodTrainingResult] = field(default_factory=list)

    def episodes_axis(self) -> np.ndarray:
        return self.runs[0].history.episodes_axis()

    def mean_series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Mean and standard deviation of one metric across seeds."""
        series = np.stack([run.history.series(name) for run in self.runs])
        return np.nanmean(series, axis=0), np.nanstd(series, axis=0)

    @property
    def final_mean_reward(self) -> float:
        return float(np.mean([run.history.final_mean_reward for run in self.runs]))

    @property
    def final_mean_length(self) -> float:
        return float(np.mean([run.history.final_mean_length for run in self.runs]))

    @property
    def final_deployment_accuracy(self) -> float:
        values = [
            run.history.final_deployment_accuracy
            for run in self.runs
            if run.history.final_deployment_accuracy is not None
        ]
        return float(np.mean(values)) if values else float("nan")


def run_training_experiment(
    circuit: str,
    method: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    total_episodes: Optional[int] = None,
    track_accuracy: bool = True,
) -> MethodTrainingResult:
    """Train one method on one circuit for one seed and return the history."""
    scale = scale or bench_scale()
    env = make_environment(circuit, seed=seed)
    rng = np.random.default_rng(seed)
    policy = make_policy(method, env, rng)
    hyper = rl_hyperparameters(circuit)
    ppo_config: PPOConfig = hyper["ppo"]
    trainer = PPOTrainer(env, policy, config=ppo_config, seed=seed, method_name=method)
    if total_episodes is None:
        total_episodes = (
            scale.opamp_training_episodes
            if circuit == "two_stage_opamp"
            else scale.rf_pa_training_episodes
        )
    history = trainer.train(
        total_episodes=total_episodes,
        episodes_per_update=scale.episodes_per_update,
        eval_interval=scale.eval_interval if track_accuracy else None,
        eval_specs=scale.eval_specs,
    )
    return MethodTrainingResult(
        method=method, circuit=circuit, seed=seed, history=history, policy=policy, env=env
    )


def run_fig3_training(
    circuit: str,
    methods: Sequence[str] = RL_METHODS,
    scale: Optional[ExperimentScale] = None,
    seeds: Optional[Sequence[int]] = None,
    track_accuracy: bool = True,
) -> Dict[str, TrainingCurves]:
    """Reproduce one row of Fig. 3 (all RL methods on one circuit)."""
    scale = scale or bench_scale()
    if seeds is None:
        seeds = tuple(range(scale.num_seeds))
    curves: Dict[str, TrainingCurves] = {}
    for method in methods:
        method_curves = TrainingCurves(method=method, circuit=circuit)
        for seed in seeds:
            method_curves.runs.append(
                run_training_experiment(
                    circuit, method, scale=scale, seed=seed, track_accuracy=track_accuracy
                )
            )
        curves[method] = method_curves
    return curves
