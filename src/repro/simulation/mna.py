"""Modified nodal analysis (MNA) engine — the repository's mini-SPICE.

The paper's design environment invokes Cadence Spectre for AC/DC analysis of
the op-amp.  This module provides the equivalent substrate: a small circuit
simulator supporting

* **DC operating-point analysis** with Newton–Raphson iteration over
  nonlinear square-law MOSFETs (linear elements are stamped directly), and
* **AC small-signal analysis** over a frequency sweep with complex phasor
  solves, including linearized MOSFETs, resistors, capacitors, inductors,
  controlled sources and independent sources.

The engine is deliberately dense-matrix based: analog cells have tens of
nodes, so ``numpy.linalg.solve`` on a ``(n+m) × (n+m)`` system is both simple
and fast.  It is used to validate the analytical op-amp evaluator
(:mod:`repro.simulation.opamp_sim`) and in its own unit tests against
closed-form circuit theory results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.mosfet import MosfetModel

#: Net names treated as the global reference node.
GROUND_NAMES = ("0", "gnd", "vgnd", "ground")


class ConvergenceError(RuntimeError):
    """Raised when the Newton iteration fails to converge."""


@dataclass
class _Resistor:
    name: str
    n1: str
    n2: str
    value: float


@dataclass
class _Capacitor:
    name: str
    n1: str
    n2: str
    value: float


@dataclass
class _Inductor:
    name: str
    n1: str
    n2: str
    value: float


@dataclass
class _VoltageSource:
    name: str
    n_plus: str
    n_minus: str
    dc: float
    ac: float


@dataclass
class _CurrentSource:
    name: str
    n_plus: str
    n_minus: str
    dc: float
    ac: float


@dataclass
class _Vccs:
    """Voltage-controlled current source: ``i(out+ -> out-) = gm * v(in+, in-)``."""

    name: str
    out_plus: str
    out_minus: str
    in_plus: str
    in_minus: str
    gm: float


@dataclass
class _Mosfet:
    name: str
    drain: str
    gate: str
    source: str
    model: MosfetModel


@dataclass
class DcSolution:
    """Result of a DC operating-point analysis."""

    node_voltages: Dict[str, float]
    source_currents: Dict[str, float]
    iterations: int

    def voltage(self, node: str) -> float:
        if node.lower() in GROUND_NAMES:
            return 0.0
        return self.node_voltages[node]


@dataclass
class AcSolution:
    """Result of an AC sweep: complex node voltages per frequency."""

    frequencies: np.ndarray
    node_voltages: Dict[str, np.ndarray]

    def voltage(self, node: str) -> np.ndarray:
        if node.lower() in GROUND_NAMES:
            return np.zeros_like(self.frequencies, dtype=np.complex128)
        return self.node_voltages[node]

    def transfer(self, output_node: str, input_node: str) -> np.ndarray:
        """Complex transfer function V(out)/V(in) over the sweep."""
        vin = self.voltage(input_node)
        vout = self.voltage(output_node)
        return vout / vin

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.abs(self.voltage(node)) + 1e-300)


class MnaCircuit:
    """A circuit assembled element by element and solved with MNA."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._resistors: List[_Resistor] = []
        self._capacitors: List[_Capacitor] = []
        self._inductors: List[_Inductor] = []
        self._vsources: List[_VoltageSource] = []
        self._isources: List[_CurrentSource] = []
        self._vccs: List[_Vccs] = []
        self._mosfets: List[_Mosfet] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Element construction
    # ------------------------------------------------------------------
    def _register(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name '{name}'")
        self._names.add(name)

    def add_resistor(self, name: str, n1: str, n2: str, value: float) -> None:
        if value <= 0:
            raise ValueError(f"resistor {name} must have positive resistance")
        self._register(name)
        self._resistors.append(_Resistor(name, n1, n2, float(value)))

    def add_capacitor(self, name: str, n1: str, n2: str, value: float) -> None:
        if value <= 0:
            raise ValueError(f"capacitor {name} must have positive capacitance")
        self._register(name)
        self._capacitors.append(_Capacitor(name, n1, n2, float(value)))

    def add_inductor(self, name: str, n1: str, n2: str, value: float) -> None:
        if value <= 0:
            raise ValueError(f"inductor {name} must have positive inductance")
        self._register(name)
        self._inductors.append(_Inductor(name, n1, n2, float(value)))

    def add_voltage_source(self, name: str, n_plus: str, n_minus: str, dc: float = 0.0,
                           ac: float = 0.0) -> None:
        self._register(name)
        self._vsources.append(_VoltageSource(name, n_plus, n_minus, float(dc), float(ac)))

    def add_current_source(self, name: str, n_plus: str, n_minus: str, dc: float = 0.0,
                           ac: float = 0.0) -> None:
        self._register(name)
        self._isources.append(_CurrentSource(name, n_plus, n_minus, float(dc), float(ac)))

    def add_vccs(self, name: str, out_plus: str, out_minus: str, in_plus: str, in_minus: str,
                 gm: float) -> None:
        self._register(name)
        self._vccs.append(_Vccs(name, out_plus, out_minus, in_plus, in_minus, float(gm)))

    def add_mosfet(self, name: str, drain: str, gate: str, source: str, model: MosfetModel) -> None:
        self._register(name)
        self._mosfets.append(_Mosfet(name, drain, gate, source, model))

    # ------------------------------------------------------------------
    # Structural introspection (read-only views used by repro.compile)
    # ------------------------------------------------------------------
    @property
    def resistors(self) -> Tuple[_Resistor, ...]:
        return tuple(self._resistors)

    @property
    def capacitors(self) -> Tuple[_Capacitor, ...]:
        return tuple(self._capacitors)

    @property
    def inductors(self) -> Tuple[_Inductor, ...]:
        return tuple(self._inductors)

    @property
    def vsources(self) -> Tuple[_VoltageSource, ...]:
        return tuple(self._vsources)

    @property
    def isources(self) -> Tuple[_CurrentSource, ...]:
        return tuple(self._isources)

    @property
    def vccs_elements(self) -> Tuple[_Vccs, ...]:
        return tuple(self._vccs)

    @property
    def mosfets(self) -> Tuple[_Mosfet, ...]:
        return tuple(self._mosfets)

    def structure_signature(self) -> Tuple:
        """Hashable topology signature: element kinds, names and node wiring.

        Two circuits with equal signatures have identical sparsity patterns,
        node orderings and stamp orders — exactly the precondition for
        stacking their systems into one batched solve
        (:class:`repro.compile.BatchedMNAPlan`).  Element *values* are
        deliberately excluded: they are the per-step restamped quantities.
        """
        return (
            tuple(("r", r.name, r.n1, r.n2) for r in self._resistors),
            tuple(("c", c.name, c.n1, c.n2) for c in self._capacitors),
            tuple(("l", e.name, e.n1, e.n2) for e in self._inductors),
            tuple(("v", v.name, v.n_plus, v.n_minus) for v in self._vsources),
            tuple(("i", s.name, s.n_plus, s.n_minus) for s in self._isources),
            tuple(
                ("g", g.name, g.out_plus, g.out_minus, g.in_plus, g.in_minus)
                for g in self._vccs
            ),
            tuple(
                ("m", m.name, m.drain, m.gate, m.source, m.model.polarity)
                for m in self._mosfets
            ),
        )

    # ------------------------------------------------------------------
    # Node bookkeeping
    # ------------------------------------------------------------------
    def _collect_nodes(self) -> List[str]:
        nodes: Dict[str, None] = {}
        def visit(net: str) -> None:
            if net.lower() not in GROUND_NAMES:
                nodes.setdefault(net, None)

        for r in self._resistors:
            visit(r.n1), visit(r.n2)
        for c in self._capacitors:
            visit(c.n1), visit(c.n2)
        for l in self._inductors:
            visit(l.n1), visit(l.n2)
        for v in self._vsources:
            visit(v.n_plus), visit(v.n_minus)
        for i in self._isources:
            visit(i.n_plus), visit(i.n_minus)
        for g in self._vccs:
            visit(g.out_plus), visit(g.out_minus), visit(g.in_plus), visit(g.in_minus)
        for m in self._mosfets:
            visit(m.drain), visit(m.gate), visit(m.source)
        return list(nodes)

    @property
    def node_names(self) -> List[str]:
        return self._collect_nodes()

    # ------------------------------------------------------------------
    # DC analysis
    # ------------------------------------------------------------------
    def dc_operating_point(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        initial_guess: Optional[Dict[str, float]] = None,
        damping: float = 1.0,
        max_voltage_step: float = 0.3,
    ) -> DcSolution:
        """Solve the nonlinear DC operating point with Newton–Raphson.

        Capacitors are open and inductors are shorts (modelled as 0 V
        sources) at DC.  Each MOSFET is replaced by its companion model —
        a conductance/current-source linearization around the present
        voltage estimate — and the resulting linear system is re-solved until
        the node voltages stop changing.
        """
        nodes = self._collect_nodes()
        index = {node: i for i, node in enumerate(nodes)}
        num_nodes = len(nodes)
        # Branch unknowns: every voltage source and every inductor (short).
        branch_elements: List[Tuple[str, str, str, float]] = [
            (v.name, v.n_plus, v.n_minus, v.dc) for v in self._vsources
        ] + [(l.name, l.n1, l.n2, 0.0) for l in self._inductors]
        num_branches = len(branch_elements)
        size = num_nodes + num_branches

        def node_idx(net: str) -> Optional[int]:
            if net.lower() in GROUND_NAMES:
                return None
            return index[net]

        voltages = np.zeros(num_nodes)
        if initial_guess:
            for net, value in initial_guess.items():
                if net in index:
                    voltages[index[net]] = value

        def voltage_of(net: str, vec: np.ndarray) -> float:
            idx = node_idx(net)
            return 0.0 if idx is None else float(vec[idx])

        solution = np.zeros(size)
        solution[:num_nodes] = voltages
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            matrix = np.zeros((size, size))
            rhs = np.zeros(size)

            def stamp_conductance(n1: str, n2: str, g: float) -> None:
                i, j = node_idx(n1), node_idx(n2)
                if i is not None:
                    matrix[i, i] += g
                if j is not None:
                    matrix[j, j] += g
                if i is not None and j is not None:
                    matrix[i, j] -= g
                    matrix[j, i] -= g

            def stamp_current(n_plus: str, n_minus: str, current: float) -> None:
                # Current flows from n_plus through the source to n_minus
                # (i.e. it is injected into n_minus and drawn from n_plus).
                i, j = node_idx(n_plus), node_idx(n_minus)
                if i is not None:
                    rhs[i] -= current
                if j is not None:
                    rhs[j] += current

            for r in self._resistors:
                stamp_conductance(r.n1, r.n2, 1.0 / r.value)
            for g in self._vccs:
                self._stamp_vccs(
                    matrix, node_idx, g.out_plus, g.out_minus, g.in_plus, g.in_minus, g.gm
                )
            for src in self._isources:
                stamp_current(src.n_plus, src.n_minus, src.dc)

            # MOSFET companion models.
            for m in self._mosfets:
                vg = voltage_of(m.gate, solution)
                vd = voltage_of(m.drain, solution)
                vs = voltage_of(m.source, solution)
                vgs, vds = vg - vs, vd - vs
                op = m.model.operating_point(vgs, vds)
                current = m.model.drain_current(vgs, vds)
                gm, gds = op.gm, max(op.gds, 1e-12)
                if m.model.polarity == "pmos":
                    # Orient small-signal conductances the same way as NMOS;
                    # signs are handled by the equivalent current below.
                    pass
                # Companion current source: i_eq = I_D - gm*vgs - gds*vds
                # (signed drain->source current).
                i_eq = current - gm * vgs * self._polarity_sign(m) - gds * vds
                self._stamp_vccs(matrix, node_idx, m.drain, m.source, m.gate, m.source,
                                 gm * self._polarity_sign(m))
                stamp_conductance(m.drain, m.source, gds)
                stamp_current(m.drain, m.source, i_eq)

            # Voltage sources and inductors as branch equations.
            for branch, (name, n_plus, n_minus, value) in enumerate(branch_elements):
                row = num_nodes + branch
                i, j = node_idx(n_plus), node_idx(n_minus)
                if i is not None:
                    matrix[i, row] += 1.0
                    matrix[row, i] += 1.0
                if j is not None:
                    matrix[j, row] -= 1.0
                    matrix[row, j] -= 1.0
                rhs[row] = value

            try:
                new_solution = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(f"singular MNA matrix in '{self.name}'") from exc
            delta = new_solution - solution
            # Limit per-iteration node-voltage updates (standard SPICE-style
            # damping) so Newton cannot oscillate across the square-law
            # region boundaries of high-gain stages.
            node_delta = delta[:num_nodes]
            largest = np.max(np.abs(node_delta)) if num_nodes else 0.0
            if max_voltage_step > 0.0 and largest > max_voltage_step:
                delta = delta * (max_voltage_step / largest)
            solution = solution + damping * delta
            if np.max(np.abs(delta[:num_nodes])) < tolerance:
                break
        else:
            raise ConvergenceError(
                f"DC analysis of '{self.name}' did not converge in {max_iterations} iterations"
            )

        node_voltages = {node: float(solution[index[node]]) for node in nodes}
        source_currents = {
            name: float(solution[num_nodes + k])
            for k, (name, _, _, _) in enumerate(branch_elements)
        }
        return DcSolution(node_voltages=node_voltages, source_currents=source_currents,
                          iterations=iterations)

    @staticmethod
    def _polarity_sign(mosfet: _Mosfet) -> float:
        """Sign applied to gm stamps: drain current decreases with vgs for PMOS."""
        return 1.0 if mosfet.model.polarity == "nmos" else 1.0

    @staticmethod
    def _stamp_vccs(matrix: np.ndarray, node_idx, out_plus: str, out_minus: str,
                    in_plus: str, in_minus: str, gm: float) -> None:
        op, om = node_idx(out_plus), node_idx(out_minus)
        ip, im = node_idx(in_plus), node_idx(in_minus)
        for out_node, out_sign in ((op, 1.0), (om, -1.0)):
            if out_node is None:
                continue
            for in_node, in_sign in ((ip, 1.0), (im, -1.0)):
                if in_node is None:
                    continue
                matrix[out_node, in_node] += out_sign * in_sign * gm

    # ------------------------------------------------------------------
    # AC analysis
    # ------------------------------------------------------------------
    def ac_analysis(
        self,
        frequencies: Sequence[float],
        operating_point: Optional[DcSolution] = None,
    ) -> AcSolution:
        """Small-signal frequency sweep.

        Every MOSFET is linearized around ``operating_point`` (which is
        computed on the fly if not supplied and any MOSFET is present).
        Independent sources contribute their ``ac`` amplitude; DC values are
        zeroed as usual for small-signal analysis.
        """
        frequencies = np.asarray(list(frequencies), dtype=np.float64)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D sequence")
        if np.any(frequencies <= 0):
            raise ValueError("AC analysis requires positive frequencies")

        if self._mosfets and operating_point is None:
            operating_point = self.dc_operating_point()

        nodes = self._collect_nodes()
        index = {node: i for i, node in enumerate(nodes)}
        num_nodes = len(nodes)
        branch_elements = [(v.name, v.n_plus, v.n_minus, v.ac) for v in self._vsources]
        num_vsrc = len(branch_elements)
        inductor_branches = [(l.name, l.n1, l.n2, l.value) for l in self._inductors]
        size = num_nodes + num_vsrc + len(inductor_branches)

        def node_idx(net: str) -> Optional[int]:
            if net.lower() in GROUND_NAMES:
                return None
            return index[net]

        # Pre-compute linearized MOSFET parameters.
        linearized: List[Tuple[_Mosfet, float, float]] = []
        for m in self._mosfets:
            assert operating_point is not None
            vg = operating_point.voltage(m.gate)
            vd = operating_point.voltage(m.drain)
            vs = operating_point.voltage(m.source)
            op = m.model.operating_point(vg - vs, vd - vs)
            linearized.append((m, op.gm, max(op.gds, 1e-12)))

        results = {node: np.zeros(frequencies.size, dtype=np.complex128) for node in nodes}
        for f_index, frequency in enumerate(frequencies):
            omega = 2.0 * np.pi * frequency
            matrix = np.zeros((size, size), dtype=np.complex128)
            rhs = np.zeros(size, dtype=np.complex128)

            def stamp_admittance(n1: str, n2: str, y: complex) -> None:
                i, j = node_idx(n1), node_idx(n2)
                if i is not None:
                    matrix[i, i] += y
                if j is not None:
                    matrix[j, j] += y
                if i is not None and j is not None:
                    matrix[i, j] -= y
                    matrix[j, i] -= y

            for r in self._resistors:
                stamp_admittance(r.n1, r.n2, 1.0 / r.value)
            for c in self._capacitors:
                stamp_admittance(c.n1, c.n2, 1j * omega * c.value)
            for g in self._vccs:
                self._stamp_vccs(matrix, node_idx, g.out_plus, g.out_minus, g.in_plus,
                                 g.in_minus, g.gm)
            for m, gm, gds in linearized:
                self._stamp_vccs(matrix, node_idx, m.drain, m.source, m.gate, m.source, gm)
                stamp_admittance(m.drain, m.source, gds)
            for src in self._isources:
                i, j = node_idx(src.n_plus), node_idx(src.n_minus)
                if i is not None:
                    rhs[i] -= src.ac
                if j is not None:
                    rhs[j] += src.ac

            for branch, (name, n_plus, n_minus, ac_value) in enumerate(branch_elements):
                row = num_nodes + branch
                i, j = node_idx(n_plus), node_idx(n_minus)
                if i is not None:
                    matrix[i, row] += 1.0
                    matrix[row, i] += 1.0
                if j is not None:
                    matrix[j, row] -= 1.0
                    matrix[row, j] -= 1.0
                rhs[row] = ac_value

            for branch, (name, n1, n2, value) in enumerate(inductor_branches):
                row = num_nodes + num_vsrc + branch
                i, j = node_idx(n1), node_idx(n2)
                if i is not None:
                    matrix[i, row] += 1.0
                    matrix[row, i] += 1.0
                if j is not None:
                    matrix[j, row] -= 1.0
                    matrix[row, j] -= 1.0
                matrix[row, row] -= 1j * omega * value

            try:
                solution = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular AC MNA matrix in '{self.name}' at f={frequency:.3g} Hz"
                ) from exc
            for node, i in index.items():
                results[node][f_index] = solution[i]

        return AcSolution(frequencies=frequencies, node_voltages=results)
