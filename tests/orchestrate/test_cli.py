"""``python -m repro.run``: the acceptance-criteria sweep through the CLI.

A 2-optimizer x 2-circuit x 2-seed sweep run with ``--workers 4`` must be
bit-identical to the same sweep at ``--workers 1``, and re-invoking it must
complete with zero units re-executed (all served from the artifact store).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.orchestrate import ArtifactStore, SweepConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_sweep(tmp_path: Path, store_name: str) -> SweepConfig:
    return SweepConfig(
        name="cli-acceptance",
        optimizers=["random", {"id": "genetic", "params": {"population_size": 4}}],
        envs=["opamp-p2s-v0", "common_source_lna-p2s-v0"],
        seeds=[0, 1],
        budget=6,
        store=str(tmp_path / store_name),
        disk_cache=str(tmp_path / "sim_cache"),
    )


def run_cli(config_path: Path, *flags: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.run", "sweep", str(config_path), *flags],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=600,
    )


def stored_results(sweep: SweepConfig) -> dict:
    store = ArtifactStore(sweep.store)
    results = {}
    for unit in sweep.expand():
        record = store.get(unit.key())
        assert record is not None and record.completed, unit.unit_id
        results[unit.unit_id] = record.result
    return results


@pytest.fixture(scope="module")
def cli_runs(tmp_path_factory):
    """One workers=1 and one workers=4 CLI invocation over the same sweep."""
    tmp_path = tmp_path_factory.mktemp("cli")
    outputs = {}
    for workers, store_name in ((1, "store_w1"), (4, "store_w4")):
        sweep = make_sweep(tmp_path, store_name)
        config_path = tmp_path / f"sweep_w{workers}.json"
        sweep.save(config_path)
        completed = run_cli(config_path, "--workers", str(workers))
        outputs[workers] = (sweep, config_path, completed)
    return outputs


def test_cli_runs_the_full_grid(cli_runs):
    for workers, (_, _, completed) in cli_runs.items():
        assert completed.returncode == 0, completed.stderr
        assert "8 units: 8 executed, 0 skipped" in completed.stdout, completed.stdout


def test_workers4_bit_identical_to_workers1(cli_runs):
    results_w1 = stored_results(cli_runs[1][0])
    results_w4 = stored_results(cli_runs[4][0])
    assert set(results_w1) == set(results_w4)
    for unit_id, result in results_w1.items():
        assert result["result"] == results_w4[unit_id]["result"], unit_id
        assert result["trace"] == results_w4[unit_id]["trace"], unit_id


def test_reinvocation_executes_zero_units(cli_runs):
    _, config_path, _ = cli_runs[4]
    again = run_cli(config_path, "--workers", "4")
    assert again.returncode == 0, again.stderr
    assert "8 units: 0 executed, 8 skipped" in again.stdout, again.stdout


def test_expand_lists_units_without_running(tmp_path):
    sweep = make_sweep(tmp_path, "store_expand")
    config_path = tmp_path / "sweep.json"
    sweep.save(config_path)
    completed = run_cli(config_path, "--expand")
    assert completed.returncode == 0, completed.stderr
    assert "8 units (2 optimizers x 2 envs x 2 seeds)" in completed.stdout
    assert not (tmp_path / "store_expand").exists()


def test_failed_unit_sets_exit_code(tmp_path):
    # An optimizer params typo fails at unit build time inside the worker.
    sweep_doc = {
        "optimizers": [{"id": "random", "params": {"definitely_not_a_knob": 1}}],
        "envs": ["common_source_lna-p2s-v0"],
        "seeds": [0],
        "budget": 4,
        "store": str(tmp_path / "store"),
    }
    config_path = tmp_path / "bad.json"
    config_path.write_text(json.dumps(sweep_doc), encoding="utf-8")
    completed = run_cli(config_path)
    assert completed.returncode == 1
    assert "failed" in completed.stdout or "failed" in completed.stderr


def test_missing_file_is_usage_error(tmp_path):
    completed = run_cli(tmp_path / "nope.json")
    assert completed.returncode == 2
    assert "could not load sweep" in completed.stderr
