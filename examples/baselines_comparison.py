"""Head-to-head: every method family through ONE shared optimize() loop.

For a single target specification group on the two-stage op-amp, every
registered optimizer — genetic algorithm, Bayesian optimization, random
search, the supervised one-shot sizer, and the PPO-trained RL policy — runs
through the identical :class:`repro.api.Optimizer` protocol::

    result = repro.make_optimizer(method).optimize(env, budget, seed, target_specs=TARGET)

and reports how many simulator calls it needed and whether the design met
all specifications — the per-design view of Table 2's accuracy/efficiency
trade-off.  Per-method knobs are data (the ``METHODS`` table below), not
separate code paths.

Run with:  python examples/baselines_comparison.py [--episodes N] [--search-budget N]
"""

from __future__ import annotations

import argparse

import repro

TARGET = {"gain": 380.0, "bandwidth": 8e6, "phase_margin": 56.0, "power": 4e-3}


def method_table(args: argparse.Namespace):
    """(optimizer id, label, budget, constructor params) for every method."""
    return (
        ("genetic", "Genetic Algorithm", args.search_budget, {}),
        ("bayesian", "Bayesian Optimization", max(12, args.search_budget // 4), {}),
        ("random", "Random Search", args.search_budget, {}),
        ("supervised", "Supervised Learning", args.sl_samples, {"epochs": args.sl_epochs}),
        ("ppo", "GCN-FC RL deployment", args.episodes, {"policy": "gcn_fc"}),
    )


def main(args: argparse.Namespace) -> None:
    env = repro.make_env("opamp-p2s-v0", seed=0)
    methods = method_table(args)
    rows = []

    print(f"Target specification group: {TARGET}\n")
    for index, (method, label, budget, params) in enumerate(methods, start=1):
        print(f"[{index}/{len(methods)}] {label} (budget {budget}) ...")
        optimizer = repro.make_optimizer(method, **params)
        result = optimizer.optimize(env, budget=budget, seed=0, target_specs=TARGET)
        rows.append((label, result.num_simulations, result.success))

    print("\nPer-design comparison (simulator calls to produce one design):")
    print(f"  {'method':<26s} {'simulator calls':>16s} {'all specs met':>14s}")
    for name, calls, success in rows:
        print(f"  {name:<26s} {calls:>16d} {str(bool(success)):>14s}")
    print("\nNote: the RL row excludes the one-off training cost, exactly as in the paper —")
    print("once trained, the policy is reused for every new specification group.")
    print("The supervised row likewise excludes its offline dataset generation.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=200,
                        help="RL training episodes (default 200; paper uses 35000)")
    parser.add_argument("--search-budget", type=int, default=400,
                        help="simulator-call budget for the search baselines")
    parser.add_argument("--sl-samples", type=int, default=600,
                        help="training designs for the supervised sizer")
    parser.add_argument("--sl-epochs", type=int, default=60,
                        help="training epochs for the supervised sizer")
    main(parser.parse_args())
