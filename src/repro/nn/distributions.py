"""Probability distributions for the discrete sizing action space.

The paper uses a discrete action space in which every tunable device
parameter is either increased by one step, kept, or decreased by one step at
each time step.  The policy head therefore outputs an ``M x 3`` matrix of
logits (``M`` = number of tunable parameters), interpreted row-wise as
independent categorical distributions.  :class:`MultiCategorical` wraps that
matrix and provides sampling, log-probabilities and entropy — all the
quantities PPO needs (Eq. 3).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def sample_from_probs(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Inverse-CDF categorical sampling over the last axis of ``probs``.

    One draw block of shape ``probs.shape[:-1] + (1,)`` is consumed from
    ``rng``.  This is the single sampling implementation behind
    :class:`MultiCategorical`, :class:`BatchedMultiCategorical`, and the
    policy's grad-free ``select_action`` fast paths — sharing it is what
    keeps their "same draws from the same rng" parity contract safe against
    drift.
    """
    cumulative = probs.cumsum(axis=-1)
    draws = rng.random(size=probs.shape[:-1] + (1,))
    if probs.shape[-1] <= 1:
        return np.zeros(probs.shape[:-1], dtype=np.int64)
    return (draws > cumulative[..., :-1]).sum(axis=-1).astype(np.int64)


class Categorical:
    """Single categorical distribution over ``K`` classes from logits."""

    def __init__(self, logits: Tensor) -> None:
        if logits.ndim != 1:
            raise ValueError(f"Categorical expects 1-D logits, got shape {logits.shape}")
        self.logits = logits
        self._log_probs = logits.log_softmax(axis=-1)

    @property
    def probs(self) -> np.ndarray:
        return np.exp(self._log_probs.data)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(len(self.probs), p=self.probs))

    def log_prob(self, action: int) -> Tensor:
        return self._log_probs[int(action)]

    def entropy(self) -> Tensor:
        probs = Tensor(self.probs)
        return -(probs * self._log_probs).sum()

    def mode(self) -> int:
        return int(np.argmax(self.probs))


class MultiCategorical:
    """Independent categorical distribution per device parameter.

    Parameters
    ----------
    logits:
        ``(M, K)`` tensor of unnormalized log-probabilities; in this project
        ``K = 3`` (decrease / keep / increase).
    """

    def __init__(self, logits: Tensor) -> None:
        if logits.ndim != 2:
            raise ValueError(f"MultiCategorical expects 2-D logits, got shape {logits.shape}")
        self.logits = logits
        self._log_probs = logits.log_softmax(axis=-1)

    @property
    def num_parameters(self) -> int:
        return self.logits.shape[0]

    @property
    def num_choices(self) -> int:
        return self.logits.shape[1]

    @property
    def probs(self) -> np.ndarray:
        """Row-stochastic ``(M, K)`` probability matrix (detached)."""
        return np.exp(self._log_probs.data)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sample one choice index per parameter; returns an ``(M,)`` int array."""
        return sample_from_probs(self.probs, rng)

    def mode(self) -> np.ndarray:
        """Greedy (most likely) choice per parameter."""
        return np.argmax(self.probs, axis=1).astype(np.int64)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Joint log-probability of a full action vector (sum over rows)."""
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.num_parameters,):
            raise ValueError(
                f"actions must have shape ({self.num_parameters},), got {actions.shape}"
            )
        if np.any(actions < 0) or np.any(actions >= self.num_choices):
            raise ValueError("action index out of range")
        rows = np.arange(self.num_parameters)
        return self._log_probs[rows, actions].sum()

    def entropy(self) -> Tensor:
        """Total entropy (sum of per-parameter entropies)."""
        probs = Tensor(self.probs)
        return -(probs * self._log_probs).sum()

    def kl_divergence(self, other: "MultiCategorical") -> float:
        """KL(self || other), summed over parameters (detached diagnostic)."""
        p = self.probs
        log_p = self._log_probs.data
        log_q = other._log_probs.data
        return float((p * (log_p - log_q)).sum())


class BatchedMultiCategorical:
    """A batch of :class:`MultiCategorical` distributions, one per environment.

    Wraps ``(B, M, K)`` logits — the output of the policy's batched forward
    pass over a :class:`~repro.env.spaces.BatchedObservation` — and performs
    sampling, log-probabilities and entropies for the whole batch with single
    array operations, instead of one Python-level distribution per
    environment.
    """

    def __init__(self, logits: Tensor) -> None:
        if logits.ndim != 3:
            raise ValueError(
                f"BatchedMultiCategorical expects (B, M, K) logits, got shape {logits.shape}"
            )
        self.logits = logits
        self._log_probs = logits.log_softmax(axis=-1)

    @property
    def batch_size(self) -> int:
        return self.logits.shape[0]

    @property
    def num_parameters(self) -> int:
        return self.logits.shape[1]

    @property
    def num_choices(self) -> int:
        return self.logits.shape[2]

    @property
    def probs(self) -> np.ndarray:
        """Row-stochastic ``(B, M, K)`` probability tensor (detached)."""
        return np.exp(self._log_probs.data)

    def __getitem__(self, index: int) -> MultiCategorical:
        """Per-environment distribution (shares the batched graph's logits)."""
        return MultiCategorical(self.logits[index])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """One ``(B, M)`` action matrix via inverse-CDF sampling."""
        return sample_from_probs(self.probs, rng)

    def mode(self) -> np.ndarray:
        """Greedy ``(B, M)`` action matrix."""
        return np.argmax(self.probs, axis=-1).astype(np.int64)

    def log_prob(self, actions: np.ndarray) -> Tensor:
        """Per-environment joint log-probabilities, shape ``(B,)``."""
        actions = np.asarray(actions, dtype=np.int64)
        expected = (self.batch_size, self.num_parameters)
        if actions.shape != expected:
            raise ValueError(f"actions must have shape {expected}, got {actions.shape}")
        if np.any(actions < 0) or np.any(actions >= self.num_choices):
            raise ValueError("action index out of range")
        batch_index = np.arange(self.batch_size)[:, None]
        param_index = np.arange(self.num_parameters)[None, :]
        return self._log_probs[batch_index, param_index, actions].sum(axis=-1)

    def entropy(self) -> Tensor:
        """Per-environment total entropies, shape ``(B,)``."""
        probs = Tensor(self.probs)
        return -(probs * self._log_probs).sum(axis=(-2, -1))
