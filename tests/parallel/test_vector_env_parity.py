"""Vector/sequential parity: the vector path must be bit-for-bit sequential.

``VectorCircuitEnv.from_env(env, num_envs=k, seed=s)`` sub-environment ``i``
must reproduce a sequential ``CircuitDesignEnv`` seeded ``s + i`` exactly —
identical observations, rewards, termination flags and terminal FoMs — under
identical action sequences.  This is the guarantee that makes ``num_envs`` a
pure throughput knob.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_env
from repro.parallel import SimulationCache, VectorCircuitEnv

NUM_ENVS = 4
STEPS = 25


def _observations_equal(vector_row, sequential):
    assert np.array_equal(vector_row.node_features, sequential.node_features)
    assert np.array_equal(vector_row.static_node_features, sequential.static_node_features)
    assert np.array_equal(vector_row.adjacency, sequential.adjacency)
    assert np.array_equal(vector_row.spec_features, sequential.spec_features)
    assert np.array_equal(vector_row.normalized_parameters, sequential.normalized_parameters)
    assert vector_row.measured_specs == sequential.measured_specs
    assert vector_row.target_specs == sequential.target_specs


def _run_parity(env_id: str, seed: int = 123) -> None:
    vector_env = make_env(env_id, seed=seed, num_envs=NUM_ENVS)
    assert isinstance(vector_env, VectorCircuitEnv)
    sequential = [make_env(env_id, seed=seed + i) for i in range(NUM_ENVS)]

    batch = vector_env.reset()
    reference = [env.reset() for env in sequential]
    for i in range(NUM_ENVS):
        _observations_equal(batch[i], reference[i])

    # Drive both sides with identical per-env action streams; on episode end
    # the vector env autoresets, which the sequential side mirrors manually.
    action_rngs = [np.random.default_rng(10_000 + seed + i) for i in range(NUM_ENVS)]
    for _ in range(STEPS):
        actions = np.stack(
            [vector_env.action_space.sample(rng) for rng in action_rngs]
        )
        batch, rewards, dones, infos = vector_env.step(actions)
        for i, env in enumerate(sequential):
            observation, reward, done, info = env.step(actions[i])
            assert reward == rewards[i]
            assert done == dones[i]
            assert info["specs"] == infos[i]["specs"]
            assert info["goal_reached"] == infos[i]["goal_reached"]
            assert info["met_fraction"] == infos[i]["met_fraction"]
            if "figure_of_merit" in info:
                assert info["figure_of_merit"] == infos[i]["figure_of_merit"]
            if done:
                _observations_equal(infos[i]["terminal_observation"], observation)
                observation = env.reset()
            _observations_equal(batch[i], observation)


class TestBitwiseParity:
    def test_opamp_p2s(self):
        _run_parity("opamp-p2s-v0")

    def test_rf_pa_coarse(self):
        _run_parity("rf_pa-coarse-v0")

    def test_rf_pa_fom_terminal_foms(self):
        """FoM mode: per-step and terminal figures of merit match exactly."""
        seed = 7
        vector_env = make_env("rf_pa-fom-v0", seed=seed, num_envs=NUM_ENVS)
        sequential = [make_env("rf_pa-fom-v0", seed=seed + i) for i in range(NUM_ENVS)]
        vector_env.reset()
        for env in sequential:
            env.reset()
        rng = np.random.default_rng(99)
        sequential_done = [False] * NUM_ENVS
        for _ in range(vector_env.max_steps):
            actions = np.stack(
                [vector_env.action_space.sample(rng) for _ in range(NUM_ENVS)]
            )
            _, _, dones, infos = vector_env.step(actions)
            for i, env in enumerate(sequential):
                if sequential_done[i]:
                    continue
                _, _, done, info = env.step(actions[i])
                assert info["figure_of_merit"] == infos[i]["figure_of_merit"]
                sequential_done[i] = done
        # FoM episodes only end on the step budget, so every env terminated
        # on the same (final) step with the same terminal FoM.
        assert all(sequential_done)


class TestSharedCacheNeutrality:
    def test_cache_does_not_change_results(self):
        """A shared cache must be invisible in the numbers."""
        seed = 5
        cached = make_env("opamp-p2s-v0", seed=seed, num_envs=3, cache_size=256)
        uncached = VectorCircuitEnv.from_env(
            make_env("opamp-p2s-v0", seed=seed), num_envs=3, seed=seed, cache_size=None
        )
        batch_a = cached.reset()
        batch_b = uncached.reset()
        rng = np.random.default_rng(0)
        for _ in range(10):
            actions = np.stack([cached.action_space.sample(rng) for _ in range(3)])
            batch_a, rewards_a, dones_a, _ = cached.step(actions)
            batch_b, rewards_b, dones_b, _ = uncached.step(actions)
            assert np.array_equal(rewards_a, rewards_b)
            assert np.array_equal(dones_a, dones_b)
            assert np.array_equal(batch_a.spec_features, batch_b.spec_features)
        assert cached.cache is not None
        assert cached.cache.stats.hits >= 2  # shared center reset, at least


class TestVectorEnvApi:
    def test_num_envs_one_is_sequential(self):
        env = make_env("opamp-p2s-v0", seed=0, num_envs=1)
        assert not isinstance(env, VectorCircuitEnv)

    def test_num_envs_one_with_cache_wraps_simulator(self):
        env = make_env("opamp-p2s-v0", seed=0, num_envs=1, cache_size=64)
        assert isinstance(env.simulator, SimulationCache)
        env.reset()
        env.reset()
        assert env.simulator.stats.hits == 1

    def test_invalid_num_envs(self):
        with pytest.raises(ValueError):
            make_env("opamp-p2s-v0", num_envs=0)

    def test_target_broadcast_and_per_env(self):
        venv = make_env("opamp-p2s-v0", seed=0, num_envs=3)
        target = venv.envs[0].sample_target()
        batch = venv.reset(target_specs=target)
        assert all(specs == dict(target) for specs in batch.target_specs)
        targets = venv.sample_targets()
        batch = venv.reset(target_specs=targets)
        assert batch.target_specs == [dict(t) for t in targets]
        with pytest.raises(ValueError):
            venv.reset(target_specs=targets[:2])

    def test_initial_parameter_matrix(self):
        venv = make_env("opamp-p2s-v0", seed=0, num_envs=2)
        space = venv.benchmark.design_space
        matrix = np.stack([space.lower_bounds, space.upper_bounds])
        venv.reset(initial_parameters=matrix)
        assert np.array_equal(venv.parameter_values, space.snap_vector(matrix))

    def test_step_shape_validation(self):
        venv = make_env("opamp-p2s-v0", seed=0, num_envs=2)
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.ones(venv.num_parameters, dtype=np.int64))

    def test_autoreset_off_raises_on_finished_episode(self):
        venv = VectorCircuitEnv.from_env(
            make_env("rf_pa-fom-v0", seed=0), num_envs=2, seed=0, autoreset=False
        )
        venv.reset()
        noop = np.stack([venv.action_space.no_op()] * 2)
        for _ in range(venv.max_steps):
            _, _, dones, _ = venv.step(noop)
        assert dones.all()
        with pytest.raises(RuntimeError):
            venv.step(noop)

    def test_mixed_topologies_rejected(self):
        opamp = make_env("opamp-p2s-v0", seed=0)
        rf_pa = make_env("rf_pa-fine-v0", seed=0)
        with pytest.raises(ValueError):
            VectorCircuitEnv([opamp, rf_pa])
