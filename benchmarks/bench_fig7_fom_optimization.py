"""Fig. 7 — figure-of-merit optimization of the RF PA.

The FoM is ``P + 3·E`` (paper, Sec. 4).  RL methods are retrained with the
FoM reward against the coarse simulator and scored on the fine simulator;
GA and BO maximize the FoM directly on the fine simulator.  The paper's
ordering is GAT-FC ≈ GCN-FC > RL baselines > BO > GA with final values
3.25 / 3.18 / ~2.9 / 2.61 / 2.53.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fom_optimizer, run_fom_training

#: Upper bound of the reachable FoM with this substrate:
#: Pout <= (Vdd-Vknee)^2 / (2 RL) ~ 3.07 W and E < 1.
FOM_UPPER_BOUND = 3.1 + 3.0


@pytest.mark.parametrize("method", ["gcn_fc", "baseline_a"])
def test_fig7_fom_rl_training(benchmark, scale, method):
    def run():
        return run_fom_training(method, scale=scale, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 < result.best_fom < FOM_UPPER_BOUND
    assert result.history.records
    benchmark.extra_info.update(
        {
            "method": method,
            "best_fom": float(result.best_fom),
            "final_specs": {k: float(v) for k, v in result.final_specs.items()},
        }
    )


@pytest.mark.parametrize("method", ["genetic_algorithm", "bayesian_optimization"])
def test_fig7_fom_optimizers(benchmark, method):
    def run():
        return run_fom_optimizer(method, seed=0, budget=120)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.0 < result.best_fom < FOM_UPPER_BOUND
    assert result.num_simulations > 10
    benchmark.extra_info.update(
        {
            "method": method,
            "best_fom": float(result.best_fom),
            "num_simulations": int(result.num_simulations),
        }
    )
