"""Non-RL sizing baselines: genetic algorithm, Bayesian optimization, SL, random."""

from repro.baselines.base import (
    OptimizationResult,
    OptimizationTrace,
    SizingOptimizer,
    SizingProblem,
)
from repro.baselines.bayesian import (
    BayesianOptimization,
    BayesianOptimizationConfig,
    GaussianProcess,
    expected_improvement,
)
from repro.baselines.genetic import GeneticAlgorithm, GeneticAlgorithmConfig
from repro.baselines.random_search import RandomSearch, RandomSearchConfig
from repro.baselines.supervised import (
    SupervisedDesignResult,
    SupervisedSizer,
    SupervisedSizerConfig,
)

__all__ = [
    "BayesianOptimization",
    "BayesianOptimizationConfig",
    "GaussianProcess",
    "GeneticAlgorithm",
    "GeneticAlgorithmConfig",
    "OptimizationResult",
    "OptimizationTrace",
    "RandomSearch",
    "RandomSearchConfig",
    "SizingOptimizer",
    "SizingProblem",
    "SupervisedDesignResult",
    "SupervisedSizer",
    "SupervisedSizerConfig",
    "expected_improvement",
]
