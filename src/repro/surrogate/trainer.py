"""Fitting, calibrating, and persisting :class:`SpecSurrogate` models.

:func:`train_surrogate` turns a harvested corpus into a ready model in one
deterministic call: split, standardize on the training rows, fit each
ensemble member full-batch with Adam on MSE, then calibrate the trust gate
on the held-out rows (worst-spec absolute error in standardized units — the
same scale the gate thresholds disagreement on).

:func:`save_surrogate` / :func:`load_surrogate` mirror the policy
checkpoint container (:mod:`repro.agents.checkpoint`): a single ``.npz``
with one JSON metadata entry and one array per learned tensor, written
atomically with no timestamps so identical models produce identical bytes
and a model trained in one process serves bitwise-identically in the next.
"""

from __future__ import annotations

import json
import os
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.nn.functional import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.surrogate.dataset import SurrogateDataset
from repro.surrogate.model import SpecSurrogate, SurrogateConfig

#: Identifies a repro surrogate checkpoint among arbitrary ``.npz`` files.
SURROGATE_FORMAT = "repro.surrogate-checkpoint"

#: Bump when the on-disk layout changes incompatibly.
SURROGATE_VERSION = 1

_METADATA_KEY = "__surrogate__"
_ARRAY_PREFIX = "array."


class SurrogateError(RuntimeError):
    """A surrogate checkpoint is missing, corrupt, or incompatible."""


def _repro_version() -> str:
    from repro import __version__

    return __version__


@dataclass
class TrainReport:
    """What one :func:`train_surrogate` call did (JSON-serializable)."""

    circuit: str = ""
    num_points: int = 0
    num_train: int = 0
    num_val: int = 0
    epochs: int = 0
    final_train_loss: float = float("nan")
    #: Held-out worst-spec absolute error (standardized units), mean / max.
    val_error_mean: float = float("nan")
    val_error_max: float = float("nan")
    #: Calibrated gate threshold (None: the gate rejects everything).
    threshold: Optional[float] = None
    #: Fraction of held-out queries the calibrated gate accepts.
    val_accept_rate: float = 0.0
    corpus: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "num_points": self.num_points,
            "num_train": self.num_train,
            "num_val": self.num_val,
            "epochs": self.epochs,
            "final_train_loss": self.final_train_loss,
            "val_error_mean": self.val_error_mean,
            "val_error_max": self.val_error_max,
            "threshold": self.threshold,
            "val_accept_rate": self.val_accept_rate,
            "corpus": dict(self.corpus),
        }


def split_dataset(
    dataset: SurrogateDataset, validation_fraction: float, seed: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic (train_indices, val_indices) permutation split."""
    count = len(dataset)
    if count < 2:
        raise ValueError(f"need at least 2 corpus points to train, got {count}")
    order = np.random.default_rng(np.random.SeedSequence([seed, count])).permutation(count)
    num_val = min(count - 1, max(1, int(round(count * validation_fraction))))
    return order[num_val:], order[:num_val]


def train_surrogate(
    dataset: SurrogateDataset,
    config: Optional[SurrogateConfig] = None,
    seed: int = 0,
) -> Tuple[SpecSurrogate, TrainReport]:
    """Fit and gate-calibrate a fresh surrogate on a harvested corpus.

    Deterministic: the same dataset, config and seed produce bitwise
    identical models (the split, every member initialization and the Adam
    trajectory are all driven by ``seed``).
    """
    config = config or SurrogateConfig()
    surrogate = SpecSurrogate(
        circuit=dataset.circuit,
        spec_names=dataset.spec_names,
        num_inputs=dataset.num_inputs,
        config=config,
        seed=seed,
    )
    train_idx, val_idx = split_dataset(dataset, config.validation_fraction, seed)
    train_x, train_y = dataset.parameters[train_idx], dataset.specs[train_idx]
    val_x, val_y = dataset.parameters[val_idx], dataset.specs[val_idx]

    surrogate.set_normalization(
        train_x.mean(axis=0), train_x.std(axis=0), train_y.mean(axis=0), train_y.std(axis=0)
    )
    train_z = surrogate.standardize_inputs(train_x)
    target_z = Tensor((train_y - surrogate.output_mean) / surrogate.output_std)

    final_loss = float("nan")
    for member in surrogate.members:
        optimizer = Adam(
            member.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        inputs = Tensor(train_z)
        for _ in range(config.epochs):
            optimizer.zero_grad()
            loss = mse_loss(member(inputs), target_z)
            loss.backward()
            optimizer.step()
            final_loss = float(loss.data)
    surrogate.num_train_points = int(train_idx.size)

    # Calibrate on held-out rows: disagreement (the gate's input) against the
    # worst-spec absolute error of the mean prediction, both standardized.
    stacked = surrogate.predict_standardized(val_x)
    val_target_z = (val_y - surrogate.output_mean) / surrogate.output_std
    errors = np.abs(stacked.mean(axis=0) - val_target_z).max(axis=1)
    disagreement = stacked.std(axis=0).max(axis=-1)
    threshold = surrogate.gate.calibrate(disagreement, errors)
    accepted = surrogate.trusted(disagreement)

    report = TrainReport(
        circuit=dataset.circuit,
        num_points=len(dataset),
        num_train=int(train_idx.size),
        num_val=int(val_idx.size),
        epochs=config.epochs,
        final_train_loss=final_loss,
        val_error_mean=float(errors.mean()),
        val_error_max=float(errors.max()),
        threshold=threshold,
        val_accept_rate=float(accepted.mean()) if accepted.size else 0.0,
        corpus=dataset.report.to_dict(),
    )
    return surrogate, report


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def save_surrogate(
    path: Union[str, Path],
    surrogate: SpecSurrogate,
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a surrogate (weights + gate + rebuild metadata) to ``path``.

    The file content is a pure function of the model — no timestamps — and
    the write is atomic (temp file + ``os.replace``), matching the policy
    checkpoint contract.
    """
    path = Path(path)
    metadata: Dict[str, Any] = {
        "format": SURROGATE_FORMAT,
        "version": SURROGATE_VERSION,
        "repro_version": _repro_version(),
        "circuit": surrogate.circuit,
        "spec_names": list(surrogate.spec_names),
        "num_inputs": surrogate.num_inputs,
        "seed": surrogate.seed,
        "config": surrogate.config.to_dict(),
        "num_train_points": surrogate.num_train_points,
        "threshold": surrogate.gate.threshold,
        "extra": dict(extra) if extra else {},
    }
    arrays = {
        f"{_ARRAY_PREFIX}{name}": value for name, value in surrogate.state_arrays().items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + f".tmp-{os.getpid()}")
    try:
        with open(scratch, "wb") as handle:
            np.savez(
                handle,
                **{_METADATA_KEY: np.array(json.dumps(metadata, sort_keys=True))},
                **arrays,
            )
        os.replace(scratch, path)
    finally:
        if scratch.exists():  # pragma: no cover - only on a failed write
            scratch.unlink()
    return path


def load_surrogate(path: Union[str, Path]) -> SpecSurrogate:
    """Rebuild a surrogate saved by :func:`save_surrogate`.

    The restored model predicts bitwise-identically to the saved one and
    carries its calibrated gate, so a tier built from a loaded checkpoint
    makes exactly the accept/reject decisions of the training process.
    """
    path = Path(path)
    if not path.exists():
        raise SurrogateError(f"surrogate file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SurrogateError(f"{path} is not a readable surrogate archive: {exc}") from exc
    try:
        if _METADATA_KEY not in archive.files:
            raise SurrogateError(
                f"{path} is a .npz archive but not a repro surrogate checkpoint "
                f"(missing its '{_METADATA_KEY}' metadata entry)"
            )
        try:
            metadata = json.loads(str(archive[_METADATA_KEY][()]))
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise SurrogateError(f"{path} has a corrupt metadata entry: {exc}") from exc
        if not isinstance(metadata, dict) or metadata.get("format") != SURROGATE_FORMAT:
            raise SurrogateError(f"{path} metadata does not identify a '{SURROGATE_FORMAT}' file")
        version = metadata.get("version")
        if version != SURROGATE_VERSION:
            raise SurrogateError(
                f"{path} uses surrogate format version {version!r}; this repro "
                f"release reads version {SURROGATE_VERSION}"
            )
        saved_with = metadata.get("repro_version")
        if saved_with != _repro_version():
            warnings.warn(
                f"surrogate {path.name} was written by repro {saved_with}, "
                f"loading with repro {_repro_version()}",
                stacklevel=2,
            )
        arrays = {
            name[len(_ARRAY_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_ARRAY_PREFIX)
        }
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SurrogateError(f"{path} has a corrupt array archive: {exc}") from exc
    finally:
        archive.close()

    try:
        config = SurrogateConfig.from_dict(metadata["config"])
        surrogate = SpecSurrogate(
            circuit=metadata["circuit"],
            spec_names=metadata["spec_names"],
            num_inputs=int(metadata["num_inputs"]),
            config=config,
            seed=int(metadata.get("seed", 0)),
        )
        surrogate.load_state_arrays(arrays)
    except (KeyError, TypeError, ValueError) as exc:
        raise SurrogateError(f"{path} does not describe a loadable surrogate: {exc}") from exc
    surrogate.num_train_points = int(metadata.get("num_train_points", 0))
    threshold = metadata.get("threshold")
    surrogate.gate.threshold = None if threshold is None else float(threshold)
    return surrogate
