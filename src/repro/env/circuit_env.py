"""The pre-layout circuit design environment (Fig. 2 of the paper).

:class:`CircuitDesignEnv` is a gym-style episodic environment:

* ``reset()`` samples (or accepts) a group of desired specifications, resets
  the netlist to its initial sizing, runs the simulator once and returns the
  first observation;
* ``step(action)`` applies the ``M``-vector of discrete tuning actions
  through the data processor, re-simulates, computes the Eq. (1) (or FoM)
  reward and reports whether the episode terminated (all specifications met,
  or the step budget exhausted — 50 steps for the op-amp, 30 for the RF PA).

The same environment class serves the op-amp and the RF PA; only the
benchmark, the simulator, and the reward function differ (see
:mod:`repro.env.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.env.data_processor import DataProcessor
from repro.env.reward import FomReward, P2SReward, RewardOutcome
from repro.env.spaces import ActionSpace, Observation
from repro.simulation.base import CircuitSimulator

RewardFunction = Union[P2SReward, FomReward]


@dataclass
class StepRecord:
    """One step of an episode trajectory (used for Fig. 5 / Fig. 6 plots)."""

    step: int
    parameters: np.ndarray
    specs: Dict[str, float]
    reward: float
    goal_reached: bool


@dataclass
class EpisodeTrajectory:
    """Complete record of one episode."""

    target_specs: Dict[str, float]
    records: List[StepRecord] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.records)

    @property
    def success(self) -> bool:
        return any(record.goal_reached for record in self.records)

    @property
    def total_reward(self) -> float:
        return float(sum(record.reward for record in self.records))

    def spec_series(self, name: str) -> np.ndarray:
        """Per-step values of one specification (a Fig. 5/6 curve)."""
        return np.array([record.specs[name] for record in self.records])


class CircuitDesignEnv:
    """Episodic P2S / FoM environment around a circuit benchmark.

    Parameters
    ----------
    benchmark:
        Circuit definition (netlist, design space, spec space).
    simulator:
        Evaluates the netlist into intermediate specifications at each step.
    reward_fn:
        :class:`P2SReward` (Eq. 1) or :class:`FomReward`.
    max_steps:
        Episode step budget (the paper uses 50 for the op-amp, 30 for the PA).
    initial_sizing:
        ``"center"`` starts every episode from the mid-range sizing,
        ``"random"`` samples a random grid point per episode.
    goal_tolerance:
        Relative slack used when judging whether a spec is met.
    seed:
        Seed for the environment's private RNG (spec sampling, random resets).
    """

    def __init__(
        self,
        benchmark: CircuitBenchmark,
        simulator: CircuitSimulator,
        reward_fn: Optional[RewardFunction] = None,
        max_steps: Optional[int] = None,
        initial_sizing: str = "center",
        goal_tolerance: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if initial_sizing not in {"center", "random"}:
            raise ValueError("initial_sizing must be 'center' or 'random'")
        self.benchmark = benchmark
        self.simulator = simulator
        self.reward_fn = reward_fn or P2SReward(benchmark.spec_space)
        if max_steps is None:
            max_steps = benchmark.metadata.get("max_episode_steps", 50)
        self.max_steps = int(max_steps)
        if self.max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.initial_sizing = initial_sizing
        self.goal_tolerance = goal_tolerance
        self.rng = np.random.default_rng(seed)
        self.action_space = ActionSpace(benchmark.num_parameters)

        self._netlist = benchmark.fresh_netlist()
        self._processor = DataProcessor(benchmark, self._netlist)
        self._targets: Dict[str, float] = {}
        self._measured: Dict[str, float] = {}
        self._step_count = 0
        self._done = True
        self._trajectory: Optional[EpisodeTrajectory] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def data_processor(self) -> DataProcessor:
        return self._processor

    @property
    def num_parameters(self) -> int:
        return self.benchmark.num_parameters

    @property
    def spec_feature_dimension(self) -> int:
        return self._processor.spec_feature_dimension

    @property
    def node_feature_dimension(self) -> int:
        return self._processor.node_feature_dimension

    @property
    def num_graph_nodes(self) -> int:
        return self._processor.num_graph_nodes

    @property
    def target_specs(self) -> Dict[str, float]:
        return dict(self._targets)

    @property
    def measured_specs(self) -> Dict[str, float]:
        return dict(self._measured)

    @property
    def parameter_values(self) -> np.ndarray:
        return self._processor.parameter_values

    @property
    def trajectory(self) -> Optional[EpisodeTrajectory]:
        """Trajectory of the current (or last) episode."""
        return self._trajectory

    @property
    def is_fom_mode(self) -> bool:
        return isinstance(self.reward_fn, FomReward)

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def sample_target(self) -> Dict[str, float]:
        """Draw a target spec group from the Table 1 sampling space."""
        return self.benchmark.spec_space.sample(self.rng)

    def reset(
        self,
        target_specs: Optional[Mapping[str, float]] = None,
        initial_parameters: Optional[np.ndarray] = None,
    ) -> Observation:
        """Start a new episode and return the initial observation."""
        if target_specs is None:
            target_specs = self.sample_target()
        self._targets = {name: float(value) for name, value in dict(target_specs).items()}

        if initial_parameters is not None:
            start = np.asarray(initial_parameters, dtype=np.float64)
        elif self.initial_sizing == "center":
            start = self.benchmark.design_space.center()
        else:
            start = self.benchmark.design_space.sample(self.rng)
        self._processor.set_parameters(start)

        result = self.simulator.simulate(self._netlist)
        self._measured = dict(result.specs)
        self._step_count = 0
        self._done = False
        self._trajectory = EpisodeTrajectory(target_specs=dict(self._targets))
        return self._processor.observation(self._measured, self._targets)

    def step(self, action: np.ndarray) -> tuple[Observation, float, bool, Dict[str, object]]:
        """Apply one action vector; returns ``(observation, reward, done, info)``."""
        if self._done:
            raise RuntimeError("step() called on a finished episode; call reset() first")
        action = np.asarray(action, dtype=np.int64)
        if not self.action_space.contains(action):
            raise ValueError(
                f"invalid action of shape {action.shape}; expected "
                f"({self.num_parameters},) with entries in [0, 2]"
            )
        self._step_count += 1
        parameters = self._processor.apply_actions(action)
        result = self.simulator.simulate(self._netlist)
        self._measured = dict(result.specs)
        outcome: RewardOutcome = self.reward_fn(
            self._measured, self._targets, valid=result.valid
        )
        goal_reached = outcome.goal_reached and not self.is_fom_mode
        self._done = bool(goal_reached or self._step_count >= self.max_steps)

        record = StepRecord(
            step=self._step_count,
            parameters=parameters.copy(),
            specs=dict(self._measured),
            reward=outcome.reward,
            goal_reached=goal_reached,
        )
        assert self._trajectory is not None
        self._trajectory.records.append(record)

        observation = self._processor.observation(self._measured, self._targets)
        info: Dict[str, object] = {
            "step": self._step_count,
            "specs": dict(self._measured),
            "goal_reached": goal_reached,
            "met_fraction": outcome.met_fraction,
            "normalized_errors": outcome.normalized_errors,
            "simulation_valid": result.valid,
        }
        if self.is_fom_mode:
            info["figure_of_merit"] = self.reward_fn.figure_of_merit(self._measured)
        return observation, float(outcome.reward), self._done, info
