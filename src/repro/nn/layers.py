"""Dense layers used across the policy, value, and baseline networks.

The paper's multimodal policy is built from three dense building blocks in
addition to the graph layers (see :mod:`repro.nn.graph_layers`):

* an FCNN that embeds the desired/intermediate specification vector,
* final fully connected (FC) layers that merge the graph embedding and the
  specification embedding, and
* the actor/critic output heads.

All of these are compositions of :class:`Linear` with activations, which the
:class:`MLP` convenience class assembles.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.initializers import get_initializer, zeros
from repro.nn.module import Module
from repro.nn.tensor import Tensor

Activation = Callable[[Tensor], Tensor]


def identity(x: Tensor) -> Tensor:
    """No-op activation used for linear output heads."""
    return x


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


_ACTIVATIONS: dict[str, Activation] = {
    "identity": identity,
    "linear": identity,
    "tanh": tanh,
    "relu": relu,
    "sigmoid": sigmoid,
}


def _array_identity(x: np.ndarray) -> np.ndarray:
    return x


def _array_tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _array_relu(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.relu exactly: multiply by the boolean mask.
    return x * (x > 0)


def _array_sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


#: Pure-numpy twins of :data:`_ACTIVATIONS`, used by the grad-free inference
#: fast path (:meth:`MLP.forward_array`).  Each formula mirrors the forward
#: arithmetic of the corresponding ``Tensor`` op exactly so inference-mode
#: outputs are bitwise identical to the grad-recording forward.
_ARRAY_ACTIVATIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": _array_identity,
    "linear": _array_identity,
    "tanh": _array_tanh,
    "relu": _array_relu,
    "sigmoid": _array_sigmoid,
}


def get_activation(name: str) -> Activation:
    """Resolve an activation function from its name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown activation '{name}', expected one of {sorted(_ACTIVATIONS)}"
        ) from exc


def softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Pure-numpy twin of ``Tensor.softmax`` (bitwise-equal arithmetic)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax_array(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Pure-numpy twin of ``Tensor.log_softmax`` (bitwise-equal arithmetic)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    return shifted - log_sum


def get_array_activation(name: str) -> Callable[[np.ndarray], np.ndarray]:
    """Resolve the pure-numpy twin of an activation (inference fast path)."""
    try:
        return _ARRAY_ACTIVATIONS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown activation '{name}', expected one of {sorted(_ARRAY_ACTIVATIONS)}"
        ) from exc


class Linear(Module):
    """Affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    rng:
        Random generator used for weight initialization, so every network in
        an experiment is reproducible from a single seed.
    init:
        Initializer name (``xavier``, ``he``, ``orthogonal``).
    bias:
        Whether to learn an additive bias.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "xavier",
        gain: float = 1.0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        initializer = get_initializer(init)
        if init == "he":
            self.weight = initializer(in_features, out_features, rng)
        else:
            self.weight = initializer(in_features, out_features, rng, gain=gain)
        self.use_bias = bias
        if bias:
            self.bias = zeros(out_features)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Grad-free forward over a plain array (same arithmetic as ``forward``)."""
        out = x @ self.weight.data
        if self.use_bias:
            out = out + self.bias.data
        return out


class MLP(Module):
    """Multi-layer perceptron (the paper's "FCNN" and "FC" blocks).

    Parameters
    ----------
    layer_sizes:
        Sequence ``[in, h1, ..., out]`` of layer widths; at least two entries.
    hidden_activation:
        Activation between hidden layers (paper uses ``tanh``).
    output_activation:
        Activation after the last layer (``identity`` for logits/values).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: np.random.Generator,
        hidden_activation: str = "tanh",
        output_activation: str = "identity",
        init: str = "xavier",
        output_gain: Optional[float] = None,
    ) -> None:
        super().__init__()
        if len(layer_sizes) < 2:
            raise ValueError("MLP requires at least an input and an output size")
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.hidden_activation = get_activation(hidden_activation)
        self.output_activation = get_activation(output_activation)
        self._hidden_activation_array = get_array_activation(hidden_activation)
        self._output_activation_array = get_array_activation(output_activation)
        self.layers: list[Linear] = []
        for index, (fan_in, fan_out) in enumerate(zip(self.layer_sizes[:-1], self.layer_sizes[1:])):
            is_last = index == len(self.layer_sizes) - 2
            gain = output_gain if (is_last and output_gain is not None) else 1.0
            layer = Linear(fan_in, fan_out, rng, init=init, gain=gain)
            self.layers.append(layer)
            self.register_module(f"layer_{index}", layer)

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for index, layer in enumerate(self.layers):
            out = layer(out)
            if index < len(self.layers) - 1:
                out = self.hidden_activation(out)
        return self.output_activation(out)

    def forward_array(self, x: np.ndarray) -> np.ndarray:
        """Grad-free forward over a plain array, bitwise equal to ``forward``."""
        out = x
        for index, layer in enumerate(self.layers):
            out = layer.forward_array(out)
            if index < len(self.layers) - 1:
                out = self._hidden_activation_array(out)
        return self._output_activation_array(out)


class Sequential(Module):
    """Apply child modules in order (used to compose custom trunks)."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_list = list(modules)
        for index, module in enumerate(modules):
            self.register_module(f"module_{index}", module)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for module in self.children_list:
            out = module(out)
        return out
