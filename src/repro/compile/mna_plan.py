"""Batched MNA plans: stacked stamping and solving of same-topology circuits.

The interpreted :class:`~repro.simulation.mna.MnaCircuit` stamps and solves
one ``(n, n)`` system per circuit per frequency (``np.linalg.solve`` inside
the AC loop).  A :class:`BatchedMNAPlan` lifts this: the sparsity pattern,
node ordering and *stamp order* are computed once at plan time from the
circuit structure, and each evaluation restamps only the parameter-dependent
entries of one stacked ``(K, F, n, n)`` tensor (K circuits × F frequencies)
that is solved in a single stacked — and chunked — ``np.linalg.solve``.

Faithfulness contract
---------------------
Results are bitwise identical to calling ``ac_analysis`` /
``dc_operating_point`` per circuit:

* stamps are replayed as an *ordered* record list mirroring the exact
  element order of the interpreted loops (resistors → capacitors → VCCS →
  linearized MOSFETs → sources → branch rows), so per-entry floating-point
  accumulation order is preserved — a const-prefix + frequency-add
  decomposition would reorder additions on shared entries and break parity;
* frequency-dependent terms are computed as ``(1j * omega) * value``
  elementwise, matching the scalar association;
* a stacked ``np.linalg.solve`` over ``(N, n, n)`` is bitwise identical to
  the per-slice solves (LAPACK processes each system independently), and
  chunking the stack does not change any slice;
* the Newton loop iterates only the not-yet-converged slice; circuits are
  independent, so freezing converged ones is exact.

Singular systems fall back to the interpreted per-circuit path so the exact
:class:`~repro.simulation.mna.ConvergenceError` is raised.

The solve is chunked along the stacked axis with a chunk size chosen once at
plan-build time (smaller on single-core runners, e.g. the CI VM) so peak
solver workspace stays bounded; the stamping workspace itself is
preallocated at build and zero-filled per evaluation — the plan never
allocates per step.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compile.errors import UntraceableError
from repro.simulation.mna import (
    GROUND_NAMES,
    AcSolution,
    ConvergenceError,
    DcSolution,
    MnaCircuit,
)


def solve_chunk_rows(cpu_count: Optional[int] = None) -> int:
    """Stacked-solve chunk size; bounded on single-core (CI) runners.

    LAPACK's batched workspace grows with the number of stacked systems, so
    on a 1-core runner (no solver parallelism to feed anyway) a small chunk
    keeps peak memory flat without changing any result — chunking is
    bitwise-invariant.
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return 128 if cpu <= 1 else 1024


@dataclass(frozen=True)
class _MatrixRecord:
    """One ordered stamp into the stacked matrix: ``M[..., i, j] ±= value``."""

    source: Tuple[str, int]  # value kind + element index ("unit" ignores index)
    i: int
    j: int
    sign: float
    is_freq: bool  # frequency-dependent: adds (1j * omega) * value


@dataclass(frozen=True)
class _RhsRecord:
    source: Tuple[str, int]
    i: int
    sign: float  # +1 add, -1 subtract, 0 assign


class BatchedMNAPlan:
    """Stacked AC/DC evaluation of ``K`` structurally identical circuits."""

    def __init__(self, template: MnaCircuit, num_circuits: int) -> None:
        if num_circuits <= 0:
            raise UntraceableError("BatchedMNAPlan requires at least one circuit")
        self._name = template.name
        self._signature = template.structure_signature()
        self.num_circuits = int(num_circuits)
        self._circuits: Optional[List[MnaCircuit]] = None

        nodes = template.node_names
        self._nodes = nodes
        self._index = {node: i for i, node in enumerate(nodes)}
        self.num_nodes = len(nodes)
        self._num_vsrc = len(template.vsources)
        self._num_ind = len(template.inductors)
        self.size = self.num_nodes + self._num_vsrc + self._num_ind
        self._branch_names = [v.name for v in template.vsources] + [
            e.name for e in template.inductors
        ]

        K = self.num_circuits

        def stacked(values: Sequence[float]) -> np.ndarray:
            return np.tile(np.asarray(list(values), dtype=np.float64), (K, 1))

        self._values: Dict[str, np.ndarray] = {
            "res": stacked(r.value for r in template.resistors),
            "cap": stacked(c.value for c in template.capacitors),
            "ind": stacked(e.value for e in template.inductors),
            "vsrc_dc": stacked(v.dc for v in template.vsources),
            "vsrc_ac": stacked(v.ac for v in template.vsources),
            "isrc_dc": stacked(s.dc for s in template.isources),
            "isrc_ac": stacked(s.ac for s in template.isources),
            "vccs": stacked(g.gm for g in template.vccs_elements),
        }
        self._element_slot: Dict[str, Tuple[str, int]] = {}
        for kind, elements in (
            ("res", template.resistors),
            ("cap", template.capacitors),
            ("ind", template.inductors),
            ("vccs", template.vccs_elements),
        ):
            for idx, element in enumerate(elements):
                self._element_slot[element.name] = (kind, idx)

        self._ac_matrix_records: List[_MatrixRecord] = []
        self._ac_rhs_records: List[_RhsRecord] = []
        self._dc_matrix_records: List[_MatrixRecord] = []
        self._dc_rhs_records: List[_RhsRecord] = []
        self._build_records(template)

        self._has_mosfets = bool(template.mosfets)
        self._mosfet_nodes: List[Tuple[Optional[int], Optional[int], Optional[int]]] = [
            (self._node_idx(m.drain), self._node_idx(m.gate), self._node_idx(m.source))
            for m in template.mosfets
        ]

        self._chunk = solve_chunk_rows()
        # Stamping workspaces; the AC tensor is (re)allocated only when the
        # sweep length changes, then reused zero-filled on every evaluation.
        self._ac_matrix_ws: Optional[np.ndarray] = None
        self._ac_rhs_ws: Optional[np.ndarray] = None
        self._ac_sol_ws: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_circuits(cls, circuits: Sequence[MnaCircuit]) -> "BatchedMNAPlan":
        """Plan over concrete circuits (stacks their element values)."""
        circuits = list(circuits)
        if not circuits:
            raise UntraceableError("BatchedMNAPlan requires at least one circuit")
        plan = cls(circuits[0], len(circuits))
        signature = plan._signature
        for circuit in circuits[1:]:
            if circuit.structure_signature() != signature:
                raise UntraceableError(
                    f"circuit '{circuit.name}' does not match the plan topology"
                )
        plan._circuits = circuits
        for k, circuit in enumerate(circuits):
            plan._values["res"][k] = [r.value for r in circuit.resistors]
            plan._values["cap"][k] = [c.value for c in circuit.capacitors]
            plan._values["ind"][k] = [e.value for e in circuit.inductors]
            plan._values["vsrc_dc"][k] = [v.dc for v in circuit.vsources]
            plan._values["vsrc_ac"][k] = [v.ac for v in circuit.vsources]
            plan._values["isrc_dc"][k] = [s.dc for s in circuit.isources]
            plan._values["isrc_ac"][k] = [s.ac for s in circuit.isources]
            plan._values["vccs"][k] = [g.gm for g in circuit.vccs_elements]
        return plan

    @classmethod
    def from_template(cls, template: MnaCircuit, num_circuits: int) -> "BatchedMNAPlan":
        """Plan from one template circuit; restamp values via :meth:`set_values`.

        Template mode carries no per-circuit MOSFET models, so nonlinear
        circuits must use :meth:`from_circuits`.
        """
        if template.mosfets:
            raise UntraceableError(
                "template-mode BatchedMNAPlan does not support MOSFETs; use from_circuits"
            )
        return cls(template, num_circuits)

    def set_values(self, name: str, values: np.ndarray) -> None:
        """Restamp one element's per-circuit values (the per-step hot path)."""
        slot = self._element_slot.get(name)
        if slot is None:
            raise KeyError(f"no restampable element named '{name}'")
        kind, idx = slot
        self._values[kind][:, idx] = np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------
    # Record construction (plan time)
    # ------------------------------------------------------------------
    def _node_idx(self, net: str) -> Optional[int]:
        if net.lower() in GROUND_NAMES:
            return None
        return self._index[net]

    def _emit_admittance(
        self,
        records: List[_MatrixRecord],
        source: Tuple[str, int],
        n1: str,
        n2: str,
        is_freq: bool,
    ) -> None:
        # Mirrors stamp_admittance/stamp_conductance entry order exactly.
        i, j = self._node_idx(n1), self._node_idx(n2)
        if i is not None:
            records.append(_MatrixRecord(source, i, i, 1.0, is_freq))
        if j is not None:
            records.append(_MatrixRecord(source, j, j, 1.0, is_freq))
        if i is not None and j is not None:
            records.append(_MatrixRecord(source, i, j, -1.0, is_freq))
            records.append(_MatrixRecord(source, j, i, -1.0, is_freq))

    def _emit_vccs(
        self,
        records: List[_MatrixRecord],
        source: Tuple[str, int],
        out_plus: str,
        out_minus: str,
        in_plus: str,
        in_minus: str,
    ) -> None:
        op, om = self._node_idx(out_plus), self._node_idx(out_minus)
        ip, im = self._node_idx(in_plus), self._node_idx(in_minus)
        for out_node, out_sign in ((op, 1.0), (om, -1.0)):
            if out_node is None:
                continue
            for in_node, in_sign in ((ip, 1.0), (im, -1.0)):
                if in_node is None:
                    continue
                records.append(_MatrixRecord(source, out_node, in_node, out_sign * in_sign, False))

    def _emit_branch_rows(
        self,
        records: List[_MatrixRecord],
        row: int,
        n_plus: str,
        n_minus: str,
    ) -> None:
        i, j = self._node_idx(n_plus), self._node_idx(n_minus)
        if i is not None:
            records.append(_MatrixRecord(("unit", 0), i, row, 1.0, False))
            records.append(_MatrixRecord(("unit", 0), row, i, 1.0, False))
        if j is not None:
            records.append(_MatrixRecord(("unit", 0), j, row, -1.0, False))
            records.append(_MatrixRecord(("unit", 0), row, j, -1.0, False))

    def _build_records(self, template: MnaCircuit) -> None:
        # --- AC records, in ac_analysis stamp order -------------------
        ac_m = self._ac_matrix_records
        ac_r = self._ac_rhs_records
        for idx, r in enumerate(template.resistors):
            self._emit_admittance(ac_m, ("res_g", idx), r.n1, r.n2, False)
        for idx, c in enumerate(template.capacitors):
            self._emit_admittance(ac_m, ("cap", idx), c.n1, c.n2, True)
        for idx, g in enumerate(template.vccs_elements):
            self._emit_vccs(ac_m, ("vccs", idx), g.out_plus, g.out_minus, g.in_plus, g.in_minus)
        for idx, m in enumerate(template.mosfets):
            self._emit_vccs(ac_m, ("mos_gm", idx), m.drain, m.source, m.gate, m.source)
            self._emit_admittance(ac_m, ("mos_gds", idx), m.drain, m.source, False)
        for idx, src in enumerate(template.isources):
            i, j = self._node_idx(src.n_plus), self._node_idx(src.n_minus)
            if i is not None:
                ac_r.append(_RhsRecord(("isrc_ac", idx), i, -1.0))
            if j is not None:
                ac_r.append(_RhsRecord(("isrc_ac", idx), j, 1.0))
        for branch, v in enumerate(template.vsources):
            row = self.num_nodes + branch
            self._emit_branch_rows(ac_m, row, v.n_plus, v.n_minus)
            ac_r.append(_RhsRecord(("vsrc_ac", branch), row, 0.0))
        for branch, e in enumerate(template.inductors):
            row = self.num_nodes + self._num_vsrc + branch
            self._emit_branch_rows(ac_m, row, e.n1, e.n2)
            ac_m.append(_MatrixRecord(("ind", branch), row, row, -1.0, True))

        # --- DC records, in dc_operating_point stamp order ------------
        # (MOSFET companion stamps are per-iteration and land between the
        # source and branch records; their entries are restamped live in
        # the Newton loop, after this constant base — which preserves the
        # per-entry accumulation order because resistor/VCCS stamps precede
        # MOSFET stamps in the interpreted loop too.)
        dc_m = self._dc_matrix_records
        dc_r = self._dc_rhs_records
        for idx, r in enumerate(template.resistors):
            self._emit_admittance(dc_m, ("res_g", idx), r.n1, r.n2, False)
        for idx, g in enumerate(template.vccs_elements):
            self._emit_vccs(dc_m, ("vccs", idx), g.out_plus, g.out_minus, g.in_plus, g.in_minus)
        for idx, src in enumerate(template.isources):
            i, j = self._node_idx(src.n_plus), self._node_idx(src.n_minus)
            if i is not None:
                dc_r.append(_RhsRecord(("isrc_dc", idx), i, -1.0))
            if j is not None:
                dc_r.append(_RhsRecord(("isrc_dc", idx), j, 1.0))
        branch_elements = [(v.n_plus, v.n_minus, ("vsrc_dc", b)) for b, v in
                           enumerate(template.vsources)]
        branch_elements += [(e.n1, e.n2, ("zero", b)) for b, e in enumerate(template.inductors)]
        for branch, (n_plus, n_minus, source) in enumerate(branch_elements):
            row = self.num_nodes + branch
            self._emit_branch_rows(dc_m, row, n_plus, n_minus)
            dc_r.append(_RhsRecord(source, row, 0.0))

    # ------------------------------------------------------------------
    # Record replay
    # ------------------------------------------------------------------
    def _record_values(self, source: Tuple[str, int], mosfet_lin=None) -> np.ndarray:
        kind, idx = source
        if kind == "unit":
            return np.ones(self.num_circuits)
        if kind == "zero":
            return np.zeros(self.num_circuits)
        if kind == "res_g":
            return 1.0 / self._values["res"][:, idx]
        if kind in ("mos_gm", "mos_gds"):
            assert mosfet_lin is not None
            return mosfet_lin[kind][:, idx]
        return self._values[kind][:, idx]

    def _stamp_rhs(self, records: List[_RhsRecord], rhs: np.ndarray) -> None:
        for record in records:
            values = self._record_values(record.source)
            if record.sign == 0.0:  # repro: noqa[REP-FLT01] build-time sentinel in {-1.0, 0.0, 1.0}
                rhs[:, record.i] = values
            elif record.sign > 0.0:
                rhs[:, record.i] += values
            else:
                rhs[:, record.i] -= values

    # ------------------------------------------------------------------
    # AC analysis
    # ------------------------------------------------------------------
    def ac_sweep(
        self,
        frequencies: Sequence[float],
        operating_points: Optional[Sequence[DcSolution]] = None,
    ) -> List[AcSolution]:
        """Stacked twin of ``[c.ac_analysis(frequencies) for c in circuits]``."""
        frequencies = np.asarray(list(frequencies), dtype=np.float64)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D sequence")
        if np.any(frequencies <= 0):
            raise ValueError("AC analysis requires positive frequencies")

        mosfet_lin = None
        if self._has_mosfets:
            if operating_points is None:
                operating_points = self.dc_operating_points()
            mosfet_lin = self._linearize_mosfets(operating_points)

        K, F, size = self.num_circuits, frequencies.size, self.size
        if self._ac_matrix_ws is None or self._ac_matrix_ws.shape[1] != F:
            self._ac_matrix_ws = np.zeros((K, F, size, size), dtype=np.complex128)
            self._ac_rhs_ws = np.zeros((K, F, size), dtype=np.complex128)
            self._ac_sol_ws = np.empty((K, F, size), dtype=np.complex128)
        matrix = self._ac_matrix_ws
        matrix[...] = 0.0

        omega = 2.0 * np.pi * frequencies
        jomega = 1j * omega
        for record in self._ac_matrix_records:
            values = self._record_values(record.source, mosfet_lin)
            if record.is_freq:
                term = jomega[None, :] * values[:, None]
            else:
                term = values[:, None]
            if record.sign > 0.0:
                matrix[:, :, record.i, record.j] += term
            else:
                matrix[:, :, record.i, record.j] -= term

        rhs = np.zeros((K, size), dtype=np.complex128)
        self._stamp_rhs(self._ac_rhs_records, rhs)
        rhs_ws = self._ac_rhs_ws
        rhs_ws[:] = rhs[:, None, :]

        solution = self._ac_sol_ws
        flat_m = matrix.reshape(K * F, size, size)
        flat_r = rhs_ws.reshape(K * F, size)
        flat_s = solution.reshape(K * F, size)
        try:
            for start in range(0, K * F, self._chunk):
                stop = min(start + self._chunk, K * F)
                # RHS as an explicit (B, n, 1) column: a plain (B, n) would be
                # read as one (m, n) matrix by the solve gufunc, not a stack.
                flat_s[start:stop] = np.linalg.solve(
                    flat_m[start:stop], flat_r[start:stop, :, None]
                )[:, :, 0]
        except np.linalg.LinAlgError:
            self._raise_singular_ac(flat_m, frequencies)
            raise  # unreachable; keeps control flow explicit

        results = []
        for k in range(K):
            node_voltages = {
                node: solution[k, :, self._index[node]].copy() for node in self._nodes
            }
            results.append(AcSolution(frequencies=frequencies.copy(), node_voltages=node_voltages))
        return results

    def _raise_singular_ac(self, flat_m: np.ndarray, frequencies: np.ndarray) -> None:
        F = frequencies.size
        for flat_index in range(flat_m.shape[0]):
            try:
                np.linalg.solve(flat_m[flat_index], np.zeros(self.size, dtype=np.complex128))
            except np.linalg.LinAlgError as exc:
                frequency = frequencies[flat_index % F]
                raise ConvergenceError(
                    f"singular AC MNA matrix in '{self._name}' at f={frequency:.3g} Hz"
                ) from exc
        raise ConvergenceError(f"singular AC MNA matrix in '{self._name}'")

    def _linearize_mosfets(
        self, operating_points: Sequence[DcSolution]
    ) -> Dict[str, np.ndarray]:
        assert self._circuits is not None, "MOSFET plans require from_circuits"
        num_mos = len(self._circuits[0].mosfets)
        gm = np.zeros((self.num_circuits, num_mos))
        gds = np.zeros((self.num_circuits, num_mos))
        for k, circuit in enumerate(self._circuits):
            op_point = operating_points[k]
            for m_idx, m in enumerate(circuit.mosfets):
                vg = op_point.voltage(m.gate)
                vd = op_point.voltage(m.drain)
                vs = op_point.voltage(m.source)
                op = m.model.operating_point(vg - vs, vd - vs)
                gm[k, m_idx] = op.gm
                gds[k, m_idx] = max(op.gds, 1e-12)
        return {"mos_gm": gm, "mos_gds": gds}

    # ------------------------------------------------------------------
    # DC analysis (batched Newton over the not-yet-converged slice)
    # ------------------------------------------------------------------
    def dc_operating_points(
        self,
        max_iterations: int = 200,
        tolerance: float = 1e-9,
        damping: float = 1.0,
        max_voltage_step: float = 0.3,
    ) -> List[DcSolution]:
        """Stacked twin of ``[c.dc_operating_point() for c in circuits]``."""
        K, size, num_nodes = self.num_circuits, self.size, self.num_nodes
        if self._has_mosfets and self._circuits is None:
            raise UntraceableError("MOSFET DC analysis requires a from_circuits plan")

        base_matrix = np.zeros((K, size, size))
        for record in self._dc_matrix_records:
            values = self._record_values(record.source)
            if record.sign > 0.0:
                base_matrix[:, record.i, record.j] += values
            else:
                base_matrix[:, record.i, record.j] -= values
        base_rhs = np.zeros((K, size))
        self._stamp_rhs(self._dc_rhs_records, base_rhs)

        solution = np.zeros((K, size))
        iterations = np.zeros(K, dtype=np.int64)
        active = np.arange(K)
        for iteration in range(1, max_iterations + 1):
            matrix = base_matrix[active].copy()
            rhs = base_rhs[active].copy()
            if self._has_mosfets:
                assert self._circuits is not None
                for pos, k in enumerate(active):
                    self._stamp_mosfet_companions(
                        self._circuits[k], solution[k], matrix[pos], rhs[pos]
                    )
            try:
                # Column RHS for the same gufunc-broadcasting reason as ac_sweep.
                new_solution = np.linalg.solve(matrix, rhs[:, :, None])[:, :, 0]
            except np.linalg.LinAlgError:
                self._raise_singular_dc(matrix, active)
                raise
            delta = new_solution - solution[active]
            node_delta = delta[:, :num_nodes]
            if num_nodes:
                largest = np.max(np.abs(node_delta), axis=1)
            else:
                largest = np.zeros(len(active))
            if max_voltage_step > 0.0:
                with np.errstate(divide="ignore", invalid="ignore"):
                    scale = np.where(
                        largest > max_voltage_step, max_voltage_step / largest, 1.0
                    )
                delta = delta * scale[:, None]
            solution[active] = solution[active] + damping * delta
            converged = np.max(np.abs(delta[:, :num_nodes]), axis=1) < tolerance
            iterations[active[converged]] = iteration
            active = active[~converged]
            if active.size == 0:
                break
        else:
            name = self._circuit_name(int(active[0]))
            raise ConvergenceError(
                f"DC analysis of '{name}' did not converge in {max_iterations} iterations"
            )

        results = []
        for k in range(K):
            node_voltages = {
                node: float(solution[k, self._index[node]]) for node in self._nodes
            }
            source_currents = {
                name: float(solution[k, num_nodes + b])
                for b, name in enumerate(self._branch_names)
            }
            results.append(
                DcSolution(
                    node_voltages=node_voltages,
                    source_currents=source_currents,
                    iterations=int(iterations[k]),
                )
            )
        return results

    def _circuit_name(self, k: int) -> str:
        if self._circuits is not None:
            return self._circuits[k].name
        return self._name

    def _raise_singular_dc(self, matrix: np.ndarray, active: np.ndarray) -> None:
        for pos in range(matrix.shape[0]):
            try:
                np.linalg.solve(matrix[pos], np.zeros(self.size))
            except np.linalg.LinAlgError as exc:
                raise ConvergenceError(
                    f"singular MNA matrix in '{self._circuit_name(int(active[pos]))}'"
                ) from exc
        raise ConvergenceError(f"singular MNA matrix in '{self._name}'")

    def _stamp_mosfet_companions(
        self,
        circuit: MnaCircuit,
        solution_row: np.ndarray,
        matrix: np.ndarray,
        rhs: np.ndarray,
    ) -> None:
        """Per-circuit nonlinear companion stamps (exact interpreted twin)."""

        def voltage_of(idx: Optional[int]) -> float:
            return 0.0 if idx is None else float(solution_row[idx])

        for m, (d_idx, g_idx, s_idx) in zip(circuit.mosfets, self._mosfet_nodes):
            vg = voltage_of(g_idx)
            vd = voltage_of(d_idx)
            vs = voltage_of(s_idx)
            vgs, vds = vg - vs, vd - vs
            op = m.model.operating_point(vgs, vds)
            current = m.model.drain_current(vgs, vds)
            gm, gds = op.gm, max(op.gds, 1e-12)
            sign = MnaCircuit._polarity_sign(m)
            i_eq = current - gm * vgs * sign - gds * vds
            # VCCS stamp (drain/source controlled by gate/source).
            for out_node, out_sign in ((d_idx, 1.0), (s_idx, -1.0)):
                if out_node is None:
                    continue
                for in_node, in_sign in ((g_idx, 1.0), (s_idx, -1.0)):
                    if in_node is None:
                        continue
                    matrix[out_node, in_node] += out_sign * in_sign * (gm * sign)
            # gds conductance between drain and source.
            if d_idx is not None:
                matrix[d_idx, d_idx] += gds
            if s_idx is not None:
                matrix[s_idx, s_idx] += gds
            if d_idx is not None and s_idx is not None:
                matrix[d_idx, s_idx] -= gds
                matrix[s_idx, d_idx] -= gds
            # Companion current source from drain to source.
            if d_idx is not None:
                rhs[d_idx] -= i_eq
            if s_idx is not None:
                rhs[s_idx] += i_eq
