"""The three-tier resolving simulator: cache -> surrogate -> exact.

:class:`TieredSimulator` is the subsystem's front door.  It *is* a
:class:`~repro.parallel.SimulationCache` (every integration that
special-cases the cache — optimizer adapters, vector envs, the deployment
service — treats it identically), and it interposes two extra tiers in the
cache's miss hook:

1. **memory** — the inherited LRU table (exact and surrogate answers both
   memoize here; repeats are free either way);
2. **disk** — when a corpus directory is attached, the persistent entries
   written by any previous process (same format, same quantized keys, and
   the same shared decoder as :class:`~repro.parallel.DiskSimulationCache`);
3. **surrogate** — a trust-gated :class:`~repro.surrogate.SpecSurrogate`
   consult; only answers whose ensemble disagreement passes the calibrated
   gate are served (flagged ``details["surrogate"] == 1.0``);
4. **exact** — the wrapped simulator.  Every exact result flows *back* into
   the earlier tiers: it is memoized, persisted into the corpus directory,
   and buffered as a future surrogate training point (:meth:`refit`).

With no surrogate attached — or an attached-but-untrained one, or a gate
that never calibrated — every consult is rejected and the tier resolves
exactly like a plain (disk) cache: same results, same simulator call
sequence, bitwise-identical downstream numbers.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.circuits.netlist import Netlist
from repro.parallel.cache import DEFAULT_CACHE_SIZE, DEFAULT_KEY_DIGITS, SimulationCache
from repro.parallel.disk_cache import entry_path, read_disk_entry, write_disk_entry
from repro.simulation.base import CircuitSimulator, SimulationResult
from repro.surrogate.dataset import SurrogateDataset
from repro.surrogate.model import SpecSurrogate, SurrogateConfig
from repro.surrogate.trainer import TrainReport, load_surrogate, train_surrogate


class TieredSimulator(SimulationCache):
    """Cache -> surrogate -> exact resolving :class:`CircuitSimulator`.

    Parameters
    ----------
    simulator:
        The exact simulator (the final authority; deterministic).
    surrogate:
        A trained :class:`SpecSurrogate`, a path to a checkpoint saved by
        :func:`~repro.surrogate.trainer.save_surrogate`, or ``None`` to
        start exact-only (a model can still be grown online via
        ``refit_interval``).
    directory:
        Optional persistent corpus directory (shared format with
        :class:`~repro.parallel.DiskSimulationCache`): exact results are
        persisted here and prior entries serve as disk hits.
    refit_interval:
        When set, the surrogate is (re)trained from the buffered exact
        results every ``refit_interval`` new valid points — the online
        closing of the loop.  ``None`` (default) never refits implicitly;
        :meth:`refit` can always be called by hand.
    config / seed:
        Training hyper-parameters and determinism seed used by refits.
    """

    def __init__(
        self,
        simulator: CircuitSimulator,
        surrogate: Union[SpecSurrogate, str, os.PathLike, None] = None,
        directory: Union[str, os.PathLike, None] = None,
        max_entries: int = DEFAULT_CACHE_SIZE,
        key_digits: int = DEFAULT_KEY_DIGITS,
        refit_interval: Optional[int] = None,
        config: Optional[SurrogateConfig] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(simulator, max_entries=max_entries, key_digits=key_digits)
        if refit_interval is not None and refit_interval <= 0:
            raise ValueError("refit_interval must be positive (or None to disable)")
        if surrogate is not None and not isinstance(surrogate, SpecSurrogate):
            surrogate = load_surrogate(surrogate)
        self.surrogate: Optional[SpecSurrogate] = surrogate
        self.directory: Optional[Path] = None
        if directory is not None:
            self.directory = Path(directory)
            self.directory.mkdir(parents=True, exist_ok=True)
        self.refit_interval = refit_interval
        self.config = config or SurrogateConfig()
        self.seed = int(seed)
        # Exact (parameters -> specs) observations per circuit, awaiting the
        # next refit.  Only valid operating points are trainable.
        self._observations: Dict[str, List[Tuple[np.ndarray, Dict[str, float]]]] = {}
        self._observed_since_fit = 0
        self.last_report: Optional[TrainReport] = None

    # ------------------------------------------------------------------
    # CircuitSimulator protocol
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"tiered({self.simulator.name})"

    def _simulate_miss(self, key: bytes, netlist: Netlist) -> SimulationResult:
        if self.directory is not None:
            entry = read_disk_entry(entry_path(self.directory, key))
            if entry is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                return entry.result

        parameters = netlist.parameter_array()
        consulted = self._consultable(netlist, parameters)
        if consulted:
            specs, disagreement = self.surrogate.predict_one(parameters)
            if bool(self.surrogate.trusted(np.array([disagreement]))[0]):
                self.stats.surrogate_hits += 1
                # Flagged so downstream consumers (and the final-answer
                # guarantee in the baselines) can tell learned from exact.
                return SimulationResult(
                    specs=specs,
                    details={"surrogate": 1.0, "surrogate_disagreement": disagreement},
                    valid=True,
                )
            self.stats.trust_rejections += 1

        self.stats.misses += 1
        if consulted:
            self.stats.exact_fallbacks += 1
        result = self.simulator.simulate(netlist)
        if self.directory is not None:
            write_disk_entry(
                entry_path(self.directory, key),
                result,
                circuit=netlist.name,
                parameters=parameters,
            )
        self._observe(netlist.name, parameters, result)
        return result

    def _consultable(self, netlist: Netlist, parameters: np.ndarray) -> bool:
        # A surrogate only ever answers for its own topology and parameter
        # layout; anything else is a plain exact call, not a rejection.
        return (
            self.surrogate is not None
            and self.surrogate.circuit == netlist.name
            and self.surrogate.num_inputs == parameters.size
        )

    # ------------------------------------------------------------------
    # Training-set feedback
    # ------------------------------------------------------------------
    def _observe(self, circuit: str, parameters: np.ndarray, result: SimulationResult) -> None:
        if not result.valid:
            return
        self._observations.setdefault(circuit, []).append(
            (np.array(parameters, dtype=np.float64), dict(result.specs))
        )
        self._observed_since_fit += 1
        if (
            self.refit_interval is not None
            and self._observed_since_fit >= self.refit_interval
            and self.num_observed() >= self.config.min_train_points
        ):
            self.refit()

    def num_observed(self, circuit: Optional[str] = None) -> int:
        """Buffered exact observations (for ``circuit``, or in total)."""
        if circuit is not None:
            return len(self._observations.get(circuit, []))
        return sum(len(rows) for rows in self._observations.values())

    def observed_dataset(self, circuit: Optional[str] = None) -> SurrogateDataset:
        """The buffered exact observations as a trainable dataset.

        ``circuit`` defaults to the attached surrogate's topology, else the
        most-observed one.  Raises ``ValueError`` when nothing was observed.
        """
        if circuit is None:
            if self.surrogate is not None and self.surrogate.circuit in self._observations:
                circuit = self.surrogate.circuit
            elif self._observations:
                circuit = max(self._observations, key=lambda name: len(self._observations[name]))
        rows = self._observations.get(circuit or "", [])
        if not rows:
            raise ValueError(f"no exact observations buffered for circuit {circuit!r}")
        spec_names = tuple(sorted(rows[0][1]))
        return SurrogateDataset(
            circuit=circuit,
            spec_names=spec_names,
            parameters=np.stack([parameters for parameters, _ in rows]),
            specs=np.array([[specs[name] for name in spec_names] for _, specs in rows]),
        )

    def refit(self, circuit: Optional[str] = None) -> Optional[TrainReport]:
        """(Re)train the surrogate from the buffered exact observations.

        Returns the training report, or ``None`` when the buffer holds fewer
        than ``config.min_train_points`` usable rows (the current surrogate —
        possibly none — is kept; an undertrained replacement would only be
        rejected by its own gate anyway).
        """
        self._observed_since_fit = 0
        try:
            dataset = self.observed_dataset(circuit)
        except ValueError:
            return None
        if len(dataset) < self.config.min_train_points:
            return None
        self.surrogate, report = train_surrogate(dataset, config=self.config, seed=self.seed)
        self.last_report = report
        return report
