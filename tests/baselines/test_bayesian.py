"""Tests for the Bayesian-optimization baseline and its GP surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import SizingProblem
from repro.baselines.bayesian import (
    BayesianOptimization,
    BayesianOptimizationConfig,
    GaussianProcess,
    expected_improvement,
)
from repro.simulation.opamp_sim import OpAmpSimulator


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        x = rng.random((12, 3))
        y = np.sin(x.sum(axis=1) * 3.0)
        gp = GaussianProcess(length_scale=0.3, signal_variance=1.0, noise_variance=1e-8)
        gp.fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.random((10, 2)) * 0.3  # training data clustered near the origin
        y = x.sum(axis=1)
        gp = GaussianProcess(length_scale=0.2, signal_variance=1.0, noise_variance=1e-6)
        gp.fit(x, y)
        _, std_near = gp.predict(np.array([[0.15, 0.15]]))
        _, std_far = gp.predict(np.array([[0.95, 0.95]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        gp = GaussianProcess(0.2, 1.0, 1e-6)
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)))

    def test_fit_shape_mismatch(self):
        gp = GaussianProcess(0.2, 1.0, 1e-6)
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))


class TestExpectedImprovement:
    def test_zero_std_point_has_no_improvement_when_below_best(self):
        ei = expected_improvement(np.array([0.0]), np.array([1e-9]), best=1.0, xi=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-6)

    def test_higher_mean_gives_higher_ei(self):
        ei = expected_improvement(np.array([0.5, 2.0]), np.array([0.3, 0.3]), best=1.0, xi=0.0)
        assert ei[1] > ei[0]

    def test_higher_uncertainty_gives_higher_ei_at_same_mean(self):
        ei = expected_improvement(np.array([0.9, 0.9]), np.array([0.05, 0.5]), best=1.0, xi=0.0)
        assert ei[1] > ei[0]


class TestBayesianOptimizationOnCircuit:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizationConfig(num_initial=1)
        with pytest.raises(ValueError):
            BayesianOptimizationConfig(length_scale=-1.0)

    def test_improves_over_initial_design(self, opamp_benchmark):
        target = {"gain": 400.0, "bandwidth": 5e6, "phase_margin": 57.0, "power": 3e-3}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=target)
        config = BayesianOptimizationConfig(num_initial=6, num_iterations=10,
                                            candidate_pool=100, local_candidates=30,
                                            stop_when_met=False)
        result = BayesianOptimization(config, seed=0).optimize(problem)
        curve = result.trace.best_curve()
        assert curve[-1] >= curve[5]
        assert np.all(np.diff(curve) >= -1e-12)

    def test_stops_early_on_easy_target(self, opamp_benchmark):
        easy_target = {"gain": 2.0, "bandwidth": 10.0, "phase_margin": 0.1, "power": 1.0}
        problem = SizingProblem(opamp_benchmark, OpAmpSimulator(), targets=easy_target)
        config = BayesianOptimizationConfig(num_initial=4, num_iterations=100)
        result = BayesianOptimization(config, seed=0).optimize(problem)
        assert result.success
        assert result.num_simulations < 30

    def test_uses_fewer_simulations_than_ga_budget(self, opamp_benchmark):
        """Shape check behind Fig. 3's last column: BO budget << GA budget."""
        config = BayesianOptimizationConfig(num_initial=6, num_iterations=20)
        assert config.num_initial + config.num_iterations < 100
