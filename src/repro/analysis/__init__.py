"""repro.analysis — the project-specific invariant lint engine.

Static half (:mod:`repro.analysis.engine` + :mod:`repro.analysis.rules`):
an AST lint engine whose rules encode the invariants this platform actually
depends on — seeded-RNG-only determinism (REP-DET01), no wall-clock in
determinism-critical code (REP-DET02), lock discipline on thread-shared
serve state (REP-LOCK01), atomic artifact publication (REP-IO01), no
internal imports of deprecation shims (REP-API01), and no unannotated
float-literal equality (REP-FLT01).  Run it with::

    python -m repro.run analyze src/

Dynamic half (:mod:`repro.analysis.runtime`): :class:`LockAudit`, a
test-time sanitizer that instruments a live object and records every access
to its lock-guarded attributes made with the lock unheld — the concurrency
test suites double as a race detector.

See ``docs/analysis-rules.md`` for the rule catalog and the suppression /
baseline workflow.
"""

from repro.analysis.engine import (
    DEFAULT_BASELINE,
    Finding,
    Report,
    analyze_paths,
    analyze_source,
    baseline_document,
    load_baseline,
    split_baseline,
)
from repro.analysis.rules import ALL_RULES, RULES_BY_ID
from repro.analysis.runtime import LockAudit, LockAuditError, LockViolation

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "Finding",
    "LockAudit",
    "LockAuditError",
    "LockViolation",
    "Report",
    "RULES_BY_ID",
    "analyze_paths",
    "analyze_source",
    "baseline_document",
    "load_baseline",
    "split_baseline",
]
