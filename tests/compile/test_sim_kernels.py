"""Simulator kernels: batched rows bitwise equal to the scalar evaluators.

Each kernel is driven over parameter points harvested from a real episode
trajectory (every step visits a new on-grid sizing), then evaluated in one
batch and compared row-by-row against ``simulator.simulate`` on the very
netlist states that produced the rows.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.compile import UntraceableError
from repro.compile.sim_kernels import build_simulator_kernel
from repro.simulation.base import SimulationResult
from repro.simulation.opamp_sim import OpAmpSimulator
from repro.simulation.ota_sim import CmOtaSimulator

STEPS = 12

CASES = [
    ("opamp-p2s-v0", "opamp_analytic"),
    ("opamp-mna-v0", "opamp_mna"),
    ("current_mirror_ota-p2s-v0", "cm_ota_analytic"),
    ("current_mirror_ota-mna-v0", "cm_ota_mna"),
]


def _trajectory_points(env_id: str, seed: int = 0):
    """Full parameter vectors + scalar results along one random episode."""
    env = repro.make_env(env_id, seed=seed)
    env.reset()
    simulator = env.simulator
    rng = np.random.default_rng(seed + 1)
    vectors, results = [], []
    for _ in range(STEPS):
        vectors.append(env.data_processor.parameter_values.copy())
        results.append(simulator.simulate(env.data_processor.netlist))
        _, _, done, _ = env.step(env.action_space.sample(rng))
        if done:
            env.reset()
    return env, np.stack(vectors), results


@pytest.mark.parametrize("env_id,simulator_name", CASES)
def test_kernel_rows_match_scalar_simulate(env_id, simulator_name):
    env, vectors, scalar_results = _trajectory_points(env_id)
    assert env.simulator.name == simulator_name
    kernel = build_simulator_kernel(
        env.simulator, env.data_processor.netlist, len(vectors)
    )
    result = kernel.evaluate(vectors)
    spec_rows, detail_rows = result.spec_rows(), result.detail_rows()
    valid = result.valid.tolist()
    for k, scalar in enumerate(scalar_results):
        assert isinstance(scalar, SimulationResult)
        assert spec_rows[k] == scalar.specs
        assert detail_rows[k] == scalar.details
        assert valid[k] == scalar.valid
        # Bitwise, not just ==: compare raw float bit patterns (catches
        # sign-of-zero drift that dict equality would wave through).
        for name, value in scalar.specs.items():
            assert np.float64(spec_rows[k][name]).tobytes() == np.float64(value).tobytes()
        for name, value in scalar.details.items():
            assert np.float64(detail_rows[k][name]).tobytes() == np.float64(value).tobytes()


def test_kernel_result_rows_match_per_index_dicts():
    env, vectors, _ = _trajectory_points("opamp-p2s-v0")
    kernel = build_simulator_kernel(
        env.simulator, env.data_processor.netlist, len(vectors)
    )
    result = kernel.evaluate(vectors)
    for k in range(len(vectors)):
        assert result.spec_rows()[k] == result.spec_dict(k)
        assert result.detail_rows()[k] == result.detail_dict(k)


class TestBuilderStrictness:
    def test_unknown_simulator_type(self):
        env = repro.make_env("opamp-p2s-v0", seed=0)

        class OtherSimulator:
            pass

        with pytest.raises(UntraceableError):
            build_simulator_kernel(OtherSimulator(), env.data_processor.netlist, 2)

    def test_subclassed_simulator_is_rejected(self):
        """An override could change the arithmetic; exact types only."""
        env = repro.make_env("opamp-p2s-v0", seed=0)

        class TweakedOpAmp(OpAmpSimulator):
            pass

        with pytest.raises(UntraceableError):
            build_simulator_kernel(TweakedOpAmp(), env.data_processor.netlist, 2)

    def test_simulator_method_validation(self):
        with pytest.raises(ValueError):
            OpAmpSimulator(method="spice")
        with pytest.raises(ValueError):
            CmOtaSimulator(method="spice")
