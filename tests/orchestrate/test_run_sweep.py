"""run_sweep: worker-count parity, resume semantics, artifact contents."""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.orchestrate import ArtifactStore, SweepConfig, run_sweep


@pytest.fixture(scope="module")
def sweep() -> SweepConfig:
    return SweepConfig(
        name="parity",
        optimizers=["random", {"id": "genetic", "params": {"population_size": 4}}],
        envs=["opamp-p2s-v0", "common_source_lna-p2s-v0"],
        seeds=[0, 1],
        budget=6,
    )


@pytest.fixture(scope="module")
def sequential(sweep, tmp_path_factory):
    """The workers=1 reference run (shared across the parity tests)."""
    store = tmp_path_factory.mktemp("seq_store")
    return run_sweep(sweep, store=store, workers=1)


class TestWorkerParity:
    def test_sequential_run_completes_everything(self, sweep, sequential):
        assert sequential.ok
        assert len(sequential.executed) == sweep.num_units
        assert not sequential.skipped and not sequential.failed

    def test_workers4_bit_identical_to_workers1(self, sweep, sequential, tmp_path):
        parallel = run_sweep(sweep, store=tmp_path / "par_store", workers=4)
        assert parallel.ok
        for seq_record, par_record in zip(sequential.records, parallel.records):
            assert seq_record.unit_id == par_record.unit_id
            assert seq_record.result["result"] == par_record.result["result"]
            assert seq_record.result["trace"] == par_record.result["trace"]

    def test_unit_matches_standalone_run_config(self, sweep, sequential):
        # Any unit replayed outside the orchestrator reproduces its artifact.
        unit = sweep.expand()[0]
        standalone = RunConfig.from_dict(unit.payload["run"]).run()
        stored = sequential.record(unit.unit_id).result["result"]
        assert standalone.summary() == stored


class TestResume:
    def test_rerun_skips_every_completed_unit(self, sweep, tmp_path):
        store = tmp_path / "store"
        first = run_sweep(sweep, store=store, workers=2)
        assert first.ok and len(first.executed) == sweep.num_units
        second = run_sweep(sweep, store=store, workers=2)
        assert second.ok
        assert not second.executed
        assert len(second.skipped) == sweep.num_units
        # Skipped units return the stored records verbatim.
        for first_record, second_record in zip(first.records, second.records):
            assert first_record.result == second_record.result

    def test_no_resume_reexecutes(self, sweep, tmp_path):
        store = tmp_path / "store"
        run_sweep(sweep, store=store, workers=1)
        again = run_sweep(sweep, store=store, workers=1, resume=False)
        assert len(again.executed) == sweep.num_units and not again.skipped

    def test_partial_store_runs_only_missing_units(self, sweep, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        units = sweep.expand()
        half = [unit.unit_id for unit in units[: len(units) // 2]]
        # Run everything, then delete the second half's artifacts.
        run_sweep(sweep, store=store, workers=1)
        for unit in units[len(units) // 2:]:
            store.unit_path(unit.key()).unlink()
        result = run_sweep(sweep, store=store, workers=1)
        assert sorted(result.skipped) == sorted(half)
        assert sorted(result.executed) == sorted(
            unit.unit_id for unit in units[len(units) // 2:]
        )

    def test_sweep_manifest_written(self, sweep, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_sweep(sweep, store=store, workers=1)
        manifest = store.get_sweep(sweep.sweep_key())
        assert manifest is not None
        assert manifest["config"] == sweep.to_dict()
        assert set(manifest["units"]) == {unit.unit_id for unit in sweep.expand()}
        assert all(entry["status"] == "completed" for entry in manifest["units"].values())


class TestDiskCacheIntegration:
    def test_units_record_cache_stats_and_share_the_directory(self, tmp_path):
        sweep = SweepConfig(
            optimizers=["random"],
            envs=["opamp-p2s-v0"],
            seeds=[0],
            budget=6,
            disk_cache=str(tmp_path / "cache"),
        )
        cold = run_sweep(sweep, store=tmp_path / "store_a", workers=1)
        stats = cold.records[0].result["cache"]
        assert stats["misses"] > 0 and stats["disk_hits"] == 0
        # Same sweep into a fresh store: every simulation now comes off disk.
        warm = run_sweep(sweep, store=tmp_path / "store_b", workers=1)
        warm_stats = warm.records[0].result["cache"]
        assert warm_stats["misses"] == 0
        assert warm_stats["disk_hits"] > 0
        # And the results are bit-identical to the cold run.
        assert warm.records[0].result["result"] == cold.records[0].result["result"]
