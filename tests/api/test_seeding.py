"""seed_everything: one knob, every random source, reproducible streams."""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest

from repro.api import seed_everything, seed_legacy_globals


def test_returns_reproducible_generator():
    first = seed_everything(7).random(4)
    second = seed_everything(7).random(4)
    assert np.array_equal(first, second)
    assert not np.array_equal(first, seed_everything(8).random(4))


def test_seeds_stdlib_random():
    seed_everything(7)
    first = [random.random() for _ in range(4)]
    seed_everything(7)
    assert first == [random.random() for _ in range(4)]


def test_seeds_legacy_numpy_global():
    seed_everything(7)
    first = np.random.rand(4)
    seed_everything(7)
    assert np.array_equal(first, np.random.rand(4))


def test_matches_plain_default_rng():
    # The returned generator is exactly default_rng(seed), so scripts that
    # already used default_rng keep their streams when they migrate.
    assert np.array_equal(
        seed_everything(3).random(4), np.random.default_rng(3).random(4)
    )


def test_huge_seeds_fit_the_legacy_api():
    rng = seed_everything(2**63)  # would overflow np.random.seed unreduced
    assert rng.random() == np.random.default_rng(2**63).random()


def test_none_leaves_entropy_seeding():
    rng = seed_everything(None)
    other = seed_everything(None)
    assert rng.random(4).shape == (4,)
    assert not np.array_equal(rng.random(4), other.random(4))


def test_seed_legacy_globals_alone_warns():
    # Direct use means global seeding is the *only* seeding performed —
    # which does not reproduce anything this library computes.
    with pytest.warns(DeprecationWarning, match="seed_everything"):
        seed_legacy_globals(7)
    first = [random.random() for _ in range(4)]
    with pytest.warns(DeprecationWarning):
        seed_legacy_globals(7)
    assert first == [random.random() for _ in range(4)]


def test_seed_everything_stays_warning_free():
    # The internal path through the shim must not warn, or the
    # deprecation-clean CI gate (-W error::DeprecationWarning) would trip
    # on every seeded run.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        seed_everything(7)
