"""One seeding entry point for scripts, benchmarks, and orchestrated runs.

Every script used to hand-roll its own seeding (a ``seed=0`` here, a
``default_rng(123)`` there), which made "the same config" mean subtly
different things depending on which entry point ran it.
:func:`seed_everything` is the single knob: it seeds every random source
this codebase can draw from and hands back the
:class:`numpy.random.Generator` scripts should thread through their own
sampling, so an orchestrated unit and a standalone invocation of the same
config are bit-identical.
"""

from __future__ import annotations

import random
from typing import Optional

import numpy as np


def seed_everything(seed: Optional[int] = 0) -> np.random.Generator:
    """Seed every random source and return a fresh :class:`Generator`.

    Seeds, in order:

    * :mod:`random` — the Python stdlib generator;
    * ``np.random`` — numpy's *legacy* global state (nothing in this library
      draws from it, but user code and third-party helpers might);
    * the returned ``np.random.default_rng(seed)`` — the generator the
      library's own components consume.

    ``seed=None`` leaves entropy-based seeding in place for all three (a
    deliberately irreproducible run).  Calling with the same seed always
    reproduces the same streams, so two scripts that both start with
    ``rng = repro.seed_everything(7)`` sample identically.
    """
    if seed is not None:
        seed = int(seed)
        random.seed(seed)
        # The legacy global RandomState only accepts 32-bit seeds.
        np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)
