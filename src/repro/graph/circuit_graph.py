"""The circuit graph ``G = (V, E)`` consumed by the policy's GNN branch.

Each node is a device (transistors, passives, and — unlike the prior GCN-RL
work the paper criticizes — also the supply, ground and bias sources).  Two
nodes share an edge when the corresponding devices share a net.  The graph
structure is fixed for a given topology; only the node features change as the
agent tunes device parameters, which is why :class:`CircuitGraph` caches the
adjacency matrix and recomputes features on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.circuits.devices import DeviceType
from repro.circuits.netlist import Netlist
from repro.graph.features import (
    device_feature_vector,
    dynamic_parameter_reads,
    feature_dimension,
    static_feature_vector,
)


class CircuitGraph:
    """Device-level graph view of a netlist.

    Parameters
    ----------
    netlist:
        The circuit.  The graph keeps a reference, so node features always
        reflect the netlist's *current* parameters.
    exclude_types:
        Device types to drop from the graph.  The paper's Baseline B uses a
        *partial* topology that excludes supply and bias nodes; passing
        ``(DeviceType.SUPPLY, DeviceType.GROUND, DeviceType.BIAS)`` reproduces
        that ablation.  The full graph (default) is the paper's contribution.
    """

    def __init__(
        self,
        netlist: Netlist,
        exclude_types: Sequence[DeviceType] = (),
    ) -> None:
        self._netlist = netlist
        self._excluded = tuple(exclude_types)
        self._node_names: List[str] = [
            device.name for device in netlist if device.dtype not in self._excluded
        ]
        if len(self._node_names) < 2:
            raise ValueError("circuit graph needs at least two nodes")
        self._index: Dict[str, int] = {name: i for i, name in enumerate(self._node_names)}
        self._adjacency = self._build_adjacency()
        self._compile_feature_reads()

    def _compile_feature_reads(self) -> None:
        """Pre-compile the dynamic node-feature assembly.

        The one-hot type block of every node feature is constant, and the
        dynamic block is a fixed set of ``parameter dict -> (row, column)``
        reads with fixed scales.  Compiling that plan once turns
        :meth:`node_feature_matrix` from a per-device Python loop into one
        gather + one vectorized multiply per step (bitwise-identical values:
        the same float64 ``value * scale`` products land in the same slots).
        """
        one_hot_width = feature_dimension() - 2  # PARAMETER_SLOTS trailing columns
        base = np.zeros((len(self._node_names), feature_dimension()))
        rows: List[int] = []
        cols: List[int] = []
        scales: List[float] = []
        reads: List[tuple] = []  # (parameters dict, key) pairs, dicts are stable
        for row, name in enumerate(self._node_names):
            device = self._netlist.device(name)
            base[row] = device_feature_vector(device)
            base[row, one_hot_width:] = 0.0
            for key, scale, slot in dynamic_parameter_reads(device):
                rows.append(row)
                cols.append(one_hot_width + slot)
                scales.append(scale)
                reads.append((device.parameters, key))
        self._base_features = base
        self._feature_rows = np.array(rows, dtype=np.intp)
        self._feature_cols = np.array(cols, dtype=np.intp)
        self._feature_scales = np.array(scales)
        self._feature_reads = reads

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> np.ndarray:
        size = len(self._node_names)
        adjacency = np.zeros((size, size))
        for first, second in self._netlist.connections():
            if first in self._index and second in self._index:
                i, j = self._index[first], self._index[second]
                adjacency[i, j] = 1.0
                adjacency[j, i] = 1.0
        return adjacency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def node_names(self) -> List[str]:
        return list(self._node_names)

    @property
    def num_nodes(self) -> int:
        return len(self._node_names)

    @property
    def num_edges(self) -> int:
        return int(self._adjacency.sum() / 2)

    @property
    def adjacency_matrix(self) -> np.ndarray:
        """Symmetric binary adjacency (copy — callers may not mutate ours)."""
        return self._adjacency.copy()

    def node_index(self, device_name: str) -> int:
        try:
            return self._index[device_name]
        except KeyError as exc:
            raise KeyError(f"device '{device_name}' is not a node of this graph") from exc

    def neighbors(self, device_name: str) -> List[str]:
        row = self._adjacency[self.node_index(device_name)]
        return [self._node_names[j] for j in np.nonzero(row)[0]]

    def degree(self, device_name: str) -> int:
        return int(self._adjacency[self.node_index(device_name)].sum())

    def is_connected(self) -> bool:
        """Whether the circuit graph is a single connected component."""
        return nx.is_connected(self.to_networkx())

    def to_networkx(self) -> nx.Graph:
        """Export to ``networkx`` for connectivity checks and visualization."""
        graph = nx.Graph()
        graph.add_nodes_from(self._node_names)
        rows, cols = np.nonzero(np.triu(self._adjacency))
        graph.add_edges_from(
            (self._node_names[i], self._node_names[j]) for i, j in zip(rows, cols)
        )
        return graph

    # ------------------------------------------------------------------
    # Feature matrices
    # ------------------------------------------------------------------
    def node_feature_matrix(self) -> np.ndarray:
        """Dynamic ``(n, d)`` node features from the *current* netlist state."""
        matrix = self._base_features.copy()
        values = np.fromiter(
            (parameters[key] for parameters, key in self._feature_reads),
            dtype=np.float64,
            count=len(self._feature_reads),
        )
        matrix[self._feature_rows, self._feature_cols] = values * self._feature_scales
        return matrix

    def static_feature_matrix(
        self, technology_constants: Optional[Dict[str, float]] = None
    ) -> np.ndarray:
        """Baseline B style static features (no device parameters)."""
        constants = technology_constants or {}
        return np.stack(
            [
                static_feature_vector(self._netlist.device(name), constants)
                for name in self._node_names
            ]
        )

    @property
    def feature_dimension(self) -> int:
        return feature_dimension()
