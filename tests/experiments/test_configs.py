"""Tests for experiment scales and method registries."""

from __future__ import annotations

import pytest

from repro.experiments.configs import (
    METHOD_LABELS,
    RL_METHODS,
    bench_scale,
    get_scale,
    paper_scale,
    rl_hyperparameters,
    smoke_scale,
)


class TestScales:
    def test_paper_scale_matches_section4(self):
        scale = paper_scale()
        assert scale.opamp_training_episodes == 35_000
        assert scale.rf_pa_training_episodes == 3_500
        assert scale.deployment_specs == 200
        assert scale.optimizer_runs == 30
        assert scale.num_seeds == 6

    def test_scale_ordering(self):
        assert smoke_scale().opamp_training_episodes < bench_scale().opamp_training_episodes
        assert bench_scale().opamp_training_episodes < paper_scale().opamp_training_episodes

    def test_get_scale_lookup(self):
        assert get_scale("paper").name == "paper"
        assert get_scale("bench").name == "bench"
        assert get_scale("smoke").name == "smoke"
        with pytest.raises(ValueError):
            get_scale("galactic")


class TestMethodRegistry:
    def test_rl_methods_cover_fig3_legend(self):
        assert set(RL_METHODS) == {"gat_fc", "gcn_fc", "baseline_a", "baseline_b"}

    def test_labels_exist_for_all_methods(self):
        for method in RL_METHODS:
            assert method in METHOD_LABELS
        for method in ("genetic_algorithm", "bayesian_optimization", "supervised_learning"):
            assert method in METHOD_LABELS


class TestHyperparameters:
    def test_episode_lengths_match_paper(self):
        assert rl_hyperparameters("two_stage_opamp")["max_steps"] == 50
        assert rl_hyperparameters("rf_pa")["max_steps"] == 30

    def test_unknown_circuit(self):
        with pytest.raises(ValueError):
            rl_hyperparameters("lna")
