"""Compiled policy plans: traced, replayable batched policy forwards.

A :class:`CompiledPolicyPlan` is built once per ``(policy, topology,
num_envs)`` signature by *tracing* the structure of an
:class:`~repro.agents.policy.ActorCriticPolicy` into a flat list of op
records — plain closures over ``np.matmul`` / add / activation / readout
calls — with every topology constant (the GCN operator, the GAT attention
mask and its ``-1e9`` penalty term) baked in at trace time.  Replaying the
plan performs zero ``Module``/``Tensor`` dispatch: no autograd graph, no
tensor wrappers, no operator re-derivation.

Faithfulness contract
---------------------
Replay is bitwise identical to ``policy.act_batch`` (which the build-time
probe *proves* on a sample batch before the plan is returned — any mismatch
raises :class:`UntraceableError` instead of producing a wrong plan):

* every op record mirrors the corresponding ``forward_array`` expression
  operation-for-operation, reading weights live through the module
  references (so in-place PPO weight updates are picked up);
* baked constants are derived through the same public helpers the
  interpreted path uses (``GraphEncoder.bake_operator``,
  ``GATLayer.attention_mask``);
* sampling consumes the generator exactly as
  :func:`~repro.nn.distributions.sample_from_probs` does.

Anything the tracer does not recognize structurally (subclassed layers,
unknown encoder kinds, non-MLP heads) raises :class:`UntraceableError` at
build time; :meth:`CompiledPolicyPlan.act` additionally falls back to the
interpreted ``act_batch`` for incompatible inputs (different batch size or
adjacency object) — degrading gracefully, never wrongly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.agents.policy import ActorCriticPolicy, _FeatureTrunk
from repro.compile.errors import UntraceableError
from repro.env.spaces import NUM_ACTION_CHOICES, BatchedObservation
from repro.nn.distributions import sample_from_probs
from repro.nn.graph_layers import GATLayer, GCNLayer, GraphEncoder, GraphReadout
from repro.nn.layers import MLP, Linear, log_softmax_array, softmax_array

OpRecord = Tuple[str, Callable[[np.ndarray], np.ndarray]]


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise array equality (NaN-safe, sign-of-zero-exact)."""
    return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()


def _trace_mlp(mlp: MLP, label: str) -> List[OpRecord]:
    """Flatten an MLP into per-layer matmul/add/activation op records."""
    if type(mlp) is not MLP:
        raise UntraceableError(f"{label}: expected MLP, got {type(mlp).__name__}")
    records: List[OpRecord] = []
    last = len(mlp.layers) - 1
    for index, layer in enumerate(mlp.layers):
        if type(layer) is not Linear:
            raise UntraceableError(f"{label}: expected Linear, got {type(layer).__name__}")
        activation = mlp._hidden_activation_array if index < last else mlp._output_activation_array

        def op(x, layer=layer, activation=activation):
            out = x @ layer.weight.data
            if layer.use_bias:
                out = out + layer.bias.data
            return activation(out)

        records.append((f"{label}.linear[{index}]", op))
    return records


def _trace_gcn_layer(layer: GCNLayer, operator: np.ndarray, label: str) -> OpRecord:
    def op(h, layer=layer, operator=operator):
        out = (operator @ h) @ layer.weight.data
        if layer.use_bias:
            out = out + layer.bias.data
        return layer._activation_array(out)

    return (label, op)


def _trace_gat_layer(layer: GATLayer, adjacency: np.ndarray, label: str) -> OpRecord:
    # Both topology constants are baked once; the interpreted forward
    # recomputes them per call with the exact same expressions.
    mask = GATLayer.attention_mask(adjacency)
    penalty = np.full(mask.shape, -1e9) * (1.0 - mask)

    def op(h, layer=layer, mask=mask, penalty=penalty):
        head_outputs = []
        for head in range(layer.num_heads):
            transformed = h @ layer.head_weights[head].data
            src_scores = transformed @ layer.attn_src[head].data
            dst_scores = transformed @ layer.attn_dst[head].data
            scores = src_scores + np.swapaxes(dst_scores, -1, -2)
            scores = scores * np.where(scores > 0, 1.0, layer.negative_slope)
            masked = scores * mask + penalty
            attention = softmax_array(masked, axis=-1)
            head_outputs.append(mask * attention @ transformed)
        if layer.concat_heads:
            combined = np.concatenate(head_outputs, axis=-1)
        else:
            combined = head_outputs[0]
            for other in head_outputs[1:]:
                combined = combined + other
            combined = combined * (1.0 / layer.num_heads)
        return layer._activation_array(combined)

    return (label, op)


def _trace_readout(readout: GraphReadout, label: str) -> OpRecord:
    if type(readout) is not GraphReadout:
        raise UntraceableError(f"{label}: expected GraphReadout, got {type(readout).__name__}")
    mode = readout.mode

    def op(h, mode=mode):
        if mode == "mean":
            return h.sum(axis=1) * (1.0 / h.shape[1])
        if mode == "sum":
            return h.sum(axis=1)
        if mode == "max":
            return h.max(axis=1)
        return h.reshape(h.shape[0], -1)

    return (label, op)


class _TrunkPlan:
    """Traced twin of ``_FeatureTrunk.forward_array_batch``."""

    def __init__(self, trunk: _FeatureTrunk, adjacency: Optional[np.ndarray], label: str) -> None:
        if type(trunk) is not _FeatureTrunk:
            raise UntraceableError(f"{label}: expected _FeatureTrunk, got {type(trunk).__name__}")
        config = trunk.config
        self.use_graph = config.use_graph
        self.use_dynamic_node_features = config.use_dynamic_node_features
        self.include_parameters = config.include_parameters
        self.use_spec_encoder = config.use_spec_encoder
        self.graph_ops: List[OpRecord] = []
        self.flat_ops: List[OpRecord] = []
        if config.use_graph:
            if adjacency is None:
                raise UntraceableError(f"{label}: graph trunk requires a sample adjacency")
            encoder = trunk.graph_encoder
            if type(encoder) is not GraphEncoder:
                raise UntraceableError(
                    f"{label}: expected GraphEncoder, got {type(encoder).__name__}"
                )
            operator = encoder.bake_operator(adjacency)
            for index, layer in enumerate(encoder.layers):
                layer_label = f"{label}.graph[{index}]"
                if type(layer) is GCNLayer:
                    self.graph_ops.append(_trace_gcn_layer(layer, operator, layer_label))
                elif type(layer) is GATLayer:
                    self.graph_ops.append(_trace_gat_layer(layer, adjacency, layer_label))
                else:
                    raise UntraceableError(
                        f"{layer_label}: unsupported layer type {type(layer).__name__}"
                    )
            self.graph_ops.append(_trace_readout(encoder.readout, f"{label}.readout"))
        if config.use_spec_encoder:
            self.flat_ops = _trace_mlp(trunk.spec_encoder, f"{label}.spec_encoder")

    def replay(self, batch: BatchedObservation) -> np.ndarray:
        pieces = []
        if self.use_graph:
            if self.use_dynamic_node_features:
                hidden = np.asarray(batch.node_features, dtype=np.float64)
            else:
                hidden = np.asarray(batch.static_node_features, dtype=np.float64)
            for _, op in self.graph_ops:
                hidden = op(hidden)
            pieces.append(hidden)
        flat = batch.flat_matrix() if self.include_parameters else batch.spec_features
        for _, op in self.flat_ops:
            flat = op(flat)
        pieces.append(flat)
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces, axis=-1)


class CompiledPolicyPlan:
    """Replayable flat-op trace of one batched actor-critic forward.

    Build via :func:`compile_policy`; replay via :meth:`act` (a drop-in for
    ``policy.act_batch``) or :meth:`logits` / :meth:`values`.
    """

    def __init__(
        self, policy: ActorCriticPolicy, num_envs: int, adjacency: Optional[np.ndarray]
    ) -> None:
        if type(policy) is not ActorCriticPolicy:
            raise UntraceableError(
                f"expected ActorCriticPolicy, got {type(policy).__name__}"
            )
        config = policy.config
        self._policy = policy
        self.num_envs = int(num_envs)
        self.num_parameters = config.num_parameters
        self._adjacency = adjacency if config.use_graph else None
        self._actor_trunk = _TrunkPlan(policy.actor_trunk, adjacency, "actor_trunk")
        self._critic_trunk = _TrunkPlan(policy.critic_trunk, adjacency, "critic_trunk")
        self._actor_ops = _trace_mlp(policy.actor_head, "actor_head")
        self._critic_ops = _trace_mlp(policy.critic_head, "critic_head")
        # Baked gather indices for the per-parameter log-prob reduction.
        self._batch_index = np.arange(self.num_envs)[:, None]
        self._param_index = np.arange(self.num_parameters)[None, :]
        self.fallbacks = 0

    @property
    def op_labels(self) -> List[str]:
        """Labels of every traced op record (introspection/testing aid)."""
        labels = [label for label, _ in self._actor_trunk.graph_ops + self._actor_trunk.flat_ops]
        labels += [label for label, _ in self._actor_ops]
        labels += [label for label, _ in self._critic_trunk.graph_ops + self._critic_trunk.flat_ops]
        labels += [label for label, _ in self._critic_ops]
        return labels

    def compatible(self, batch: BatchedObservation) -> bool:
        """Cheap guard: the batch this plan was traced for, shape and topology."""
        if len(batch) != self.num_envs:
            return False
        if self._adjacency is not None and batch.adjacency is not self._adjacency:
            return False
        return True

    def logits(self, batch: BatchedObservation) -> np.ndarray:
        """Actor logits ``(B, M, 3)``; bitwise ``policy.actor_logits_array_batch``."""
        features = self._actor_trunk.replay(batch)
        for _, op in self._actor_ops:
            features = op(features)
        return features.reshape(self.num_envs, self.num_parameters, NUM_ACTION_CHOICES)

    def values(self, batch: BatchedObservation) -> np.ndarray:
        """Critic values ``(B,)``; bitwise ``policy.value_batch(batch).numpy()``."""
        features = self._critic_trunk.replay(batch)
        for _, op in self._critic_ops:
            features = op(features)
        return features.reshape(self.num_envs).copy()

    def act(
        self,
        batch: BatchedObservation,
        rng: np.random.Generator,
        deterministic: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drop-in ``act_batch``: ``(actions (B, M), log_probs (B,), values (B,))``.

        Incompatible batches (different size or adjacency object) fall back
        to the interpreted ``policy.act_batch`` — identical results, just
        without the compiled speedup.
        """
        if not self.compatible(batch):
            self.fallbacks += 1
            return self._policy.act_batch(batch, rng, deterministic=deterministic)
        logits = self.logits(batch)
        log_probs_full = log_softmax_array(logits)
        probs = np.exp(log_probs_full)
        if deterministic:
            actions = np.argmax(probs, axis=-1).astype(np.int64)
        else:
            actions = sample_from_probs(probs, rng)
        log_probs = log_probs_full[self._batch_index, self._param_index, actions].sum(axis=-1)
        return actions, log_probs, self.values(batch)


def compile_policy(
    policy: ActorCriticPolicy,
    sample_batch: BatchedObservation,
) -> CompiledPolicyPlan:
    """Trace ``policy`` into a :class:`CompiledPolicyPlan` and prove parity.

    The returned plan is probed against the interpreted ``act_batch`` on
    ``sample_batch`` (deterministic and stochastic, twin generators) before
    being returned; any bitwise mismatch raises :class:`UntraceableError`.
    """
    plan = CompiledPolicyPlan(policy, len(sample_batch), sample_batch.adjacency)
    probes = (
        ("deterministic", True),
        ("stochastic", False),
    )
    for name, deterministic in probes:
        rng_plan = np.random.default_rng(0)
        rng_interp = np.random.default_rng(0)
        got = plan.act(sample_batch, rng_plan, deterministic=deterministic)
        want = policy.act_batch(sample_batch, rng_interp, deterministic=deterministic)
        for field, a, b in zip(("actions", "log_probs", "values"), got, want):
            if not _bitwise_equal(np.asarray(a), np.asarray(b)):
                raise UntraceableError(
                    f"build-time parity probe failed ({name} {field}); "
                    "refusing to return an unfaithful plan"
                )
    if plan.fallbacks:
        raise UntraceableError("parity probe exercised the fallback path instead of the plan")
    return plan
