"""Deprecated: the pre-gateway ``specs.json`` parsing entry points.

The serving wire format now lives in :mod:`repro.serve.protocol` — a
versioned request document (``{"schema_version": 1, "requests": [...]}``)
parsed by :func:`repro.serve.protocol.parse_requests_document`, which also
accepts the legacy shapes handled here (behind a ``DeprecationWarning``).

These two public names are kept as shims for pre-gateway callers:

* an object with a ``targets`` list and optional document-wide defaults::

      {"env": "opamp-p2s-v0", "max_steps": 60,
       "targets": [{"gain": 350.0, "bandwidth": 1.8e7, ...}, ...]}

* a bare list of targets.

Each target is either a plain ``{spec name: value}`` mapping, or a wrapper
``{"specs": {...}, "env": ..., "max_steps": ...}`` overriding the document
defaults for that one request.  Targets with no ``env`` anywhere fall back
to the serving checkpoint's recorded environment ID.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List, Union

from repro.api.deprecation import warn_deprecated
from repro.serve.protocol import ServeRequest, parse_legacy_document


def parse_spec_requests(document: Any) -> List[ServeRequest]:
    """Deprecated: parse a legacy ``specs.json`` document.

    Use :func:`repro.serve.protocol.parse_requests_document`, which accepts
    both the versioned request document and (with this same warning) the
    legacy shapes.
    """
    warn_deprecated(
        "repro.serve.parse_spec_requests",
        "repro.serve.protocol.parse_requests_document",
    )
    return parse_legacy_document(document)


def load_spec_requests(path: Union[str, Path]) -> List[ServeRequest]:
    """Deprecated: read and parse a legacy ``specs.json`` file.

    Use :func:`repro.serve.protocol.load_requests_document` instead.
    """
    warn_deprecated(
        "repro.serve.load_spec_requests",
        "repro.serve.protocol.load_requests_document",
    )
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    return parse_legacy_document(document)
