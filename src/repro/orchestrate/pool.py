"""Process-pool execution of work units.

``workers=1`` runs units inline in the orchestrator process — no pickling,
no pool, the reference execution path.  ``workers>1`` fans units out over a
``multiprocessing.Pool``; results stream back as units finish
(``imap_unordered``, so a slow unit never blocks progress reporting) and are
re-sorted into expansion order before returning, which keeps downstream
consumers order-independent of scheduling.

Because every unit is executed through
:func:`repro.orchestrate.worker.execute_unit` — which converts runner
exceptions into failed records — a raising unit cannot poison the pool.

Start method: ``fork`` where the platform offers it (workers inherit the
already-imported library, microsecond startup), otherwise the platform
default (``spawn`` re-imports :mod:`repro` per worker).  Results are
bit-identical either way: each unit's randomness is fully derived from its
own payload seed, never from worker state.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence

from repro.orchestrate.units import UnitRecord, WorkUnit
from repro.orchestrate.worker import execute_unit

#: Callback fired as each record arrives (progress reporting).
RecordCallback = Callable[[UnitRecord], None]


def _pool_context(start_method: Optional[str] = None):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def execute_units(
    units: Sequence[WorkUnit],
    workers: int = 1,
    on_record: Optional[RecordCallback] = None,
    start_method: Optional[str] = None,
) -> List[UnitRecord]:
    """Execute ``units`` and return their records in input order.

    ``workers`` caps the process count (clamped to ``len(units)``); 1 means
    inline execution.  ``on_record`` observes records in *completion* order.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    units = list(units)
    if not units:
        return []

    if workers == 1 or len(units) == 1:
        records = []
        for unit in units:
            record = UnitRecord.from_dict(execute_unit(unit.to_dict()))
            if on_record is not None:
                on_record(record)
            records.append(record)
        return records

    context = _pool_context(start_method)
    unit_dicts = [unit.to_dict() for unit in units]
    by_key = {}
    with context.Pool(processes=min(workers, len(units))) as pool:
        for record_dict in pool.imap_unordered(execute_unit, unit_dicts):
            record = UnitRecord.from_dict(record_dict)
            if on_record is not None:
                on_record(record)
            by_key[record.key] = record
    # Unit keys may legitimately repeat (identical payloads); indexing by key
    # still returns a correct record for each occurrence because identical
    # units produce interchangeable results.
    return [by_key[unit.key()] for unit in units]
