"""Table 1 — design space of device parameters and sampling space of specs.

Regenerates both halves of Table 1 from the circuit library and checks the
headline counts (15 op-amp parameters, 14 RF PA parameters) and ranges.
"""

from __future__ import annotations

from repro.experiments import build_table1, format_table1


def _build():
    table = build_table1()
    text = format_table1(table)
    return table, text


def test_table1_regeneration(benchmark):
    table, text = benchmark.pedantic(_build, rounds=3, iterations=1)
    opamp = table["two_stage_opamp"]
    rf_pa = table["rf_pa"]

    # Paper Table 1, left half: 2*7+1 = 15 and 2*7 = 14 device parameters.
    assert opamp["num_device_parameters"] == 15
    assert rf_pa["num_device_parameters"] == 14

    # Paper Table 1, right half: specification sampling spaces.
    assert opamp["specifications"]["gain"] == {
        "min": 300.0, "max": 500.0, "objective": "maximize", "unit": "V/V",
    }
    assert opamp["specifications"]["bandwidth"]["max"] == 2.5e7
    assert opamp["specifications"]["power"]["objective"] == "minimize"
    assert rf_pa["specifications"]["efficiency"]["min"] == 0.50
    assert rf_pa["specifications"]["output_power"]["max"] == 3.0

    benchmark.extra_info["opamp_design_space_cardinality"] = opamp["design_space_cardinality"]
    benchmark.extra_info["rf_pa_design_space_cardinality"] = rf_pa["design_space_cardinality"]
    assert "45nm CMOS" in text and "150nm GaN" in text
