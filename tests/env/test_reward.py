"""Tests for the Eq. (1) P2S reward and the FoM reward."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.specs import Objective, Specification, SpecificationSpace
from repro.env.reward import GOAL_BONUS, FomReward, P2SReward


@pytest.fixture
def spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("gain", 300.0, 500.0, Objective.MAXIMIZE),
            Specification("power", 1e-4, 1e-2, Objective.MINIMIZE),
        ]
    )


class TestP2SReward:
    def test_bonus_when_all_met(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 450.0, "power": 1e-3}, {"gain": 400.0, "power": 5e-3})
        assert outcome.reward == GOAL_BONUS
        assert outcome.goal_reached
        assert outcome.met_fraction == 1.0

    def test_negative_when_not_met(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 350.0, "power": 1e-3}, {"gain": 400.0, "power": 5e-3})
        assert outcome.reward < 0.0
        assert not outcome.goal_reached
        assert outcome.met_fraction == 0.5
        expected = (350.0 - 400.0) / (350.0 + 400.0)
        assert outcome.reward == pytest.approx(expected)

    def test_reward_never_positive_without_bonus(self, spec_space):
        """Eq. (1): each term is clipped at zero, so r <= 0 unless all met."""
        reward = P2SReward(spec_space, goal_bonus=0.0)
        outcome = reward({"gain": 1000.0, "power": 1e-5}, {"gain": 400.0, "power": 5e-3})
        assert outcome.reward == 0.0

    def test_reward_bounded_below_by_minus_num_specs(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 1e-9, "power": 1e3}, {"gain": 500.0, "power": 1e-4})
        assert outcome.reward >= -len(spec_space)

    def test_invalid_simulation_penalty(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward(
            {"gain": 450.0, "power": 1e-3}, {"gain": 400.0, "power": 5e-3}, valid=False
        )
        assert outcome.reward == -len(spec_space)
        assert not outcome.goal_reached

    def test_custom_invalid_penalty(self, spec_space):
        reward = P2SReward(spec_space, invalid_penalty=-42.0)
        outcome = reward({"gain": 1.0, "power": 1.0}, {"gain": 400.0, "power": 5e-3}, valid=False)
        assert outcome.reward == -42.0

    def test_named_errors_exposed(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 350.0, "power": 1e-1}, {"gain": 400.0, "power": 5e-3})
        assert set(outcome.normalized_errors) == {"gain", "power"}
        assert outcome.normalized_errors["gain"] < 0.0
        assert outcome.normalized_errors["power"] < 0.0


class TestFomReward:
    def test_figure_of_merit_definition(self, spec_space):
        reward = FomReward(spec_space)
        # FoM = P + 3 E (paper, Sec. 4).
        fom = reward.figure_of_merit({"output_power": 2.5, "efficiency": 0.6})
        assert fom == pytest.approx(4.3)

    def test_reward_zero_at_references(self, spec_space):
        reward = FomReward(spec_space, power_reference=2.5, efficiency_reference=0.55)
        outcome = reward({"output_power": 2.5, "efficiency": 0.55})
        assert outcome.reward == pytest.approx(0.0)

    def test_reward_increases_with_both_terms(self, spec_space):
        reward = FomReward(spec_space)
        low = reward({"output_power": 2.0, "efficiency": 0.50}).reward
        high = reward({"output_power": 3.0, "efficiency": 0.60}).reward
        assert high > low

    def test_efficiency_weighted_three_times(self, spec_space):
        reward = FomReward(spec_space, power_reference=2.5, efficiency_reference=0.55)
        power_only = reward({"output_power": 3.0, "efficiency": 0.55}).reward
        eff_only = reward({"output_power": 2.5, "efficiency": 0.66}).reward
        # The efficiency term uses the same normalized difference but x3.
        assert eff_only > power_only

    def test_invalid_result_penalized(self, spec_space):
        reward = FomReward(spec_space)
        assert reward({"output_power": 2.5, "efficiency": 0.55}, valid=False).reward < 0.0

    def test_reference_validation(self, spec_space):
        with pytest.raises(ValueError):
            FomReward(spec_space, power_reference=0.0)


class TestMissingAndNanSpecs:
    """A result marked valid but missing/NaN on required specs must take the
    invalid-penalty path instead of raising (simulation-cache and reward
    hardening, PR 3)."""

    def test_p2s_empty_measured_dict(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({}, {"gain": 400.0, "power": 5e-3}, valid=True)
        assert outcome.reward == -len(spec_space)
        assert not outcome.goal_reached
        assert outcome.met_fraction == 0.0
        assert outcome.normalized_errors == {"gain": -1.0, "power": -1.0}

    def test_p2s_partially_missing_specs(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 450.0}, {"gain": 400.0, "power": 5e-3})
        assert outcome.reward == -len(spec_space)
        assert outcome.normalized_errors["gain"] >= 0.0
        assert outcome.normalized_errors["power"] == -1.0

    def test_p2s_nan_measured_value(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward(
            {"gain": float("nan"), "power": 1e-3}, {"gain": 400.0, "power": 5e-3}
        )
        assert outcome.reward == -len(spec_space)
        assert not outcome.goal_reached

    def test_p2s_infinite_measured_value(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward(
            {"gain": float("inf"), "power": 1e-3}, {"gain": 400.0, "power": 5e-3}
        )
        assert outcome.reward == -len(spec_space)

    def test_p2s_nan_target_value(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward(
            {"gain": 450.0, "power": 1e-3}, {"gain": float("nan"), "power": 5e-3}
        )
        assert outcome.reward == -len(spec_space)

    def test_p2s_missing_target_key_raises(self, spec_space):
        """Targets are caller input: a typo'd spec name must stay loud."""
        reward = P2SReward(spec_space)
        with pytest.raises(KeyError, match="missing target"):
            reward({"gain": 450.0, "power": 1e-3}, {"gian": 400.0, "power": 5e-3})

    def test_fom_empty_measured_dict(self, spec_space):
        reward = FomReward(spec_space)
        outcome = reward({}, valid=True)
        assert outcome.reward == reward.invalid_penalty
        assert not outcome.goal_reached

    def test_fom_missing_efficiency(self, spec_space):
        reward = FomReward(spec_space)
        outcome = reward({"output_power": 2.5}, valid=True)
        assert outcome.reward == reward.invalid_penalty

    def test_fom_nan_spec_value(self, spec_space):
        reward = FomReward(spec_space)
        outcome = reward({"output_power": float("nan"), "efficiency": 0.55})
        assert outcome.reward == reward.invalid_penalty

    def test_fom_figure_of_merit_nan_on_missing(self, spec_space):
        import math

        reward = FomReward(spec_space)
        assert math.isnan(reward.figure_of_merit({"output_power": 2.5}))
        assert math.isnan(reward.figure_of_merit({}))

    def test_valid_path_unchanged(self, spec_space):
        reward = P2SReward(spec_space)
        outcome = reward({"gain": 450.0, "power": 1e-3}, {"gain": 400.0, "power": 5e-3})
        assert outcome.reward == GOAL_BONUS


@settings(max_examples=40, deadline=None)
@given(
    gain=st.floats(min_value=1.0, max_value=1e4),
    power=st.floats(min_value=1e-6, max_value=1.0),
    target_gain=st.floats(min_value=300.0, max_value=500.0),
    target_power=st.floats(min_value=1e-4, max_value=1e-2),
)
def test_property_p2s_reward_is_bonus_or_nonpositive(gain, power, target_gain, target_power):
    """The Eq. (1) reward is either the goal bonus or a value in [-N, 0]."""
    spec_space = SpecificationSpace(
        [
            Specification("gain", 300.0, 500.0, Objective.MAXIMIZE),
            Specification("power", 1e-4, 1e-2, Objective.MINIMIZE),
        ]
    )
    outcome = P2SReward(spec_space)({"gain": gain, "power": power},
                                    {"gain": target_gain, "power": target_power})
    if outcome.goal_reached:
        assert outcome.reward == GOAL_BONUS
    else:
        assert -len(spec_space) <= outcome.reward < 0.0 or outcome.reward == 0.0
