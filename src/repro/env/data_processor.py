"""Data-processing module (DPM) of the circuit design environment.

In Fig. 2 of the paper the environment contains, besides the simulator, a
"data processor" that (a) converts the agent's actions into device-parameter
updates and rewrites the netlist, and (b) converts simulated specifications
into rewards and state features.  :class:`DataProcessor` is that component.
Keeping it separate from the environment makes each piece independently
testable and lets the optimization baselines (GA/BO) reuse the exact same
netlist-rewriting and spec-normalization code paths.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.graph.circuit_graph import CircuitGraph
from repro.env.spaces import Observation


class DataProcessor:
    """Bridges agent actions, netlist parameters, and observations.

    Parameters
    ----------
    benchmark:
        Circuit benchmark providing the design space and spec space.
    netlist:
        The working netlist this processor rewrites in place.
    technology_constants:
        Constants used for the Baseline B static node features.
    """

    def __init__(
        self,
        benchmark: CircuitBenchmark,
        netlist: Netlist,
        technology_constants: Optional[Dict[str, float]] = None,
    ) -> None:
        self.benchmark = benchmark
        self.netlist = netlist
        self.graph = CircuitGraph(netlist)
        self.technology_constants = technology_constants or {}
        self._values: Optional[np.ndarray] = None
        # Static node features and the adjacency depend only on the topology
        # and the technology constants, both fixed for this processor's
        # lifetime — compute them once instead of on every observation.
        self._static_features = self.graph.static_feature_matrix(self.technology_constants)
        self._adjacency = self.graph.adjacency_matrix

    @property
    def adjacency(self) -> np.ndarray:
        """The processor's stable adjacency object (shared into observations).

        Every :class:`~repro.env.spaces.Observation` this processor emits
        carries this exact array object, so identity-keyed operator caches
        (e.g. ``GraphEncoder``) and the compiled-plan tracer can rely on it.
        Treat it as read-only.
        """
        return self._adjacency

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    @property
    def parameter_values(self) -> np.ndarray:
        """Current device-parameter vector of the working netlist.

        Served from a cached copy of the last vector written through
        :meth:`set_parameters` — every rewrite of this processor's netlist
        goes through that method, so the cache cannot go stale.  The first
        access (before any write) reads the netlist directly.
        """
        if self._values is None:
            self._values = self.benchmark.design_space.vector_from_netlist(self.netlist)
        return self._values.copy()

    def set_parameters(self, values: np.ndarray) -> np.ndarray:
        """Write a parameter vector into the netlist (clipped to the grid)."""
        self._values = self.benchmark.design_space.apply_to_netlist(self.netlist, values)
        return self._values.copy()

    def apply_actions(self, action_indices: np.ndarray) -> np.ndarray:
        """Apply one ``M``-vector of discrete actions and rewrite the netlist."""
        updated = self.benchmark.design_space.apply_actions(
            self.parameter_values, action_indices
        )
        return self.set_parameters(updated)

    # ------------------------------------------------------------------
    # Observation construction
    # ------------------------------------------------------------------
    def spec_feature_vector(
        self, measured: Mapping[str, float], targets: Mapping[str, float]
    ) -> np.ndarray:
        """Specification context for the FCNN branch.

        Concatenates the range-normalized target specs, the range-normalized
        measured specs, and the per-spec clipped normalized error (the same
        quantity the reward uses), giving the policy a direct view of the
        remaining design gap and the couplings between specifications.
        """
        spec_space = self.benchmark.spec_space
        normalized_targets = spec_space.normalize(targets)
        normalized_measured = spec_space.normalize(measured)
        errors = spec_space.normalized_errors(measured, targets)
        return np.concatenate([normalized_targets, normalized_measured, errors])

    def observation(
        self, measured: Mapping[str, float], targets: Mapping[str, float]
    ) -> Observation:
        """Assemble the full observation for the current netlist state.

        The static-feature and adjacency arrays are shared (not copied) across
        every observation this processor produces — they are constants of the
        topology and all consumers treat observations as read-only.
        """
        return Observation(
            node_features=self.graph.node_feature_matrix(),
            static_node_features=self._static_features,
            adjacency=self._adjacency,
            spec_features=self.spec_feature_vector(measured, targets),
            normalized_parameters=self.benchmark.design_space.normalize(self.parameter_values),
            measured_specs=dict(measured),
            target_specs=dict(targets),
        )

    @property
    def spec_feature_dimension(self) -> int:
        """Length of :meth:`spec_feature_vector` (3 entries per specification)."""
        return 3 * len(self.benchmark.spec_space)

    @property
    def node_feature_dimension(self) -> int:
        return self.graph.feature_dimension

    @property
    def num_graph_nodes(self) -> int:
        return self.graph.num_nodes
