"""Cross-check the analytic op-amp evaluator against the MNA small-signal sweep.

The analytic path uses closed-form pole/zero expressions; the MNA path builds
the two-stage small-signal equivalent circuit and extracts gain, unity-gain
bandwidth and phase margin numerically from a frequency sweep.  Both must
agree on the quantities the RL environment exposes (the analytic pole
formulas are approximations, so tolerances are loose but meaningful).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_two_stage_opamp
from repro.simulation.opamp_sim import OpAmpSimulator


# Two properly Miller-compensated sizings (second-stage gm well above the
# input-pair gm).  The analytic pole/zero formulas are textbook
# approximations that hold for compensated designs, which is the regime the
# trained policy operates in; the cross-check therefore uses such sizings.
_COMPENSATED_SIZINGS = {
    "moderate_power": {
        ("M1", "width"): 10e-6, ("M1", "fingers"): 4,
        ("M2", "width"): 10e-6, ("M2", "fingers"): 4,
        ("M5", "width"): 8e-6, ("M5", "fingers"): 4,
        ("M6", "width"): 80e-6, ("M6", "fingers"): 16,
        ("M7", "width"): 40e-6, ("M7", "fingers"): 8,
        ("CC", "value"): 3e-12,
    },
    "low_power": {
        ("M1", "width"): 4e-6, ("M1", "fingers"): 2,
        ("M2", "width"): 4e-6, ("M2", "fingers"): 2,
        ("M5", "width"): 4e-6, ("M5", "fingers"): 2,
        ("M6", "width"): 60e-6, ("M6", "fingers"): 8,
        ("M7", "width"): 20e-6, ("M7", "fingers"): 4,
        ("CC", "value"): 2e-12,
    },
}


@pytest.fixture(params=sorted(_COMPENSATED_SIZINGS))
def sized_netlist(request):
    benchmark = build_two_stage_opamp()
    netlist = benchmark.fresh_netlist()
    for (device, attribute), value in _COMPENSATED_SIZINGS[request.param].items():
        netlist.set_parameter(device, attribute, value)
    return netlist


class TestAnalyticVsMna:
    def test_dc_gain_matches(self, sized_netlist):
        analytic = OpAmpSimulator(method="analytic").simulate(sized_netlist)
        numeric = OpAmpSimulator(method="mna").simulate(sized_netlist)
        assert numeric.spec("gain") == pytest.approx(analytic.spec("gain"), rel=0.05)

    def test_unity_gain_bandwidth_matches(self, sized_netlist):
        analytic = OpAmpSimulator(method="analytic").simulate(sized_netlist)
        numeric = OpAmpSimulator(method="mna").simulate(sized_netlist)
        assert numeric.spec("bandwidth") == pytest.approx(analytic.spec("bandwidth"), rel=0.35)

    def test_phase_margin_close(self, sized_netlist):
        analytic = OpAmpSimulator(method="analytic").simulate(sized_netlist)
        numeric = OpAmpSimulator(method="mna").simulate(sized_netlist)
        assert abs(numeric.spec("phase_margin") - analytic.spec("phase_margin")) < 15.0

    def test_power_identical_between_methods(self, sized_netlist):
        # Power is a DC quantity: both paths share the same bias computation.
        analytic = OpAmpSimulator(method="analytic").simulate(sized_netlist)
        numeric = OpAmpSimulator(method="mna").simulate(sized_netlist)
        assert numeric.spec("power") == pytest.approx(analytic.spec("power"))


class TestSmallSignalCircuit:
    def test_low_frequency_response_equals_dc_gain(self):
        benchmark = build_two_stage_opamp()
        simulator = OpAmpSimulator()
        netlist = benchmark.fresh_netlist()
        op = simulator.operating_point(netlist)
        circuit = simulator.build_small_signal_circuit(netlist, op)
        solution = circuit.ac_analysis([1.0, 10.0])
        gain = np.abs(solution.voltage("out")[0])
        expected = op.first_stage_gain * op.second_stage_gain
        assert gain == pytest.approx(expected, rel=0.02)

    def test_response_rolls_off_with_frequency(self):
        benchmark = build_two_stage_opamp()
        simulator = OpAmpSimulator()
        netlist = benchmark.fresh_netlist()
        circuit = simulator.build_small_signal_circuit(netlist)
        solution = circuit.ac_analysis(np.logspace(1, 10, 40))
        magnitude = np.abs(solution.voltage("out"))
        assert magnitude[0] > magnitude[-1]
        assert magnitude[-1] < 1.0
