"""Helpers mapping netlists to the graphs used by policies.

The paper distinguishes between the *full* circuit topology (its
contribution: supply, ground, and bias nodes included) and the *partial*
topology used by the prior GCN-RL method (Baseline B).  These helpers give
each construction a name so environments and ablation benches read clearly.
"""

from __future__ import annotations

from repro.circuits.devices import DeviceType
from repro.circuits.netlist import Netlist
from repro.graph.circuit_graph import CircuitGraph

#: Device types excluded by the partial-topology (Baseline B style) graph.
PARTIAL_TOPOLOGY_EXCLUDES = (DeviceType.SUPPLY, DeviceType.GROUND, DeviceType.BIAS)


def build_full_graph(netlist: Netlist) -> CircuitGraph:
    """Full circuit topology: every device plus supply/ground/bias nodes."""
    return CircuitGraph(netlist)


def build_partial_graph(netlist: Netlist) -> CircuitGraph:
    """Partial topology excluding power-supply and bias nodes (Baseline B)."""
    return CircuitGraph(netlist, exclude_types=PARTIAL_TOPOLOGY_EXCLUDES)


def build_graph(netlist: Netlist, full_topology: bool = True) -> CircuitGraph:
    """Build either graph variant from a flag (used by policy configs)."""
    if full_topology:
        return build_full_graph(netlist)
    return build_partial_graph(netlist)
