"""``python -m repro.run analyze`` — the invariant lint command line.

Typical invocations::

    python -m repro.run analyze src/                 # text report, baseline-aware
    python -m repro.run analyze src/ --strict        # ignore the baseline
    python -m repro.run analyze src/ --format json   # machine-readable report
    python -m repro.run analyze src/ --output report.json
    python -m repro.run analyze src/ --write-baseline
    python -m repro.run analyze --rules              # print the rule catalog

The baseline (default ``analysis-baseline.json`` in the working directory,
when present) grandfathers known findings by fingerprint; only findings
outside it affect the exit status.  Stale baseline entries — findings that
no longer occur — are reported so the baseline gets regenerated as debt is
paid down, and ``--write-baseline`` regenerates it from the current tree.

Exit status: 0 when every finding is baselined (or there are none), 1 when
new findings exist, 2 on bad input (unreadable paths/baseline, syntax
errors in analyzed files).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.analysis.engine import (
    DEFAULT_BASELINE,
    analyze_paths,
    baseline_document,
    load_baseline,
    split_baseline,
)
from repro.analysis.rules import ALL_RULES
from repro.utils import atomic_write_json


def build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run analyze",
        description="Lint the tree against the project's invariant rules "
                    "(determinism, lock discipline, atomic artifacts).",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze (default: src/ "
                             "when it exists, else the working directory)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline JSON of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} when present)")
    parser.add_argument("--strict", action="store_true",
                        help="ignore the baseline: every finding fails the run "
                             "(inline noqa suppressions still apply)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format (default text)")
    parser.add_argument("--output", default=None,
                        help="also write the JSON report to this file "
                             "(atomically; what CI uploads as an artifact)")
    parser.add_argument("--write-baseline", action="store_true", dest="write_baseline",
                        help="regenerate the baseline from the current findings "
                             "and exit 0")
    parser.add_argument("--rules", action="store_true", dest="list_rules",
                        help="print the rule catalog (ID, rationale, fix hint) "
                             "and exit")
    return parser


def _print_rule_catalog() -> None:
    for rule in ALL_RULES:
        print(f"{rule.rule_id}: {rule.title}")
        print(f"  rationale: {rule.rationale}")
        print(f"  fix: {rule.hint}")
        print()


def _report_document(
    paths: Sequence[str],
    new: Sequence[Any],
    baselined: Sequence[Any],
    stale: Sequence[Any],
    files: int,
    baseline_path: Optional[str],
) -> Dict[str, Any]:
    by_rule: Dict[str, int] = {}
    for finding in new:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "version": 1,
        "paths": list(paths),
        "files": files,
        "baseline": baseline_path,
        "findings": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in baselined],
        "stale_baseline": [dict(entry) for entry in stale],
        "summary": {
            "new": len(new),
            "baselined": len(baselined),
            "stale_baseline": len(stale),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }


def main_analyze(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_analyze_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rule_catalog()
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]

    try:
        report = analyze_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if report.errors:
        for error in report.errors:
            print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path: Optional[str] = args.baseline
    if baseline_path is None and not args.strict and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        atomic_write_json(
            target, baseline_document(report.findings), indent=2, sort_keys=True
        )
        print(f"wrote {len(report.findings)} grandfathered findings to {target}")
        return 0

    entries: Sequence[Any] = []
    if baseline_path is not None and not args.strict:
        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: could not load baseline {baseline_path!r}: {exc}",
                  file=sys.stderr)
            return 2
    new, baselined, stale = split_baseline(report.findings, entries)

    document = _report_document(
        paths, new, baselined, stale, report.files,
        baseline_path if not args.strict else None,
    )
    if args.output is not None:
        atomic_write_json(args.output, document, indent=2, sort_keys=True)

    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in new:
            print(finding.render())
            print(f"    hint: {finding.hint}")
        for entry in stale:
            print(
                f"stale baseline entry: {entry.get('rule')} at {entry.get('path')} "
                "no longer occurs (regenerate with --write-baseline)"
            )
        mode = "strict" if args.strict else "baseline-aware"
        print(
            f"analyze ({mode}): {len(new)} finding(s), {len(baselined)} baselined, "
            f"{len(stale)} stale baseline entr(ies) across {report.files} file(s)"
        )
    return 1 if new else 0
