"""Figure-of-merit optimization experiments (Fig. 7 and the last Table 2 column).

For the RF PA the paper additionally maximizes the figure of merit
``FoM = P + 3·E`` (output power plus three times power efficiency).  The RL
methods are retrained with the FoM reward; the GA and BO baselines maximize
the FoM directly.  The paper reports final FoM values of 3.25 (GAT-FC),
3.18 (GCN-FC), ~2.9 / ~2.8 for the RL baselines, 2.61 (BO) and 2.53 (GA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.agents.policy import ActorCriticPolicy
from repro.agents.ppo import PPOTrainer, TrainingHistory
from repro.api.catalog import make_env, make_optimizer, make_policy
from repro.env.reward import FomReward
from repro.experiments.configs import ExperimentScale, RL_METHODS, bench_scale, rl_hyperparameters


@dataclass
class FomTrainingResult:
    """FoM-optimization outcome of one RL method."""

    method: str
    history: TrainingHistory
    policy: ActorCriticPolicy
    best_fom: float
    final_specs: Dict[str, float]


def _best_fom_from_policy(
    policy: ActorCriticPolicy, seed: int = 0, episodes: int = 3
) -> tuple[float, Dict[str, float]]:
    """Greedy roll-outs on the fine FoM environment; return the best FoM seen."""
    env = make_env("rf_pa-fom-v0", seed=seed)
    reward_fn: FomReward = env.reward_fn  # type: ignore[assignment]
    rng = np.random.default_rng(seed)
    best = -np.inf
    best_specs: Dict[str, float] = {}
    for episode in range(episodes):
        observation = env.reset()
        done = False
        while not done:
            action, _, _ = policy.act(observation, rng, deterministic=True)
            observation, _, done, info = env.step(action)
            fom = float(info["figure_of_merit"])
            if fom > best:
                best = fom
                best_specs = dict(info["specs"])
    return float(best), best_specs


def run_fom_training(
    method: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    total_episodes: Optional[int] = None,
) -> FomTrainingResult:
    """Train one RL method with the FoM reward (coarse simulator, per the
    transfer-learning protocol) and measure the best FoM on the fine simulator."""
    scale = scale or bench_scale()
    env = make_env("rf_pa-fom-coarse-v0", seed=seed)
    rng = np.random.default_rng(seed)
    policy = make_policy(method, env, rng)
    hyper = rl_hyperparameters("rf_pa")
    trainer = PPOTrainer(env, policy, config=hyper["ppo"], seed=seed, method_name=f"{method}_fom")
    episodes = total_episodes or scale.rf_pa_training_episodes
    history = trainer.train(
        total_episodes=episodes,
        episodes_per_update=scale.episodes_per_update,
        eval_interval=None,
    )
    best_fom, best_specs = _best_fom_from_policy(policy, seed=seed)
    return FomTrainingResult(
        method=method, history=history, policy=policy, best_fom=best_fom, final_specs=best_specs
    )


@dataclass
class FomOptimizerResult:
    """FoM achieved by an optimization baseline (GA / BO)."""

    method: str
    best_fom: float
    num_simulations: int
    curve: np.ndarray


def run_fom_optimizer(
    method: str, seed: int = 0, budget: Optional[int] = None
) -> FomOptimizerResult:
    """Maximize the PA figure of merit with GA or BO on the fine simulator."""
    env = make_env("rf_pa-fom-v0", seed=seed)
    optimizer = make_optimizer(method)
    result = optimizer.optimize(env, budget=budget, seed=seed)
    return FomOptimizerResult(
        method=method,
        best_fom=float(result.best_objective),
        num_simulations=result.num_simulations,
        curve=result.trace.best_curve(),
    )


@dataclass
class FomComparison:
    """The full Fig. 7 / Table 2 FoM comparison."""

    rl_results: Dict[str, FomTrainingResult] = field(default_factory=dict)
    optimizer_results: Dict[str, FomOptimizerResult] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        """Method name to final FoM value (the Table 2 "FoM value" column)."""
        values = {name: result.best_fom for name, result in self.rl_results.items()}
        values.update({name: result.best_fom for name, result in self.optimizer_results.items()})
        return values


def run_fom_comparison(
    rl_methods: Sequence[str] = RL_METHODS,
    optimizer_methods: Sequence[str] = ("genetic_algorithm", "bayesian_optimization"),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
) -> FomComparison:
    """Run the complete FoM comparison across RL methods and optimizers."""
    scale = scale or bench_scale()
    comparison = FomComparison()
    for method in rl_methods:
        comparison.rl_results[method] = run_fom_training(method, scale=scale, seed=seed)
    for method in optimizer_methods:
        comparison.optimizer_results[method] = run_fom_optimizer(method, seed=seed)
    return comparison
