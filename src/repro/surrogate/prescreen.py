"""Surrogate pre-screening for population optimizers (rank cheap, verify exact).

The GA/BO/RS baselines burn their simulation budget scoring whole populations
per generation, most of which are nowhere near the optimum.
:class:`SurrogatePrescreener` cuts that cost without giving the surrogate any
authority over the answer:

1. the surrogate predicts specs for *every* candidate in the population and
   ranks them by the exact objective formula applied to the predictions;
2. only the top fraction is verified with the exact simulator — those
   verified values are what the optimizer sees for its elites;
3. the **final answer is always exact**: the reported best sizing, objective
   and specs come from the best exactly-verified candidate
   (:meth:`repro.baselines.base.SizingOptimizer._build_result` consults
   :meth:`~repro.baselines.base.SizingProblem.best_exact_record`), never from
   a surrogate estimate.

Because exact verification is structural, pre-screening does not need the
:class:`~repro.surrogate.gate.TrustGate` that guards the simulation *tier*
(where surrogate answers replace exact ones) — a trained model is enough.
An inactive prescreener — untrained surrogate, or a population too small to
be worth splitting — bypasses entirely: the run is then bitwise identical
to an unscreened one.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Union

import numpy as np

from repro.surrogate.model import SpecSurrogate
from repro.surrogate.trainer import load_surrogate

#: Default fraction of each population that gets exact verification.
DEFAULT_TOP_FRACTION = 0.25

#: Default floor on exact verifications per screened population.
DEFAULT_MIN_EXACT = 4


@dataclass
class PrescreenStats:
    """Counters of one pre-screening run (JSON-serializable)."""

    #: Populations actually screened (surrogate-ranked, top-k verified).
    populations: int = 0
    #: Candidates in screened populations.
    candidates: int = 0
    #: Candidates verified with the exact simulator.
    exact_verified: int = 0
    #: Candidates whose optimizer-visible value is a surrogate estimate.
    surrogate_ranked: int = 0
    #: Candidates passed through unscreened (untrained model, tiny population,
    #: or a topology the surrogate was not trained for).
    bypassed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "populations": self.populations,
            "candidates": self.candidates,
            "exact_verified": self.exact_verified,
            "surrogate_ranked": self.surrogate_ranked,
            "bypassed": self.bypassed,
        }


class SurrogatePrescreener:
    """Ranks candidate populations with a trusted surrogate, verifies top-k.

    Parameters
    ----------
    surrogate:
        A trained :class:`SpecSurrogate` or a path to a checkpoint saved by
        :func:`~repro.surrogate.trainer.save_surrogate`.
    top_fraction:
        Fraction of each population to verify exactly (rounded up).
    min_exact:
        Floor on exact verifications per population, so small populations
        are never dominated by unverified estimates.
    """

    def __init__(
        self,
        surrogate: Union[SpecSurrogate, str, os.PathLike],
        top_fraction: float = DEFAULT_TOP_FRACTION,
        min_exact: int = DEFAULT_MIN_EXACT,
    ) -> None:
        if not isinstance(surrogate, SpecSurrogate):
            surrogate = load_surrogate(surrogate)
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        if min_exact < 1:
            raise ValueError("min_exact must be >= 1")
        self.surrogate = surrogate
        self.top_fraction = float(top_fraction)
        self.min_exact = int(min_exact)
        self.stats = PrescreenStats()

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the surrogate is trained enough to rank populations.

        Pre-screening only *orders* candidates — every value the optimizer
        keeps is exactly verified — so unlike the simulation tier it does not
        require a calibrated trust gate, just a fitted model.  A cold corpus
        (untrained model) makes this False, and every population then takes
        the pure exact path.
        """
        return self.surrogate.is_trained

    def matches(self, circuit: str, num_inputs: int) -> bool:
        """Whether the surrogate was trained for this topology and layout."""
        return self.surrogate.circuit == circuit and self.surrogate.num_inputs == num_inputs

    def num_exact(self, population_size: int) -> int:
        """How many candidates of a population get exact verification."""
        return min(
            int(population_size),
            max(self.min_exact, int(math.ceil(self.top_fraction * population_size))),
        )

    def predicted_objectives(
        self,
        full_parameters: np.ndarray,
        score_fn: Callable[[Mapping[str, float]], float],
    ) -> np.ndarray:
        """Surrogate-estimated objective per candidate (no simulator calls).

        ``full_parameters`` is the ``(P, D)`` batch of *device* parameter
        vectors (the corpus layout); ``score_fn`` is the problem's exact
        objective formula, applied to the predicted spec dicts.
        """
        specs, _ = self.surrogate.predict(full_parameters)
        return np.array(
            [score_fn(dict(zip(self.surrogate.spec_names, row))) for row in specs],
            dtype=np.float64,
        )

    def top_indices(self, predicted: np.ndarray, population_size: int) -> np.ndarray:
        """Indices to verify exactly, in ascending index order.

        The ranking argsort is stable, so ties keep first-row-wins semantics
        — the same tie-break an unscreened argmax over exact values uses.
        """
        k = self.num_exact(population_size)
        top = np.argsort(-np.asarray(predicted, dtype=np.float64), kind="stable")[:k]
        return np.sort(top)

    def describe(self) -> Dict[str, Any]:
        """Run-metadata digest (what optimizer adapters record)."""
        return {
            "circuit": self.surrogate.circuit,
            "top_fraction": self.top_fraction,
            "min_exact": self.min_exact,
            "active": self.active,
            "threshold": self.surrogate.gate.threshold,
            "num_train_points": self.surrogate.num_train_points,
            "stats": self.stats.to_dict(),
        }
