"""Policy deployment: using a trained policy to design circuits.

"Policy deployment applies a trained policy to automatically find the device
parameters for given specifications" (Sec. 4).  This module implements

* :func:`deploy_policy` — run one deployment episode for one specification
  group and return its trajectory (the data behind Fig. 5 and Fig. 6), and
* :func:`evaluate_deployment` — deploy over a batch of sampled specification
  groups and report the two headline Table 2 metrics: *design accuracy*
  (fraction of groups for which all specs are met within the step budget)
  and *mean number of design steps*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.agents.policy import ActorCriticPolicy
from repro.env.circuit_env import CircuitDesignEnv, EpisodeTrajectory


@dataclass
class DeploymentResult:
    """Outcome of deploying the policy for one specification group."""

    target_specs: Dict[str, float]
    success: bool
    steps: int
    final_specs: Dict[str, float]
    trajectory: EpisodeTrajectory


@dataclass
class DeploymentEvaluation:
    """Aggregate deployment statistics over a batch of specification groups."""

    results: List[DeploymentResult] = field(default_factory=list)

    @property
    def num_targets(self) -> int:
        return len(self.results)

    @property
    def accuracy(self) -> float:
        """Design accuracy: fraction of target groups fully satisfied."""
        if not self.results:
            return 0.0
        return float(np.mean([r.success for r in self.results]))

    @property
    def mean_steps(self) -> float:
        """Mean number of design (simulation) steps per deployment episode."""
        if not self.results:
            return 0.0
        return float(np.mean([r.steps for r in self.results]))

    @property
    def mean_successful_steps(self) -> float:
        """Mean steps counting only successful deployments (paper's metric)."""
        steps = [r.steps for r in self.results if r.success]
        return float(np.mean(steps)) if steps else float("nan")


def deploy_policy(
    env: CircuitDesignEnv,
    policy: ActorCriticPolicy,
    target_specs: Mapping[str, float],
    deterministic: bool = True,
    rng: Optional[np.random.Generator] = None,
    max_steps: Optional[int] = None,
) -> DeploymentResult:
    """Run one deployment episode toward ``target_specs``.

    Parameters
    ----------
    env:
        The design environment (its simulator defines the fidelity level —
        for the RF PA this should be the *fine* simulator, per the paper's
        transfer-learning protocol).
    policy:
        A trained actor-critic policy.
    target_specs:
        The desired specification group.
    deterministic:
        Greedy (mode) actions when True, sampled actions otherwise.
    rng:
        Random generator for stochastic deployment.
    max_steps:
        Optional per-deployment step budget overriding the environment's
        default (Fig. 6 uses a longer budget for out-of-distribution specs).
    """
    rng = rng if rng is not None else np.random.default_rng()
    original_max_steps = env.max_steps
    if max_steps is not None:
        env.max_steps = int(max_steps)
    try:
        observation = env.reset(target_specs=target_specs)
        done = False
        while not done:
            action, _, _ = policy.act(observation, rng, deterministic=deterministic)
            observation, _, done, info = env.step(action)
        trajectory = env.trajectory
        assert trajectory is not None
        return DeploymentResult(
            target_specs=dict(target_specs),
            success=trajectory.success,
            steps=trajectory.length,
            final_specs=dict(env.measured_specs),
            trajectory=trajectory,
        )
    finally:
        env.max_steps = original_max_steps


def evaluate_deployment(
    env: CircuitDesignEnv,
    policy: ActorCriticPolicy,
    num_targets: int = 200,
    seed: Optional[int] = None,
    targets: Optional[Sequence[Mapping[str, float]]] = None,
    deterministic: bool = True,
) -> DeploymentEvaluation:
    """Deploy the policy over a batch of specification groups.

    The paper evaluates each point of the Fig. 3 accuracy curves on 200
    randomly sampled groups; ``num_targets`` controls that batch size here.
    Pass an explicit ``targets`` sequence to evaluate every method on the
    identical batch (as done by the Table 2 harness).
    """
    rng = np.random.default_rng(seed)
    if targets is None:
        targets = env.benchmark.spec_space.sample_batch(rng, num_targets)
    evaluation = DeploymentEvaluation()
    for target in targets:
        result = deploy_policy(env, policy, target, deterministic=deterministic, rng=rng)
        evaluation.results.append(result)
    return evaluation
