"""Orchestrated sweep wall-clock: cold vs warm persistent simulation cache.

The ``repro.orchestrate`` value proposition for repeated experimentation is
that the :class:`repro.parallel.DiskSimulationCache` outlives processes and
runs: a re-executed sweep (fresh artifact store, so every unit really runs
again) should spend almost nothing in the simulator because every design
point it visits was persisted by the previous run.  This bench records, on
the RF PA fine simulator (the most expensive evaluator in the repo, so the
cache margin is physical rather than noise):

* ``cold_s``   — sweep wall-clock with an empty disk cache,
* ``warm_s``   — same sweep, fresh store, pre-populated disk cache,
* ``resume_s`` — same sweep, same store: every unit skipped via artifacts,

plus the warm run's cache hit statistics, into the CI benchmark JSON.
"""

from __future__ import annotations

import time

from repro.orchestrate import SweepConfig, run_sweep

#: Simulator-call budget per search unit (RF PA fine: ~0.3 ms per call, so
#: the sweep's simulation time dominates per-unit fixed costs).
BUDGET = 150


def _sweep(disk_cache) -> SweepConfig:
    return SweepConfig(
        name="bench-orchestrator",
        optimizers=["random", {"id": "genetic", "params": {"population_size": 10}}],
        envs=["rf_pa-fine-v0"],
        seeds=[0, 1],
        budget=BUDGET,
        disk_cache=str(disk_cache),
    )


def test_warm_disk_cache_sweep_beats_cold(benchmark, tmp_path):
    cache_dir = tmp_path / "sim_cache"

    def run():
        timings = {}
        start = time.perf_counter()
        cold = run_sweep(_sweep(cache_dir), store=tmp_path / "store_cold",
                         workers=1)
        timings["cold_s"] = time.perf_counter() - start
        assert cold.ok

        start = time.perf_counter()
        warm = run_sweep(_sweep(cache_dir), store=tmp_path / "store_warm",
                         workers=1)
        timings["warm_s"] = time.perf_counter() - start
        assert warm.ok

        start = time.perf_counter()
        resume = run_sweep(_sweep(cache_dir), store=tmp_path / "store_warm",
                           workers=1)
        timings["resume_s"] = time.perf_counter() - start
        assert resume.ok and not resume.executed

        # Warm-run correctness: bit-identical results, zero real simulations.
        warm_cache = {}
        for cold_record, warm_record in zip(cold.records, warm.records):
            assert warm_record.result["result"] == cold_record.result["result"]
            stats = warm_record.result["cache"]
            warm_cache[warm_record.unit_id] = stats
            assert stats["misses"] == 0, "warm sweep must simulate nothing"
            assert stats["disk_hits"] > 0
        timings["warm_cache"] = warm_cache
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    total_disk_hits = sum(s["disk_hits"] for s in timings["warm_cache"].values())
    benchmark.extra_info.update(
        {
            "budget": BUDGET,
            "num_units": 4,
            "cold_s": round(timings["cold_s"], 4),
            "warm_s": round(timings["warm_s"], 4),
            "resume_s": round(timings["resume_s"], 4),
            "warm_speedup": round(timings["cold_s"] / timings["warm_s"], 2),
            "warm_disk_hits": total_disk_hits,
        }
    )
    # The acceptance bar: a warm (disk-cache-hit) sweep is faster than a cold
    # one, and serving units from the artifact store is faster still.
    assert timings["warm_s"] < timings["cold_s"]
    assert timings["resume_s"] < timings["warm_s"]
