"""The micro-batched policy deployment service.

:class:`DeploymentService` is the serving front end over the checkpoint,
inference-mode and batched-deployment layers: on-disk checkpoints rebuild
the policy, the grad-free inference mode makes each forward pure numpy, and
the batched deployment engine runs up to ``batch_size`` specification-group
episodes lock-step on one :class:`~repro.parallel.VectorCircuitEnv` whose
sub-environments share a :class:`~repro.parallel.SimulationCache`.  The
vector environments (and their caches) persist across
:meth:`DeploymentService.serve` calls, so a long-lived service keeps getting
cheaper as traffic repeats designs.

The service is thread-safe at the granularity the async gateway needs: each
topology's vector environment is guarded by its own lock (concurrent
``serve()`` calls touching the same environment serialize; different
topologies run genuinely in parallel), and all statistics accumulate into a
lock-guarded :class:`ServeStats` whose :meth:`ServeStats.snapshot` returns a
consistent point-in-time copy.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.agents.checkpoint import CheckpointError, load_checkpoint
from repro.agents.deployment import DeploymentResult, deploy_policy_batch
from repro.agents.policy import ActorCriticPolicy
from repro.api.catalog import make_env
from repro.env.circuit_env import CircuitDesignEnv
from repro.parallel.cache import DEFAULT_CACHE_SIZE
from repro.parallel.vector_env import VectorCircuitEnv
from repro.serve.protocol import ServeRequest, ServeResponse

#: How many recent per-request latencies the stats keep for percentiles.
LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class ServeStatsSnapshot:
    """A consistent point-in-time copy of :class:`ServeStats`.

    Episode counters come from the service layer; the batch/queue/latency
    block is filled in by the gateway when one fronts the service (all zero
    for plain synchronous ``serve()`` use).
    """

    episodes: int
    design_steps: int
    successes: int
    wall_time_s: float
    by_env: Dict[str, int]
    surrogate_hits: int
    trust_rejections: int
    exact_fallbacks: int
    # Gateway queue metrics.
    queue_depth: int
    batches: int
    full_flushes: int
    deadline_flushes: int
    drain_flushes: int
    max_coalesce: int
    mean_coalesce: float
    cache_hits: int
    errors: int
    timeouts: int
    latency_p50_ms: Optional[float]
    latency_p99_ms: Optional[float]

    @property
    def accuracy(self) -> float:
        return self.successes / self.episodes if self.episodes else 0.0

    @property
    def episodes_per_second(self) -> float:
        return self.episodes / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "episodes": self.episodes,
            "design_steps": self.design_steps,
            "successes": self.successes,
            "accuracy": self.accuracy,
            "wall_time_s": self.wall_time_s,
            "by_env": dict(self.by_env),
            "surrogate_hits": self.surrogate_hits,
            "trust_rejections": self.trust_rejections,
            "exact_fallbacks": self.exact_fallbacks,
            "queue_depth": self.queue_depth,
            "batches": self.batches,
            "full_flushes": self.full_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "max_coalesce": self.max_coalesce,
            "mean_coalesce": self.mean_coalesce,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
        }


class ServeStats:
    """Thread-safe cumulative counters over the lifetime of a service.

    One request is one deployment episode, so ``episodes`` is also the
    number of requests served.  The three tier counters aggregate the
    simulation tiers across every topology the service routes to (all zero
    unless a policy was registered with a surrogate).  A fronting gateway
    additionally folds its queue metrics — depth, coalesce sizes, what
    triggered each batch flush (full / deadline / drain), structured errors,
    and per-request latency percentiles — into the same object, so
    :meth:`snapshot` / :meth:`to_dict` is the one serving-stats document.

    Every mutator takes the internal lock; concurrent ``serve()`` calls and
    gateway workers cannot double-count (the attribute reads stay plain for
    back-compat — read :meth:`snapshot` when you need a consistent view).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.episodes = 0
        self.design_steps = 0
        self.successes = 0
        self.wall_time_s = 0.0
        self.by_env: Dict[str, int] = {}
        self.surrogate_hits = 0
        self.trust_rejections = 0
        self.exact_fallbacks = 0
        self.queue_depth = 0
        self.batches = 0
        self.full_flushes = 0
        self.deadline_flushes = 0
        self.drain_flushes = 0
        self.max_coalesce = 0
        self.coalesce_sum = 0
        self.cache_hits = 0
        self.errors = 0
        self.timeouts = 0
        self._latencies_ms: deque = deque(maxlen=LATENCY_WINDOW)

    # -- service-side accumulation -------------------------------------
    def record(self, env_id: str, results: Sequence[DeploymentResult], elapsed: float) -> None:
        with self._lock:
            self.episodes += len(results)
            self.design_steps += sum(result.steps for result in results)
            self.successes += sum(bool(result.success) for result in results)
            self.wall_time_s += elapsed
            self.by_env[env_id] = self.by_env.get(env_id, 0) + len(results)

    def record_responses(
        self, env_id: str, responses: Sequence[ServeResponse], elapsed: float
    ) -> None:
        """Fold already-built responses (the process-shard return path)."""
        with self._lock:
            self.episodes += len(responses)
            self.design_steps += sum(response.steps for response in responses)
            self.successes += sum(bool(response.success) for response in responses)
            self.wall_time_s += elapsed
            self.by_env[env_id] = self.by_env.get(env_id, 0) + len(responses)

    def record_tiers(
        self, surrogate_hits: int, trust_rejections: int, exact_fallbacks: int
    ) -> None:
        """Fold one serve call's simulation-tier deltas into the totals."""
        with self._lock:
            self.surrogate_hits += int(surrogate_hits)
            self.trust_rejections += int(trust_rejections)
            self.exact_fallbacks += int(exact_fallbacks)

    # -- gateway-side accumulation -------------------------------------
    def note_enqueued(self, count: int = 1) -> None:
        with self._lock:
            self.queue_depth += count

    def note_dequeued(self, count: int = 1) -> None:
        with self._lock:
            self.queue_depth = max(0, self.queue_depth - count)

    def record_batch(self, size: int, trigger: str) -> None:
        """One coalesced batch left the queue (``trigger``: why it flushed)."""
        with self._lock:
            self.batches += 1
            self.coalesce_sum += int(size)
            self.max_coalesce = max(self.max_coalesce, int(size))
            if trigger == "full":
                self.full_flushes += 1
            elif trigger == "deadline":
                self.deadline_flushes += 1
            else:
                self.drain_flushes += 1

    def record_latency(self, latency_ms: float) -> None:
        with self._lock:
            self._latencies_ms.append(float(latency_ms))

    def record_cache_hit(self) -> None:
        """A request was answered from the gateway's response cache."""
        with self._lock:
            self.cache_hits += 1

    def record_error(self, code: str) -> None:
        with self._lock:
            self.errors += 1
            if code == "timeout":
                self.timeouts += 1

    # -- reading -------------------------------------------------------
    @property
    def accuracy(self) -> float:
        return self.successes / self.episodes if self.episodes else 0.0

    @property
    def episodes_per_second(self) -> float:
        return self.episodes / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def snapshot(self) -> ServeStatsSnapshot:
        """A consistent copy of every counter (plus latency percentiles)."""
        with self._lock:
            if self._latencies_ms:
                latencies = np.asarray(self._latencies_ms, dtype=np.float64)
                p50 = float(np.percentile(latencies, 50))
                p99 = float(np.percentile(latencies, 99))
            else:
                p50 = p99 = None
            return ServeStatsSnapshot(
                episodes=self.episodes,
                design_steps=self.design_steps,
                successes=self.successes,
                wall_time_s=self.wall_time_s,
                by_env=dict(self.by_env),
                surrogate_hits=self.surrogate_hits,
                trust_rejections=self.trust_rejections,
                exact_fallbacks=self.exact_fallbacks,
                queue_depth=self.queue_depth,
                batches=self.batches,
                full_flushes=self.full_flushes,
                deadline_flushes=self.deadline_flushes,
                drain_flushes=self.drain_flushes,
                max_coalesce=self.max_coalesce,
                mean_coalesce=self.coalesce_sum / self.batches if self.batches else 0.0,
                cache_hits=self.cache_hits,
                errors=self.errors,
                timeouts=self.timeouts,
                latency_p50_ms=p50,
                latency_p99_ms=p99,
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable digest (what the deploy/serve CLIs write)."""
        return self.snapshot().to_dict()


class DeploymentService:
    """Serve specification targets with checkpointed policies, micro-batched.

    Parameters
    ----------
    batch_size:
        Maximum number of episodes run lock-step per topology (the width of
        each per-environment :class:`VectorCircuitEnv`).
    cache_size:
        Entry budget of each topology's shared simulation cache.
    deterministic:
        Greedy (mode) actions when True — the paper's deployment setting.
    seed:
        Seed for the service RNG (only consulted for stochastic serving).
    """

    def __init__(
        self,
        batch_size: int = 8,
        cache_size: int = DEFAULT_CACHE_SIZE,
        deterministic: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.deterministic = bool(deterministic)
        self.rng = np.random.default_rng(seed)
        self.stats = ServeStats()
        self._policies: Dict[str, ActorCriticPolicy] = {}
        self._vector_envs: Dict[str, VectorCircuitEnv] = {}
        self._default_env_id: Optional[str] = None
        # Per-env snapshot of the tier counters at the last serve() flush, so
        # cumulative CacheStats fold into ServeStats as deltas exactly once.
        self._tier_marks: Dict[str, Tuple[int, int, int]] = {}
        # One lock per topology: a vector env is stateful, so concurrent
        # serve() calls touching the same env serialize (different envs run
        # in parallel).  _registry_lock guards the registration tables.
        self._env_locks: Dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Policy registration
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        env_id: Optional[str] = None,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
        **kwargs: Any,
    ) -> "DeploymentService":
        """Build a service around one checkpoint (the CLI entry path)."""
        service = cls(**kwargs)
        service.add_checkpoint(
            path, env_id=env_id, surrogate=surrogate, surrogate_dir=surrogate_dir
        )
        return service

    def add_checkpoint(
        self,
        path: Union[str, Path],
        env_id: Optional[str] = None,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
    ) -> str:
        """Load a checkpoint and register its policy; returns the env ID used."""
        checkpoint = load_checkpoint(path)
        env_id = env_id or checkpoint.env_id
        if env_id is None:
            raise CheckpointError(
                f"checkpoint {path} does not record an environment ID; pass "
                "env_id=... (e.g. 'opamp-p2s-v0') to route its requests"
            )
        self.register_policy(
            env_id, checkpoint.policy, surrogate=surrogate, surrogate_dir=surrogate_dir
        )
        return env_id

    def register_policy(
        self,
        env_id: str,
        policy: ActorCriticPolicy,
        surrogate: Any = None,
        surrogate_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        """Register a (possibly freshly trained) policy for an environment ID.

        ``surrogate`` (a trained :class:`repro.surrogate.SpecSurrogate` or a
        checkpoint path) and/or ``surrogate_dir`` (a persistent corpus
        directory) route this topology's simulations through a
        :class:`repro.surrogate.TieredSimulator`; the tier counters surface
        in :attr:`stats` and :meth:`stats_dict`.
        """
        # Resolve now so an unknown ID fails at registration, not mid-serve.
        template = make_env(env_id)
        if not isinstance(template, CircuitDesignEnv):  # pragma: no cover - defensive
            raise ValueError(f"environment {env_id!r} is not a sequential CircuitDesignEnv")
        if policy.config.num_parameters != template.num_parameters:
            raise ValueError(
                f"policy sized for {policy.config.num_parameters} parameters cannot "
                f"serve environment {env_id!r} ({template.num_parameters} parameters)"
            )
        if surrogate is not None or surrogate_dir is not None:
            # Local import: plain serving should not pay for the nn stack
            # unless a learned tier is actually requested.
            from repro.surrogate import TieredSimulator

            template.simulator = TieredSimulator(
                template.simulator,
                surrogate=surrogate,
                directory=surrogate_dir,
                max_entries=self.cache_size,
            )
        vector_env = VectorCircuitEnv.from_env(
            template,
            num_envs=self.batch_size,
            cache_size=self.cache_size,
            autoreset=False,
        )
        with self._registry_lock:
            self._policies[env_id] = policy
            self._vector_envs[env_id] = vector_env
            self._tier_marks[env_id] = (0, 0, 0)
            self._env_locks.setdefault(env_id, threading.Lock())
            if self._default_env_id is None:
                self._default_env_id = env_id

    @property
    def env_ids(self) -> List[str]:
        """Environment IDs this service can currently route to."""
        return sorted(self._policies)

    def cache_stats(self, env_id: Optional[str] = None):
        """Simulation-cache statistics for one topology (default: the default)."""
        vector_env = self._vector_envs[self.resolve_env_id(env_id)]
        assert vector_env.cache is not None
        return vector_env.cache.stats

    def stats_dict(self) -> Dict[str, Any]:
        """One JSON-ready document: serve counters plus per-topology caches."""
        return {
            **self.stats.to_dict(),
            "caches": {
                env_id: vector_env.cache.stats.to_dict()
                for env_id, vector_env in self._vector_envs.items()
                if vector_env.cache is not None
            },
        }

    def _flush_tier_stats(self, env_id: str) -> Tuple[int, int, int]:
        """Fold an env cache's tier counters into the serve stats (as deltas).

        Must run while holding the env's lock: the mark read-modify-write is
        what keeps two concurrent serve() calls from folding the same delta
        twice.  Returns the delta so callers can attach it to responses.
        """
        vector_env = self._vector_envs[env_id]
        if vector_env.cache is None:  # pragma: no cover - caches always on here
            return (0, 0, 0)
        cache = vector_env.cache.stats
        now = (cache.surrogate_hits, cache.trust_rejections, cache.exact_fallbacks)
        mark = self._tier_marks.get(env_id, (0, 0, 0))
        delta = (now[0] - mark[0], now[1] - mark[1], now[2] - mark[2])
        self.stats.record_tiers(*delta)
        # repro: noqa[REP-LOCK01] serve_group() holds this env's lock from
        # self._env_locks around every call, which is what serializes the
        # mark read-modify-write; _registry_lock only guards registration.
        self._tier_marks[env_id] = now
        return delta

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def resolve_env_id(self, env_id: Optional[str]) -> str:
        """Resolve a request's env ID against the registered policies."""
        if env_id is None:
            if self._default_env_id is None:
                raise ValueError(
                    "the service has no registered policy; call add_checkpoint() "
                    "or register_policy() first"
                )
            return self._default_env_id
        if env_id not in self._policies:
            registered = ", ".join(self.env_ids) or "none"
            raise ValueError(
                f"no policy registered for environment {env_id!r} "
                f"(registered: {registered})"
            )
        return env_id

    # Kept for back-compat with pre-gateway callers.
    _resolve_env_id = resolve_env_id

    @staticmethod
    def _normalize(
        requests: Sequence[Union[ServeRequest, Mapping[str, Any]]],
    ) -> List[ServeRequest]:
        normalized: List[ServeRequest] = []
        for request in requests:
            if isinstance(request, ServeRequest):
                normalized.append(request)
            elif isinstance(request, Mapping):
                normalized.append(ServeRequest(target_specs=dict(request)))
            else:
                raise TypeError(
                    "requests must be ServeRequest objects or spec mappings, "
                    f"got {type(request).__name__}"
                )
        return normalized

    def serve_group(
        self,
        env_id: str,
        max_steps: Optional[int],
        requests: Sequence[ServeRequest],
    ) -> List[ServeResponse]:
        """Serve one coalesced ``(env_id, max_steps)`` group of requests.

        This is the execution primitive the gateway's workers call with
        already-batched groups; :meth:`serve` routes through it too.  The
        env's lock serializes concurrent access to its stateful vector
        environment and makes the tier-delta fold exact.
        """
        env_id = self.resolve_env_id(env_id)
        with self._env_locks[env_id]:
            vector_env = self._vector_envs[env_id]
            policy = self._policies[env_id]
            targets = [request.target_specs for request in requests]
            start = time.perf_counter()
            results = deploy_policy_batch(
                vector_env,
                policy,
                targets,
                deterministic=self.deterministic,
                rng=self.rng,
                max_steps=max_steps,
            )
            elapsed = time.perf_counter() - start
            self.stats.record(env_id, results, elapsed)
            tier_delta = self._flush_tier_stats(env_id)
        tier = {
            "surrogate_hits": tier_delta[0],
            "trust_rejections": tier_delta[1],
            "exact_fallbacks": tier_delta[2],
        }
        serve_ms = elapsed * 1000.0
        names = vector_env.benchmark.design_space.names
        spec_space = vector_env.benchmark.spec_space
        tolerance = vector_env.envs[0].goal_tolerance
        responses: List[ServeResponse] = []
        for position, (request, result) in enumerate(zip(requests, results)):
            final = result.trajectory.records[-1].parameters
            met = {
                spec.name: bool(
                    spec.is_met(
                        float(result.final_specs[spec.name]),
                        float(result.target_specs[spec.name]),
                        rel_tol=tolerance,
                    )
                )
                for spec in spec_space
                if spec.name in result.target_specs and spec.name in result.final_specs
            }
            responses.append(
                ServeResponse(
                    index=position,
                    env_id=env_id,
                    target_specs=dict(result.target_specs),
                    success=result.success,
                    steps=result.steps,
                    final_specs=dict(result.final_specs),
                    final_parameters={
                        name: float(value) for name, value in zip(names, final)
                    },
                    met=met,
                    request_id=request.request_id,
                    timing={"serve_ms": serve_ms},
                    tier=tier,
                    result=result,
                )
            )
        return responses

    def serve(
        self, requests: Sequence[Union[ServeRequest, Mapping[str, Any]]]
    ) -> List[ServeResponse]:
        """Design every requested specification group; responses keep request order.

        Requests are grouped by ``(env_id, max_steps)`` so each group runs as
        lock-step micro-batches of at most ``batch_size`` episodes on that
        topology's persistent vector environment and shared simulation cache.
        """
        normalized = self._normalize(requests)
        groups: Dict[Tuple[str, Optional[int]], List[int]] = {}
        for index, request in enumerate(normalized):
            key = (self.resolve_env_id(request.env_id), request.max_steps)
            groups.setdefault(key, []).append(index)

        responses: List[Optional[ServeResponse]] = [None] * len(normalized)
        for (env_id, max_steps), indices in groups.items():
            group = self.serve_group(env_id, max_steps, [normalized[i] for i in indices])
            for index, response in zip(indices, group):
                response.index = index
                responses[index] = response
        assert all(response is not None for response in responses)
        return responses  # type: ignore[return-value]
