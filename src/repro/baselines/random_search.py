"""Uniform random search — the sanity-check lower-bound baseline.

Not part of the paper's comparison table, but useful for calibrating the
other methods: any optimizer worth reporting must beat uniform sampling of
the design space at an equal simulation budget, and the ablation/diagnostic
tests use it to verify exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import OptimizationResult, SizingOptimizer, SizingProblem


@dataclass
class RandomSearchConfig:
    """Hyper-parameters of the random-search baseline."""

    num_samples: int = 200
    stop_when_met: bool = True

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ValueError("num_samples must be positive")


class RandomSearch(SizingOptimizer):
    """Evaluate uniformly random designs and keep the best."""

    name = "random_search"

    def __init__(self, config: Optional[RandomSearchConfig] = None,
                 seed: Optional[int] = None) -> None:
        self.config = config or RandomSearchConfig()
        self.rng = np.random.default_rng(seed)

    def optimize(self, problem: SizingProblem) -> OptimizationResult:
        # Draw the full candidate population up front (numpy fills C-order,
        # so the random stream — hence every candidate — is identical to the
        # previous one-at-a-time draws).
        candidates = self.rng.random((self.config.num_samples, problem.num_parameters))
        if not (self.config.stop_when_met and problem.targets is not None):
            # No early stop: score the whole population through the batched
            # (cache-friendly) vector path.
            values = problem.objective_from_unit_batch(candidates)
            best_index = int(np.argmax(values))
            return self._build_result(
                problem, candidates[best_index], float(values[best_index])
            )
        best_x: Optional[np.ndarray] = None
        best_y = -np.inf
        for candidate in candidates:
            value = problem.objective_from_unit(candidate)
            if value > best_y:
                best_y = float(value)
                best_x = candidate
            if best_y >= 0.0:
                break
        assert best_x is not None
        return self._build_result(problem, best_x, best_y)
