"""Persistent on-disk tier for the simulation cache.

The in-memory :class:`~repro.parallel.cache.SimulationCache` dies with its
process, which wastes exactly the repeats an experiment *sweep* produces:
every worker process re-simulates the shared center sizing, and re-running a
sweep (new seeds, a tweaked optimizer, a resumed run) re-simulates every
design point the previous run already evaluated.

:class:`DiskSimulationCache` adds a directory-backed tier underneath the LRU
table, using the *same quantized keys* (the exact binary-mantissa
quantization of ``SimulationCache._key``), so an entry written by any process
at any time is a hit for every later process pointed at the same directory:

* lookup order is memory -> disk -> simulator; disk hits are promoted into
  the in-memory LRU;
* every entry is one small JSON file named by the hex digest of its key,
  written atomically (``os.replace``) so concurrent workers never observe a
  torn entry — the worst interleaving is two processes simulating the same
  point once each;
* unreadable or corrupt entry files are treated as misses and overwritten;
* ``max_disk_entries`` bounds the directory (oldest entries by modification
  time are pruned once the bound is exceeded; ``None`` means unbounded).

The wrapper still satisfies the :class:`~repro.simulation.base.CircuitSimulator`
protocol and still *is* a :class:`SimulationCache`, so every integration that
special-cases the in-memory cache (optimizer adapters, vector envs) treats
the persistent tier identically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.circuits.netlist import Netlist
from repro.parallel.cache import DEFAULT_CACHE_SIZE, DEFAULT_KEY_DIGITS, SimulationCache
from repro.simulation.base import CircuitSimulator, SimulationResult
from repro.utils import atomic_write_json

#: How many writes between directory-size checks when ``max_disk_entries``
#: is set (a full listdir per write would be quadratic in sweep size).
PRUNE_CHECK_INTERVAL = 64


@dataclass
class DiskEntry:
    """One decoded persistent cache entry.

    ``circuit`` and ``parameters`` record the design point that produced the
    result (the netlist name and its full ``parameter_array()``), making the
    directory a harvestable (parameters -> specs) corpus for
    :mod:`repro.surrogate`.  Entries written before the corpus fields existed
    decode with both set to ``None``; the cache still serves them.
    """

    result: SimulationResult
    circuit: Optional[str] = None
    parameters: Optional[np.ndarray] = None


def read_disk_entry(path: Union[str, os.PathLike]) -> Optional[DiskEntry]:
    """Decode one entry file; ``None`` for a missing/torn/hand-edited file.

    This is the single corrupt-entry policy shared by cache lookups (a bad
    file is a miss, healed by the atomic rewrite after the fresh simulation)
    and by the :mod:`repro.surrogate` corpus harvester (a bad file is skipped
    and reported) — one decoder, so the two paths can never disagree on what
    counts as readable.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        result = SimulationResult(
            specs={str(k): float(v) for k, v in data["specs"].items()},
            details={str(k): float(v) for k, v in data.get("details", {}).items()},
            valid=bool(data.get("valid", True)),
        )
        parameters = data.get("parameters")
        if parameters is not None:
            parameters = np.asarray([float(v) for v in parameters], dtype=np.float64)
        circuit = data.get("circuit")
        return DiskEntry(
            result=result,
            circuit=None if circuit is None else str(circuit),
            parameters=parameters,
        )
    except (OSError, ValueError, KeyError, TypeError, AttributeError):
        return None


def write_disk_entry(
    path: Union[str, os.PathLike],
    result: SimulationResult,
    circuit: Optional[str] = None,
    parameters: Optional[np.ndarray] = None,
) -> None:
    """Atomically publish one entry file (complete even with concurrent writers)."""
    payload = {
        "specs": {str(k): float(v) for k, v in result.specs.items()},
        "details": _float_dict(result.details),
        "valid": bool(result.valid),
    }
    if circuit is not None:
        payload["circuit"] = str(circuit)
    if parameters is not None:
        # repr-exact floats: json round-trips Python floats bitwise, so the
        # harvested corpus reproduces the simulated design points exactly.
        payload["parameters"] = [float(v) for v in np.asarray(parameters).ravel()]
    atomic_write_json(path, payload)


def entry_path(directory: Union[str, os.PathLike], key: bytes) -> Path:
    """Entry file for a quantized cache key (shared by every disk-backed tier).

    The raw key is the full quantized parameter snapshot (hundreds of bytes);
    the file name is its SHA-256, keeping names filesystem-safe while
    preserving the no-false-sharing property of the key.
    """
    return Path(directory) / f"{hashlib.sha256(key).hexdigest()}.json"


def iter_disk_entries(
    directory: Union[str, os.PathLike],
) -> Iterator[Tuple[Path, Optional[DiskEntry]]]:
    """Yield ``(path, entry)`` for every entry file, ``entry=None`` when corrupt.

    Files are visited in sorted-name order so a harvest over a fixed
    directory is deterministic regardless of filesystem listing order.
    """
    for path in sorted(Path(directory).glob("*.json")):
        yield path, read_disk_entry(path)


class DiskSimulationCache(SimulationCache):
    """Two-tier (memory LRU + directory) memoizing simulator wrapper.

    Parameters
    ----------
    simulator:
        The deterministic simulator to wrap.
    directory:
        Directory holding the persistent entries (created if missing).
        Point several workers — or several runs — at the same directory to
        share results across processes and across time.
    max_entries:
        Capacity of the in-memory LRU tier (as in :class:`SimulationCache`).
    key_digits:
        Key resolution in decimal significant digits (as in
        :class:`SimulationCache`; both tiers share one key).
    max_disk_entries:
        Upper bound on persisted entries; the oldest files are pruned when
        the bound is exceeded.  ``None`` (default) keeps everything.
    """

    def __init__(
        self,
        simulator: CircuitSimulator,
        directory: Union[str, os.PathLike],
        max_entries: int = DEFAULT_CACHE_SIZE,
        key_digits: int = DEFAULT_KEY_DIGITS,
        max_disk_entries: Optional[int] = None,
    ) -> None:
        super().__init__(simulator, max_entries=max_entries, key_digits=key_digits)
        if max_disk_entries is not None and max_disk_entries <= 0:
            raise ValueError("max_disk_entries must be positive (or None for unbounded)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_disk_entries = max_disk_entries
        self._writes_since_prune = 0

    # ------------------------------------------------------------------
    # Tier plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"disk_cached({self.simulator.name})"

    def _simulate_miss(self, key: bytes, netlist: Netlist) -> SimulationResult:
        path = self._entry_path(key)
        cached = self._read_entry(path)
        if cached is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return cached
        self.stats.misses += 1
        result = self.simulator.simulate(netlist)
        self._write_entry(path, result, netlist)
        return result

    def _entry_path(self, key: bytes) -> Path:
        return entry_path(self.directory, key)

    @staticmethod
    def _read_entry(path: Path) -> Optional[SimulationResult]:
        # Missing, torn, or hand-edited entries (including wrong-typed fields
        # like "specs": null) decode to None — a miss; the fresh simulation
        # below rewrites the file atomically.
        entry = read_disk_entry(path)
        return None if entry is None else entry.result

    def _write_entry(self, path: Path, result: SimulationResult, netlist: Netlist) -> None:
        # Atomic replace keeps every published entry complete even with
        # concurrent writers on the same key (last writer wins; all writers
        # hold the identical deterministic result anyway).  The design point
        # (circuit + parameter vector) rides along so the directory doubles
        # as the surrogate training corpus.
        write_disk_entry(path, result, circuit=netlist.name, parameters=netlist.parameter_array())
        self._writes_since_prune += 1
        if (
            self.max_disk_entries is not None
            and self._writes_since_prune >= PRUNE_CHECK_INTERVAL
        ):
            self.prune()

    # ------------------------------------------------------------------
    # Disk-tier management
    # ------------------------------------------------------------------
    def disk_entries(self) -> int:
        """Number of persisted entries currently in the directory."""
        return sum(1 for _ in self.directory.glob("*.json"))

    def prune(self) -> int:
        """Enforce ``max_disk_entries``, dropping the oldest files first.

        Returns the number of entries removed.  Called automatically every
        :data:`PRUNE_CHECK_INTERVAL` writes when a bound is set; safe to call
        by hand at any time.
        """
        self._writes_since_prune = 0
        if self.max_disk_entries is None:
            return 0

        def _mtime(path: Path) -> float:
            # A concurrent worker may unlink entries mid-sort; a vanished
            # file sorts oldest and its unlink below is already tolerated.
            try:
                return path.stat().st_mtime
            except OSError:
                return float("-inf")

        entries = sorted(self.directory.glob("*.json"), key=_mtime)
        removed = 0
        for path in entries[: max(0, len(entries) - self.max_disk_entries)]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass  # another worker pruned it first
        return removed

    def clear_disk(self) -> None:
        """Delete every persisted entry (the in-memory tier is untouched)."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass


def _float_dict(mapping) -> dict:
    """Best-effort float coercion for the free-form ``details`` dict."""
    coerced = {}
    for key, value in dict(mapping).items():
        try:
            coerced[str(key)] = float(value)
        except (TypeError, ValueError):
            continue  # non-numeric diagnostic; not worth failing the cache
    return coerced
