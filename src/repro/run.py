"""``python -m repro.run`` — the sweep and deployment CLI front door.

Drive a whole experiment grid from one JSON document::

    python -m repro.run sweep.json                  # run (resumes by default)
    python -m repro.run sweep.json --workers 4      # shard across 4 processes
    python -m repro.run sweep.json --expand         # list units, run nothing
    python -m repro.run sweep.json --no-resume      # re-execute everything

or serve specification targets from a trained policy checkpoint::

    python -m repro.run deploy ckpt/latest.npz specs.json [--batch-size N]

or train/evaluate a learned surrogate tier on a simulation corpus::

    python -m repro.run surrogate train corpus_dir model.npz
    python -m repro.run surrogate eval model.npz corpus_dir

The sweep document is either a :class:`repro.orchestrate.SweepConfig`
(grid) or a single :class:`repro.api.RunConfig` (detected by its
``env``/``optimizer`` keys and wrapped as a one-unit sweep with its literal
seed).  CLI flags override the document's runtime knobs (``workers``,
``store``, ``disk_cache``); the scientific content of the sweep lives only
in the JSON.  The ``deploy`` subcommand is documented in
:mod:`repro.serve.cli`.

Exit status: 0 when every unit completed (or was skipped via the artifact
store), 1 when any unit failed, 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.orchestrate import SweepConfig, UnitRecord, run_sweep, sweep_from_document


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run",
        description="Run an experiment sweep (or a single run config) from a JSON document.",
    )
    parser.add_argument("config", help="path to a SweepConfig or RunConfig JSON document")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: the document's 'workers', else 1)")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (default: the document's 'store')")
    parser.add_argument("--disk-cache", default=None, dest="disk_cache",
                        help="persistent simulation-cache directory "
                             "(default: the document's 'disk_cache', else disabled)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-execute every unit even when its artifact exists")
    parser.add_argument("--expand", action="store_true",
                        help="print the expanded unit list and exit without running")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-unit progress lines (summary still prints)")
    return parser


def load_sweep(path: str) -> SweepConfig:
    with open(path, "r", encoding="utf-8") as handle:
        return sweep_from_document(json.load(handle))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "deploy":
        # Deployment serving is its own parser (and pulls in the nn/agents
        # stack only when used); everything else is the sweep path.
        from repro.serve.cli import main_deploy

        return main_deploy(argv[1:])
    if argv and argv[0] == "surrogate":
        # Surrogate training/evaluation (pulls in the nn stack only when used).
        from repro.surrogate.cli import main_surrogate

        return main_surrogate(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        sweep = load_sweep(args.config)
        if args.disk_cache is not None:
            sweep.disk_cache = args.disk_cache
        if args.expand:
            # The only eager expansion: the run path below leaves it to
            # run_sweep (expanding twice would re-derive every unit seed).
            for unit in sweep.expand():
                print(f"{unit.unit_id:<44s} seed={unit.payload['run']['seed']:<12d} "
                      f"key={unit.key()[:12]}")
            print(f"{sweep.num_units} units "
                  f"({len(sweep.optimizers)} optimizers x {len(sweep.envs)} envs "
                  f"x {len(sweep.seeds)} seeds)")
            return 0
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"error: could not load sweep from {args.config!r}: {exc}", file=sys.stderr)
        return 2

    total = sweep.num_units
    progress_state = {"done": 0}

    def on_progress(event: str, record: UnitRecord) -> None:
        progress_state["done"] += 1
        if args.quiet:
            return
        label = {"skipped": "skipped (artifact store)", "completed": "completed",
                 "failed": "FAILED"}[event]
        print(f"[{progress_state['done']}/{total}] {record.unit_id:<44s} "
              f"{label} ({record.wall_time_s:.2f}s)", flush=True)

    name = sweep.name or "sweep"
    print(f"{name}: {total} units -> store {args.store or sweep.store!r}"
          + (f", disk cache {sweep.disk_cache!r}" if sweep.disk_cache else ""))
    result = run_sweep(
        sweep,
        store=args.store,
        workers=args.workers,
        resume=not args.no_resume,
        on_progress=on_progress,
    )
    print()
    print(result.summary_table())
    for unit_id in result.failed:
        record = result.record(unit_id)
        last_line = (record.error or "").strip().splitlines()[-1:] or ["unknown error"]
        print(f"failed: {unit_id}: {last_line[0]}", file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
