"""``python -m repro.run serve`` end-to-end: NDJSON stdin and HTTP modes."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro

REPO_SRC = Path(repro.__file__).resolve().parents[1]
MAX_STEPS = 6


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("serve_cli")
    env = repro.make_env("opamp-p2s-v0", seed=0)
    policy = repro.make_policy("gcn_fc", env, np.random.default_rng(0))
    return repro.save_checkpoint(
        tmp_path / "ckpt.npz", policy, policy_id="gcn_fc", env_id="opamp-p2s-v0"
    )


@pytest.fixture(scope="module")
def targets():
    env = repro.make_env("opamp-p2s-v0", seed=0)
    return [dict(t) for t in env.benchmark.spec_space.sample_batch(
        np.random.default_rng(9), 3
    )]


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def serve_args(checkpoint, *extra):
    return [sys.executable, "-m", "repro.run", "serve", str(checkpoint),
            "--batch-size", "3", *map(str, extra)]


class TestStdinMode:
    def test_ndjson_round_trip_with_malformed_lines(self, checkpoint, targets, tmp_path):
        lines = [
            json.dumps({"schema_version": 1, "target_specs": t,
                        "max_steps": MAX_STEPS, "request_id": f"q{i}"})
            for i, t in enumerate(targets)
        ]
        lines.insert(1, "definitely not json")
        stats_path = tmp_path / "stats.json"
        completed = subprocess.run(
            serve_args(checkpoint, "--stdin", "--max-batch-delay-ms", "10",
                       "--stats-output", stats_path),
            input="\n".join(lines) + "\n",
            capture_output=True, text=True, env=cli_env(), timeout=600,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        out = [json.loads(line) for line in completed.stdout.splitlines()]
        assert len(out) == 4  # every input line answered, in submission order
        assert out[0]["request_id"] == "q0" and "error" not in out[0]
        assert out[1]["error"]["code"] == "bad_request"
        assert [d.get("request_id") for d in out[2:]] == ["q1", "q2"]
        assert all(1 <= d["steps"] <= MAX_STEPS for d in out if "error" not in d)
        stats = json.loads(stats_path.read_text())
        assert stats["episodes"] == 3
        assert stats["errors"] == 1
        assert stats["gateway"]["batch_size"] == 3

    def test_missing_checkpoint_is_exit_2(self, tmp_path):
        completed = subprocess.run(
            serve_args(tmp_path / "nope.npz", "--stdin"),
            input="", capture_output=True, text=True, env=cli_env(), timeout=120,
        )
        assert completed.returncode == 2
        assert "error" in completed.stderr


class TestHttpMode:
    @pytest.fixture
    def server(self, checkpoint):
        proc = subprocess.Popen(
            serve_args(checkpoint, "--port", "0", "--max-batch-delay-ms", "10"),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=cli_env(),
        )
        port = None
        try:
            for _ in range(2):
                line = proc.stderr.readline()
                if "serving on http://" in line:
                    port = int(line.split(":")[2].split(" ")[0])
                    break
            assert port is not None, "the server never announced its port"
            yield proc, port
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

    @staticmethod
    def post(port, payload, path="/v1/serve"):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode() if not isinstance(payload, bytes)
            else payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=300) as response:
            return json.loads(response.read())

    def test_serve_stats_healthz_and_sigint_drain(self, server, targets):
        proc, port = server
        document = self.post(port, {
            "schema_version": 1,
            "max_steps": MAX_STEPS,
            "requests": [{"target_specs": t} for t in targets],
        })
        assert len(document["responses"]) == len(targets)
        for response in document["responses"]:
            assert response["env_id"] == "opamp-p2s-v0"
            assert 1 <= response["steps"] <= MAX_STEPS
            assert response["final_parameters"]

        single = self.post(port, {"target_specs": targets[0], "max_steps": MAX_STEPS})
        assert single["steps"] <= MAX_STEPS and "error" not in single

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post(port, b"{not json")
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad_request"

        with urllib.request.urlopen(f"http://127.0.0.1:{port}/v1/stats", timeout=60) as r:
            stats = json.loads(r.read())
        assert stats["episodes"] == len(targets) + 1
        assert stats["errors"] == 1
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/v1/healthz", timeout=60) as r:
            assert json.loads(r.read()) == {"ok": True, "schema_version": 1}

        # SIGINT must drain and exit cleanly — no orphan workers, status 0.
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=120)
        assert proc.returncode == 0
