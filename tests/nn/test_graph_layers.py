"""Tests for the GCN / GAT layers and the graph encoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.graph_layers import (
    GATLayer,
    GCNLayer,
    GraphEncoder,
    GraphReadout,
    normalized_adjacency,
)
from repro.nn.tensor import Tensor


def ring_adjacency(n: int) -> np.ndarray:
    adjacency = np.zeros((n, n))
    for i in range(n):
        adjacency[i, (i + 1) % n] = 1.0
        adjacency[(i + 1) % n, i] = 1.0
    return adjacency


class TestNormalizedAdjacency:
    def test_symmetric_and_self_loops(self):
        adjacency = ring_adjacency(5)
        norm = normalized_adjacency(adjacency)
        assert norm.shape == (5, 5)
        np.testing.assert_allclose(norm, norm.T)
        assert np.all(np.diag(norm) > 0.0)

    def test_row_values_for_known_graph(self):
        # Two connected nodes: A_hat = [[1,1],[1,1]], degrees 2 -> entries 0.5.
        norm = normalized_adjacency(np.array([[0.0, 1.0], [1.0, 0.0]]))
        np.testing.assert_allclose(norm, np.full((2, 2), 0.5))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_rejects_isolated_node_without_self_loop(self):
        adjacency = np.zeros((3, 3))
        with pytest.raises(ValueError):
            normalized_adjacency(adjacency, add_self_loops=False)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_property_spectral_radius_bounded(self, n):
        """Eigenvalues of the symmetric-normalized adjacency lie in [-1, 1]."""
        norm = normalized_adjacency(ring_adjacency(n))
        eigenvalues = np.linalg.eigvalsh(norm)
        assert np.all(eigenvalues <= 1.0 + 1e-9)
        assert np.all(eigenvalues >= -1.0 - 1e-9)


class TestGCNLayer:
    def test_output_shape(self, rng):
        layer = GCNLayer(4, 6, rng)
        features = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        norm = normalized_adjacency(ring_adjacency(5))
        assert layer(features, norm).shape == (5, 6)

    def test_isolated_node_with_self_loop_keeps_own_features(self, rng):
        # Star graph where node 2 only connects to itself: its output depends
        # only on its own features.
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        layer = GCNLayer(2, 2, rng, activation="identity", bias=False)
        norm = normalized_adjacency(adjacency)
        features = np.zeros((3, 2))
        features[2] = [1.0, -1.0]
        out = layer(Tensor(features), norm)
        expected_row_2 = features[2] @ layer.weight.data
        np.testing.assert_allclose(out.data[2], expected_row_2, atol=1e-12)
        np.testing.assert_allclose(out.data[1], np.zeros(2), atol=1e-12)

    def test_gradients_reach_weights(self, rng):
        layer = GCNLayer(3, 3, rng)
        norm = normalized_adjacency(ring_adjacency(4))
        loss = (layer(Tensor(np.ones((4, 3))), norm) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert np.any(layer.weight.grad != 0.0)


class TestGATLayer:
    def test_output_shape_concat_heads(self, rng):
        layer = GATLayer(4, 8, rng, num_heads=2)
        out = layer(Tensor(np.random.default_rng(1).normal(size=(6, 4))), ring_adjacency(6))
        assert out.shape == (6, 8)

    def test_head_divisibility_check(self, rng):
        with pytest.raises(ValueError):
            GATLayer(4, 7, rng, num_heads=2)

    def test_attention_respects_adjacency(self, rng):
        """Changing a non-neighbour's features must not change a node's output."""
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        adjacency[2, 3] = adjacency[3, 2] = 1.0
        layer = GATLayer(3, 4, rng, num_heads=1)
        base = np.random.default_rng(2).normal(size=(4, 3))
        out_a = layer(Tensor(base.copy()), adjacency).data
        modified = base.copy()
        modified[3] += 10.0  # node 3 is not connected to node 0 or 1
        out_b = layer(Tensor(modified), adjacency).data
        np.testing.assert_allclose(out_a[0], out_b[0], atol=1e-9)
        np.testing.assert_allclose(out_a[1], out_b[1], atol=1e-9)
        assert not np.allclose(out_a[2], out_b[2])

    def test_gradients_reach_attention_parameters(self, rng):
        layer = GATLayer(3, 4, rng, num_heads=2)
        loss = (layer(Tensor(np.ones((5, 3))), ring_adjacency(5)) ** 2).sum()
        loss.backward()
        for head in range(2):
            assert getattr(layer, f"attn_src_head_{head}").grad is not None
            assert getattr(layer, f"weight_head_{head}").grad is not None


class TestGraphReadout:
    def test_modes(self):
        embeddings = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_allclose(GraphReadout("mean")(embeddings).data, [[2.0, 3.0]])
        np.testing.assert_allclose(GraphReadout("sum")(embeddings).data, [[4.0, 6.0]])
        np.testing.assert_allclose(GraphReadout("max")(embeddings).data, [[3.0, 4.0]])
        np.testing.assert_allclose(
            GraphReadout("concat")(embeddings).data, [[1.0, 2.0, 3.0, 4.0]]
        )

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            GraphReadout("median")


class TestGraphEncoder:
    @pytest.mark.parametrize("kind", ["gcn", "gat"])
    def test_embedding_shape(self, rng, kind):
        encoder = GraphEncoder((4, 8, 6), rng, kind=kind)
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(7, 4))), ring_adjacency(7))
        assert out.shape == (1, 6)
        assert encoder.out_features == 6

    def test_concat_readout_out_features(self, rng):
        encoder = GraphEncoder((4, 8), rng, readout="concat", num_nodes=7)
        assert encoder.out_features == 56
        out = encoder(Tensor(np.zeros((7, 4))), ring_adjacency(7))
        assert out.shape == (1, 56)

    def test_concat_requires_num_nodes(self, rng):
        with pytest.raises(ValueError):
            GraphEncoder((4, 8), rng, readout="concat")

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            GraphEncoder((4, 8), rng, kind="transformer")

    def test_parameters_registered(self, rng):
        encoder = GraphEncoder((4, 8, 6), rng, kind="gat", num_heads=2)
        assert encoder.num_parameters() > 0
        names = [name for name, _ in encoder.named_parameters()]
        assert any("graph_layer_0" in name for name in names)
        assert any("graph_layer_1" in name for name in names)
