"""Helper for the legacy-factory deprecation shims."""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a legacy entry point.

    ``stacklevel=3`` points the warning at the *caller* of the shim (the
    shim itself adds one frame, this helper another).
    """
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
