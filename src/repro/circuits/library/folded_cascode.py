"""The 45 nm CMOS folded-cascode operational amplifier benchmark.

First entry of the topology zoo (PR 3): a single-stage amplifier whose gain
comes from cascoding rather than from a second stage, so the agent faces a
different parameter→specification map than the Miller-compensated two-stage
op-amp while sharing its technology, spec names and episode protocol —
exactly the setting the paper's transfer-learning claim needs.

Topology (classic NMOS-input folded cascode):

* NMOS input differential pair ``M1``/``M2`` with NMOS tail source ``M11``;
* PMOS current sources ``M3``/``M4`` feeding the two folding nodes;
* PMOS cascodes ``M5``/``M6`` folding the signal current down into the
  output branch;
* NMOS cascodes ``M7``/``M8`` on top of the NMOS mirror sinks ``M9``/``M10``
  (diode side on the ``M5``/``M7`` branch, output at the ``M6``/``M8`` drain);
* fixed load capacitor ``CL`` — the single-stage amplifier is load
  compensated, so there is no Miller capacitor to tune;
* supply ``VP``, ground ``VGND`` and four explicit bias nodes (tail bias,
  PMOS source bias, and the two cascode gate biases).

Design space: width ``[1, 100] µm`` and finger count ``[2, 32]`` for each of
the 11 transistors — 22 tunable parameters.

Specification sampling space (calibrated so targets are reachable inside the
design space, see ``tests/circuits/test_topology_zoo.py``): gain
``[100, 400]``, bandwidth ``[1e8, 5e9] Hz``, phase margin ``[40°, 70°]``,
power ``[4e-3, 3e-2] W``.
"""

from __future__ import annotations

from repro.circuits.devices import bias, capacitor, ground, nmos, pmos, supply
from repro.circuits.library.benchmark import CircuitBenchmark
from repro.circuits.netlist import Netlist
from repro.circuits.parameters import DesignParameter, DesignSpace
from repro.circuits.specs import Objective, Specification, SpecificationSpace

#: Transistor instance names in schematic order: input pair, PMOS sources,
#: PMOS cascodes, NMOS cascodes, NMOS mirror sinks, tail.
FOLDED_CASCODE_TRANSISTORS = (
    "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10", "M11",
)

#: Supply voltage (volts) — same 45 nm process as the two-stage op-amp.
FOLDED_CASCODE_SUPPLY_VOLTAGE = 1.2

#: Tail-bias gate voltage (volts): 0.12 V of NMOS overdrive.
FOLDED_CASCODE_TAIL_BIAS = 0.52

#: PMOS current-source gate voltage (volts): 0.20 V of PMOS overdrive, so the
#: folding branches keep headroom over half the tail current at equal sizing.
FOLDED_CASCODE_SOURCE_BIAS = 0.60

#: Cascode gate bias voltages (volts).
FOLDED_CASCODE_NCASC_BIAS = 0.80
FOLDED_CASCODE_PCASC_BIAS = 0.40

#: Fixed output load capacitance (farads).
FOLDED_CASCODE_LOAD_CAPACITANCE = 1.0e-12

# Design-space bounds (same device grid as the two-stage op-amp).
WIDTH_MIN, WIDTH_MAX, WIDTH_STEP = 1e-6, 100e-6, 1e-6
FINGERS_MIN, FINGERS_MAX, FINGERS_STEP = 2, 32, 1


def _build_netlist(initial_width: float, initial_fingers: int) -> Netlist:
    netlist = Netlist("folded_cascode")
    # Input differential pair.
    netlist.add_device(nmos("M1", drain="fold1", gate="vin_p", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M2", drain="fold2", gate="vin_n", source="tail", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # PMOS current sources into the folding nodes.
    netlist.add_device(pmos("M3", drain="fold1", gate="vbias_p", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M4", drain="fold2", gate="vbias_p", source="vdd", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    # PMOS cascodes folding the signal down (diode branch at cout1, output at vout).
    netlist.add_device(pmos("M5", drain="cout1", gate="vcasc_p", source="fold1", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(pmos("M6", drain="vout", gate="vcasc_p", source="fold2", bulk="vdd",
                            width=initial_width, fingers=initial_fingers))
    # NMOS cascodes over the mirror sinks.
    netlist.add_device(nmos("M7", drain="cout1", gate="vcasc_n", source="sink1", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M8", drain="vout", gate="vcasc_n", source="sink2", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M9", drain="sink1", gate="cout1", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    netlist.add_device(nmos("M10", drain="sink2", gate="cout1", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Tail current source.
    netlist.add_device(nmos("M11", drain="tail", gate="vbias_n", source="vgnd", bulk="vgnd",
                            width=initial_width, fingers=initial_fingers))
    # Load capacitor (the compensation of a single-stage amplifier).
    netlist.add_device(capacitor("CL", plus="vout", minus="vgnd",
                                 value=FOLDED_CASCODE_LOAD_CAPACITANCE))
    # Supply, ground and the four bias voltages as explicit graph nodes.
    netlist.add_device(supply("VP", net="vdd", voltage=FOLDED_CASCODE_SUPPLY_VOLTAGE))
    netlist.add_device(ground("VGND", net="vgnd"))
    netlist.add_device(bias("VBIASN", net="vbias_n", voltage=FOLDED_CASCODE_TAIL_BIAS))
    netlist.add_device(bias("VBIASP", net="vbias_p", voltage=FOLDED_CASCODE_SOURCE_BIAS))
    netlist.add_device(bias("VCASCN", net="vcasc_n", voltage=FOLDED_CASCODE_NCASC_BIAS))
    netlist.add_device(bias("VCASCP", net="vcasc_p", voltage=FOLDED_CASCODE_PCASC_BIAS))
    return netlist


def _build_design_space() -> DesignSpace:
    parameters = []
    for name in FOLDED_CASCODE_TRANSISTORS:
        parameters.append(
            DesignParameter(
                name=f"{name}.width", device=name, attribute="width",
                minimum=WIDTH_MIN, maximum=WIDTH_MAX, step=WIDTH_STEP,
            )
        )
        parameters.append(
            DesignParameter(
                name=f"{name}.fingers", device=name, attribute="fingers",
                minimum=FINGERS_MIN, maximum=FINGERS_MAX, step=FINGERS_STEP, integer=True,
            )
        )
    return DesignSpace(parameters)


def _build_spec_space() -> SpecificationSpace:
    return SpecificationSpace(
        [
            Specification("gain", 100.0, 400.0, Objective.MAXIMIZE, unit="V/V"),
            Specification("bandwidth", 1.0e8, 5.0e9, Objective.MAXIMIZE, unit="Hz",
                          log_uniform=True),
            Specification("phase_margin", 40.0, 70.0, Objective.MAXIMIZE, unit="deg"),
            Specification("power", 4.0e-3, 3.0e-2, Objective.MINIMIZE, unit="W",
                          log_uniform=True),
        ]
    )


def build_folded_cascode(
    initial_width: float = 40e-6,
    initial_fingers: int = 16,
) -> CircuitBenchmark:
    """Construct the folded-cascode op-amp benchmark.

    Parameters
    ----------
    initial_width, initial_fingers:
        Starting sizing applied uniformly to all 11 transistors; the defaults
        sit near the middle of the design space.
    """
    if not (WIDTH_MIN <= initial_width <= WIDTH_MAX):
        raise ValueError("initial_width outside the design space")
    if not (FINGERS_MIN <= initial_fingers <= FINGERS_MAX):
        raise ValueError("initial_fingers outside the design space")
    netlist = _build_netlist(initial_width, int(initial_fingers))
    return CircuitBenchmark(
        name="folded_cascode",
        technology="45nm CMOS",
        netlist=netlist,
        design_space=_build_design_space(),
        spec_space=_build_spec_space(),
        metadata={
            "supply_voltage": FOLDED_CASCODE_SUPPLY_VOLTAGE,
            "tail_bias": FOLDED_CASCODE_TAIL_BIAS,
            "source_bias": FOLDED_CASCODE_SOURCE_BIAS,
            "load_capacitance": FOLDED_CASCODE_LOAD_CAPACITANCE,
            "max_episode_steps": 50,
        },
    )
