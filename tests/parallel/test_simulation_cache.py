"""SimulationCache: hit/miss accounting, LRU eviction, and result fidelity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library.two_stage_opamp import build_two_stage_opamp
from repro.parallel import CacheStats, SimulationCache, quantize_significant
from repro.simulation.base import SimulationResult
from repro.simulation.opamp_sim import OpAmpSimulator


class CountingSimulator:
    """Deterministic stub simulator that counts its invocations."""

    name = "counting"

    def __init__(self) -> None:
        self.calls = 0

    def simulate(self, netlist) -> SimulationResult:
        self.calls += 1
        width = netlist.get_parameter("M1", "width")
        return SimulationResult(specs={"gain": width * 1e7}, details={"calls": self.calls})


@pytest.fixture
def opamp():
    return build_two_stage_opamp()


@pytest.fixture
def netlist(opamp):
    return opamp.fresh_netlist()


class TestHitMiss:
    def test_first_lookup_misses_then_hits(self, netlist):
        cache = SimulationCache(CountingSimulator())
        first = cache.simulate(netlist)
        second = cache.simulate(netlist)
        assert cache.simulator.calls == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert first.specs == second.specs

    def test_distinct_parameters_miss(self, opamp, netlist):
        cache = SimulationCache(CountingSimulator())
        cache.simulate(netlist)
        opamp.design_space.apply_to_netlist(
            netlist, opamp.design_space.lower_bounds
        )
        cache.simulate(netlist)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_hit_rate(self, netlist):
        cache = SimulationCache(CountingSimulator())
        assert cache.stats.hit_rate == 0.0
        cache.simulate(netlist)
        cache.simulate(netlist)
        cache.simulate(netlist)
        assert cache.stats.hit_rate == pytest.approx(2.0 / 3.0)

    def test_cached_results_match_real_simulator(self, opamp, netlist, rng):
        plain = OpAmpSimulator()
        cache = SimulationCache(OpAmpSimulator())
        for _ in range(5):
            values = opamp.design_space.sample(rng)
            opamp.design_space.apply_to_netlist(netlist, values)
            direct = plain.simulate(netlist)
            via_cache = cache.simulate(netlist)  # miss
            repeat = cache.simulate(netlist)  # hit
            assert direct.specs == via_cache.specs == repeat.specs
            assert direct.valid == repeat.valid

    def test_hits_return_fresh_copies(self, netlist):
        cache = SimulationCache(CountingSimulator())
        cache.simulate(netlist)
        first = cache.simulate(netlist)
        first.specs["gain"] = -1.0
        second = cache.simulate(netlist)
        assert second.specs["gain"] != -1.0


class TestEviction:
    def _set_width(self, opamp, netlist, level: int) -> None:
        parameter = opamp.design_space["M1.width"]
        values = opamp.design_space.center()
        values[opamp.design_space.names.index("M1.width")] = (
            parameter.minimum + level * parameter.step
        )
        opamp.design_space.apply_to_netlist(netlist, values)

    def test_lru_eviction(self, opamp, netlist):
        cache = SimulationCache(CountingSimulator(), max_entries=2)
        self._set_width(opamp, netlist, 0)
        cache.simulate(netlist)  # A
        self._set_width(opamp, netlist, 1)
        cache.simulate(netlist)  # B -> cache [A, B]
        self._set_width(opamp, netlist, 0)
        cache.simulate(netlist)  # hit A -> [B, A]
        self._set_width(opamp, netlist, 2)
        cache.simulate(netlist)  # C evicts B -> [A, C]
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        self._set_width(opamp, netlist, 0)
        cache.simulate(netlist)  # A still cached
        assert cache.stats.hits == 2
        self._set_width(opamp, netlist, 1)
        cache.simulate(netlist)  # B was evicted -> miss
        assert cache.stats.misses == 4

    def test_capacity_bound(self, opamp, netlist):
        cache = SimulationCache(CountingSimulator(), max_entries=3)
        for level in range(10):
            self._set_width(opamp, netlist, level)
            cache.simulate(netlist)
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_clear(self, netlist):
        cache = SimulationCache(CountingSimulator())
        cache.simulate(netlist)
        cache.clear()
        assert len(cache) == 0
        cache.simulate(netlist)
        assert cache.stats.misses == 2


class TestKeying:
    def test_quantize_significant(self):
        values = np.array([1.00000000000004e-6, 0.0, -3.1415926535897931, 2.5e11])
        rounded = quantize_significant(values, 12)
        assert rounded[0] == 1e-6
        assert rounded[1] == 0.0
        assert rounded[2] == pytest.approx(-3.14159265359, abs=0)
        assert rounded[3] == 2.5e11

    def test_float_noise_below_resolution_hits(self, opamp, netlist):
        cache = SimulationCache(CountingSimulator(), key_digits=10)
        netlist.set_parameter("M1", "width", 1e-6)
        cache.simulate(netlist)
        netlist.set_parameter("M1", "width", 1e-6 * (1.0 + 1e-13))
        cache.simulate(netlist)
        assert cache.stats.hits == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SimulationCache(CountingSimulator(), max_entries=0)
        with pytest.raises(ValueError):
            SimulationCache(CountingSimulator(), key_digits=0)

    def test_name_wraps_inner(self):
        cache = SimulationCache(CountingSimulator())
        assert cache.name == "cached(counting)"

    def test_stats_dataclass(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
