"""Versioned on-disk policy checkpoints: train once, serve many times.

A checkpoint is a single ``.npz`` file holding every policy parameter (one
array per dotted parameter name, prefixed ``param.``) plus one JSON metadata
blob carrying everything needed to rebuild the policy in a fresh process:

* the checkpoint format name and version,
* the :class:`~repro.agents.policy.PolicyConfig` (fully JSON-serializable),
* the library version (``repro.__version__``) that wrote the file,
* optionally the policy registry ID, the environment ID the policy was
  trained for, a :class:`repro.RunConfig` document, and free-form extras
  (training progress, metrics, ...).

``save_checkpoint`` / ``load_checkpoint`` round-trip bitwise: the restored
policy produces exactly the deployment trajectories of the saved one
(``tests/agents/test_checkpoint.py`` verifies this across processes for
every registered policy ID).  Mismatched or corrupt files raise
:class:`CheckpointError` with enough context to tell *what* is wrong —
wrong file type, wrong architecture, missing parameters — instead of a bare
KeyError deep inside ``load_state_dict``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.agents.policy import ActorCriticPolicy, PolicyConfig

#: Identifies a repro policy checkpoint among arbitrary ``.npz`` files.
CHECKPOINT_FORMAT = "repro.policy-checkpoint"

#: Bump when the on-disk layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: npz entry holding the JSON metadata blob.
_METADATA_KEY = "__checkpoint__"

#: Prefix of npz entries holding parameter arrays.
_PARAM_PREFIX = "param."


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


def _repro_version() -> str:
    from repro import __version__  # local: repro.__init__ imports this module's package

    return __version__


def _config_to_dict(config: PolicyConfig) -> Dict[str, Any]:
    data = dataclasses.asdict(config)
    for key, value in data.items():
        if isinstance(value, tuple):
            data[key] = list(value)
    return data


def _config_from_dict(data: Mapping[str, Any]) -> PolicyConfig:
    fields = {field.name for field in dataclasses.fields(PolicyConfig)}
    unknown = set(data) - fields
    if unknown:
        raise CheckpointError(
            f"checkpoint policy_config has unknown keys {sorted(unknown)} "
            f"(written by a newer repro version?)"
        )
    kwargs = dict(data)
    for key in ("graph_hidden", "spec_hidden", "head_hidden"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return PolicyConfig(**kwargs)


@dataclass
class PolicyCheckpoint:
    """A loaded checkpoint: the restored policy plus its metadata."""

    policy: ActorCriticPolicy
    metadata: Dict[str, Any]
    path: Optional[Path] = None

    @property
    def policy_id(self) -> Optional[str]:
        """Registry ID of the policy architecture, when recorded."""
        return self.metadata.get("policy_id")

    @property
    def env_id(self) -> Optional[str]:
        """Environment ID the policy was trained for, when recorded."""
        return self.metadata.get("env_id")

    @property
    def repro_version(self) -> Optional[str]:
        return self.metadata.get("repro_version")

    @property
    def policy_config(self) -> Dict[str, Any]:
        return dict(self.metadata.get("policy_config", {}))

    @property
    def extra(self) -> Dict[str, Any]:
        """Free-form extras recorded at save time (training progress etc.)."""
        return dict(self.metadata.get("extra", {}))

    def run_config(self):
        """The saved :class:`repro.RunConfig`, rebuilt on demand (or None)."""
        document = self.metadata.get("run_config")
        if document is None:
            return None
        from repro.api.configs import RunConfig

        return RunConfig.from_dict(document)


def save_checkpoint(
    path: Union[str, Path],
    policy: ActorCriticPolicy,
    policy_id: Optional[str] = None,
    env_id: Optional[str] = None,
    run_config: Optional[Any] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write ``policy`` (weights + rebuild metadata) to ``path``.

    Parameters
    ----------
    path:
        Destination file (conventionally ``*.npz``; written exactly as
        given, no suffix magic).
    policy:
        The actor-critic policy to persist.
    policy_id / env_id:
        Optional registry IDs recorded for provenance and for
        :class:`repro.serve.DeploymentService` to pick the right environment.
    run_config:
        Optional :class:`repro.RunConfig` (or an equivalent dict) describing
        the run that produced the weights.
    extra:
        Free-form JSON-serializable extras (training progress, metrics).

    Returns the path written.  The file content is a pure function of the
    arguments — no timestamps — so identical policies write identical bytes.
    The write is atomic (temp file + ``os.replace``): a concurrent reader of
    e.g. a trainer-refreshed ``latest.npz`` always sees a complete archive.
    """
    path = Path(path)
    metadata: Dict[str, Any] = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "repro_version": _repro_version(),
        "policy_config": _config_to_dict(policy.config),
        "num_parameters": policy.num_parameters(),
        "policy_id": policy_id,
        "env_id": env_id,
        "run_config": run_config.to_dict() if hasattr(run_config, "to_dict") else run_config,
        "extra": dict(extra) if extra else {},
    }
    arrays = {
        f"{_PARAM_PREFIX}{name}": value for name, value in policy.state_dict().items()
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + f".tmp-{os.getpid()}")
    try:
        with open(scratch, "wb") as handle:
            np.savez(
                handle,
                **{_METADATA_KEY: np.array(json.dumps(metadata, sort_keys=True))},
                **arrays,
            )
        os.replace(scratch, path)
    finally:
        if scratch.exists():  # pragma: no cover - only on a failed write
            scratch.unlink()
    return path


def _read_archive(path: Path):
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"{path} is not a readable checkpoint archive: {exc}") from exc
    if _METADATA_KEY not in archive.files:
        archive.close()
        raise CheckpointError(
            f"{path} is a .npz archive but not a repro policy checkpoint "
            f"(missing its '{_METADATA_KEY}' metadata entry)"
        )
    return archive


def _read_metadata(archive, path: Path) -> Dict[str, Any]:
    try:
        metadata = json.loads(str(archive[_METADATA_KEY][()]))
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        raise CheckpointError(f"{path} has a corrupt metadata entry: {exc}") from exc
    if not isinstance(metadata, dict) or metadata.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} metadata does not identify a '{CHECKPOINT_FORMAT}' file"
        )
    version = metadata.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} uses checkpoint format version {version!r}; this repro "
            f"release reads version {CHECKPOINT_VERSION}"
        )
    saved_with = metadata.get("repro_version")
    if saved_with != _repro_version():
        warnings.warn(
            f"checkpoint {path.name} was written by repro {saved_with}, "
            f"loading with repro {_repro_version()}",
            stacklevel=3,
        )
    return metadata


def load_checkpoint(
    path: Union[str, Path],
    policy: Optional[ActorCriticPolicy] = None,
) -> PolicyCheckpoint:
    """Restore a policy (weights + config) saved by :func:`save_checkpoint`.

    Without ``policy`` the architecture is rebuilt from the stored
    :class:`PolicyConfig` and the weights loaded into it.  With ``policy``
    the weights are loaded into the given instance instead — its
    configuration must match the checkpoint's, otherwise a
    :class:`CheckpointError` explains the difference (e.g. a ``gat_fc``
    checkpoint loaded into a ``gcn_fc`` policy, or a policy sized for a
    different circuit).
    """
    path = Path(path)
    archive = _read_archive(path)
    try:
        metadata = _read_metadata(archive, path)
        # Materialize the arrays while the archive is open; NpzFile entries
        # are lazy zip members, and the handle is closed on return.
        state = {
            name[len(_PARAM_PREFIX) :]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"{path} has a corrupt parameter archive: {exc}") from exc
    finally:
        archive.close()
    config = _config_from_dict(metadata.get("policy_config", {}))

    if policy is not None:
        ours = _config_to_dict(policy.config)
        theirs = _config_to_dict(config)
        if ours != theirs:
            differing = sorted(
                key for key in set(ours) | set(theirs) if ours.get(key) != theirs.get(key)
            )
            saved_as = metadata.get("policy_id") or "unknown policy id"
            raise CheckpointError(
                f"{path} was saved for a different policy architecture "
                f"({saved_as}); differing config fields: "
                + ", ".join(
                    f"{key} (checkpoint={theirs.get(key)!r}, target={ours.get(key)!r})"
                    for key in differing
                )
            )
    else:
        policy = ActorCriticPolicy(config)

    try:
        policy.load_state_dict(state, strict=True)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"{path} parameter arrays do not match the policy "
            f"(expected {policy.num_parameters()} parameters over "
            f"{len(policy.parameter_shapes())} tensors): {exc}"
        ) from exc
    return PolicyCheckpoint(policy=policy, metadata=metadata, path=path)
