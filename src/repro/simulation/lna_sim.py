"""Common-source LNA performance evaluator (gain, noise figure, power).

Behavioural narrow-band model for the topology of
:mod:`repro.circuits.library.common_source_lna`, evaluated at the design's
carrier frequency:

* **DC**: the gate bias fixes the overdrive of ``M1``; its geometry sets the
  drain current and hence the static power.
* **Gain**: ``gm · (Q_L ω₀ L_D ‖ R_casc)`` — the load inductor's finite-Q
  parallel resistance at resonance, limited by the cascode output resistance.
* **Noise figure**: the two classical channel-noise contributions of an
  inductively degenerated CS stage in behavioural form,
  ``F = 1 + γ ω₀ C_gs R_s + γ / (g_m R_s)``.  The first term grows with
  device capacitance (large devices), the second shrinks with
  transconductance (bias current), so an optimum width exists and lowering
  the noise figure costs power — the LNA's defining trade-off.

The degeneration inductor reduces the effective transconductance by the
series-feedback factor ``1 / (1 + g_m ω₀ L_S)``-like term (computed with the
real part of the degenerated input impedance), so ``LS`` trades gain for
linearity/match exactly as in the textbook treatment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.library.common_source_lna import LNA_FREQUENCY
from repro.circuits.netlist import Netlist
from repro.simulation.base import SimulationResult
from repro.simulation.mosfet import MosfetModel
from repro.simulation.opamp_sim import _parallel
from repro.simulation.technology import CMOS_45NM, CmosTechnology

#: Source impedance the LNA is noise-matched against (ohms).
LNA_SOURCE_RESISTANCE = 50.0

#: Channel thermal-noise coefficient γ of the short-channel process.
LNA_NOISE_GAMMA = 1.5

#: Quality factor of the on-chip load inductor.
LNA_INDUCTOR_Q = 10.0


@dataclass
class LnaOperatingPoint:
    """Intermediate analog quantities exposed for debugging and tests."""

    drain_current: float
    gm: float
    effective_gm: float
    gate_capacitance: float
    transit_frequency_hz: float
    input_resistance: float
    load_resistance: float
    gain: float
    noise_factor: float
    noise_figure_db: float
    power_w: float


class LnaSimulator:
    """Evaluate the common-source LNA netlist into its three specifications."""

    name = "lna_analytic"

    def __init__(
        self,
        technology: CmosTechnology = CMOS_45NM,
        frequency: float = LNA_FREQUENCY,
        source_resistance: float = LNA_SOURCE_RESISTANCE,
        noise_gamma: float = LNA_NOISE_GAMMA,
        inductor_q: float = LNA_INDUCTOR_Q,
        bias_overhead_current: float = 2e-6,
    ) -> None:
        if frequency <= 0.0 or source_resistance <= 0.0:
            raise ValueError("frequency and source_resistance must be positive")
        self.technology = technology
        self.frequency = frequency
        self.source_resistance = source_resistance
        self.noise_gamma = noise_gamma
        self.inductor_q = inductor_q
        #: Fixed bias-generation overhead added to the supply current (A).
        self.bias_overhead_current = bias_overhead_current

    def simulate(self, netlist: Netlist) -> SimulationResult:
        """Return gain (V/V), noise figure (dB) and power (W)."""
        op = self.operating_point(netlist)
        valid = op.drain_current > 0.0 and op.gain > 1.0
        specs = {
            "gain": float(op.gain),
            "noise_figure": float(op.noise_figure_db),
            "power": float(op.power_w),
        }
        details = {
            "drain_current": op.drain_current,
            "gm": op.gm,
            "effective_gm": op.effective_gm,
            "gate_capacitance": op.gate_capacitance,
            "transit_frequency_hz": op.transit_frequency_hz,
            "input_resistance": op.input_resistance,
            "load_resistance": op.load_resistance,
            "noise_factor": op.noise_factor,
        }
        return SimulationResult(specs=specs, details=details, valid=valid)

    def operating_point(self, netlist: Netlist) -> LnaOperatingPoint:
        """Compute the bias point and the narrow-band small-signal figures."""
        tech = self.technology
        main = MosfetModel(
            tech, "nmos",
            netlist.get_parameter("M1", "width"), netlist.get_parameter("M1", "fingers"),
        )
        cascode = MosfetModel(
            tech, "nmos",
            netlist.get_parameter("M2", "width"), netlist.get_parameter("M2", "fingers"),
        )
        supply_voltage = netlist.get_parameter("VP", "voltage")
        gate_bias = netlist.get_parameter("VBIAS", "voltage")
        source_inductance = netlist.get_parameter("LS", "value")
        load_inductance = netlist.get_parameter("LD", "value")
        omega = 2.0 * math.pi * self.frequency

        # --- DC bias ---------------------------------------------------
        drain_current = main.saturation_current(gate_bias - tech.vth_n)
        power = supply_voltage * (drain_current + self.bias_overhead_current)
        gm = main.gm_at_current(drain_current)
        gate_cap = main.gate_capacitance()
        transit_frequency = gm / (2.0 * math.pi * gate_cap) if gate_cap > 0.0 else 0.0

        # --- Input stage with inductive degeneration -------------------
        # Series feedback: the degenerated stage's real input resistance is
        # ω_T · L_S and its transconductance shrinks by the same feedback.
        input_resistance = 2.0 * math.pi * transit_frequency * source_inductance
        degeneration = 1.0 + gm * omega * source_inductance
        effective_gm = gm / degeneration if degeneration > 0.0 else 0.0

        # --- Resonant load, limited by the cascode ---------------------
        tank_resistance = self.inductor_q * omega * load_inductance
        cascode_resistance = (
            cascode.gm_at_current(drain_current) * cascode.ro_at_current(drain_current) ** 2
            if drain_current > 0.0
            else float("inf")
        )
        load_resistance = _parallel(tank_resistance, cascode_resistance)
        gain = effective_gm * load_resistance

        # --- Noise figure ----------------------------------------------
        if gm > 0.0:
            noise_factor = (
                1.0
                + self.noise_gamma * omega * gate_cap * self.source_resistance
                + self.noise_gamma / (gm * self.source_resistance)
            )
        else:
            noise_factor = float("inf")
        noise_figure_db = (
            10.0 * math.log10(noise_factor) if math.isfinite(noise_factor) else 99.0
        )

        return LnaOperatingPoint(
            drain_current=drain_current,
            gm=gm,
            effective_gm=effective_gm,
            gate_capacitance=gate_cap,
            transit_frequency_hz=transit_frequency,
            input_resistance=input_resistance,
            load_resistance=load_resistance,
            gain=gain,
            noise_factor=noise_factor,
            noise_figure_db=noise_figure_db,
            power_w=power,
        )
