"""Tests for the table/figure harnesses (Table 1 exactness, smoke-level runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_optimizer
from repro.circuits import BENCHMARK_BUILDERS
from repro.experiments import (
    FIG5_OPAMP_TARGET,
    FIG5_RF_PA_TARGET,
    FIG6_OPAMP_UNSEEN_TARGET,
    FIG6_RF_PA_UNSEEN_TARGET,
    build_circuit_zoo,
    build_table1,
    default_target,
    format_circuit_zoo,
    format_table1,
    run_optimization_curves,
    smoke_scale,
)
from repro.experiments.figures import evaluate_optimizer_accuracy


class TestTable1:
    def test_structure_and_values(self):
        table = build_table1()
        # Table 1 now covers the whole library: the paper's two benchmarks
        # plus the topology zoo.
        assert set(table) == set(BENCHMARK_BUILDERS)
        assert table["two_stage_opamp"]["num_device_parameters"] == 15
        assert table["rf_pa"]["num_device_parameters"] == 14
        assert table["two_stage_opamp"]["technology"] == "45nm CMOS"
        assert table["rf_pa"]["technology"] == "150nm GaN"
        opamp_specs = table["two_stage_opamp"]["specifications"]
        assert opamp_specs["gain"]["min"] == 300.0 and opamp_specs["gain"]["max"] == 500.0
        pa_specs = table["rf_pa"]["specifications"]
        assert pa_specs["output_power"]["min"] == 2.0 and pa_specs["output_power"]["max"] == 3.0

    def test_format_table1_mentions_every_circuit(self):
        text = format_table1()
        for circuit in BENCHMARK_BUILDERS:
            assert circuit in text
        assert "45nm CMOS" in text and "150nm GaN" in text


class TestCircuitZooTable:
    def test_rows_cover_the_library(self):
        rows = build_circuit_zoo()
        assert [row["circuit"] for row in rows] == list(BENCHMARK_BUILDERS)
        by_name = {row["circuit"]: row for row in rows}
        assert by_name["folded_cascode"]["num_device_parameters"] == 22
        assert by_name["current_mirror_ota"]["num_device_parameters"] == 18
        assert by_name["common_source_lna"]["num_device_parameters"] == 6
        assert by_name["common_source_lna"]["num_specifications"] == 3
        for row in rows:
            assert row["env_ids"], f"{row['circuit']} has no registered env IDs"

    def test_env_id_column_tracks_the_registry(self):
        rows = {row["circuit"]: row for row in build_circuit_zoo()}
        assert "folded_cascode-p2s-v0" in rows["folded_cascode"]["env_ids"]
        assert "folded_cascode-random-v0" in rows["folded_cascode"]["env_ids"]
        assert "rf_pa-fine-v0" in rows["rf_pa"]["env_ids"]

    def test_markdown_rendering(self):
        text = format_circuit_zoo()
        assert text.startswith("| circuit |")
        for circuit in BENCHMARK_BUILDERS:
            assert circuit in text
        assert "`common_source_lna-p2s-v0`" in text


class TestFigureTargets:
    def test_fig5_targets_match_paper(self):
        assert FIG5_OPAMP_TARGET == {
            "gain": 350.0, "bandwidth": 1.8e7, "phase_margin": 55.0, "power": 4e-3,
        }
        assert FIG5_RF_PA_TARGET == {"output_power": 2.5, "efficiency": 0.57}

    def test_fig6_targets_are_partly_outside_sampling_space(self, opamp_benchmark, rf_pa_benchmark):
        opamp_space = opamp_benchmark.spec_space
        assert FIG6_OPAMP_UNSEEN_TARGET["phase_margin"] > opamp_space["phase_margin"].maximum
        assert FIG6_OPAMP_UNSEEN_TARGET["bandwidth"] > opamp_space["bandwidth"].maximum
        pa_space = rf_pa_benchmark.spec_space
        assert FIG6_RF_PA_UNSEEN_TARGET["efficiency"] > pa_space["efficiency"].maximum
        assert FIG6_RF_PA_UNSEEN_TARGET["output_power"] > pa_space["output_power"].minimum

    def test_default_target_dispatch(self):
        assert default_target("two_stage_opamp") == FIG5_OPAMP_TARGET
        assert default_target("rf_pa", unseen=True) == FIG6_RF_PA_UNSEEN_TARGET
        with pytest.raises(ValueError):
            default_target("mixer")


class TestOptimizerHarness:
    def test_make_optimizer_budgets(self):
        ga = make_optimizer("genetic_algorithm", seed=0, budget=60).build_search()
        assert ga.config.num_generations >= 2
        bo = make_optimizer("bayesian_optimization", seed=0, budget=20).build_search()
        assert bo.config.num_iterations >= 2
        rs = make_optimizer("random_search", seed=0, budget=15).build_search()
        assert rs.config.num_samples == 15
        with pytest.raises(ValueError):
            make_optimizer("simulated_annealing")

    def test_run_optimization_curves_smoke(self):
        curves = run_optimization_curves(
            "two_stage_opamp",
            target={"gain": 350.0, "bandwidth": 3e6, "phase_margin": 56.0, "power": 5e-3},
            seed=0, ga_budget=40, bo_budget=14,
        )
        assert set(curves) == {"genetic_algorithm", "bayesian_optimization"}
        for curve in curves.values():
            assert curve.num_simulations >= 10
            assert np.all(np.diff(curve.curve()) >= -1e-12)

    def test_budgets_apply_to_canonical_method_ids_too(self):
        target = {"gain": 350.0, "bandwidth": 3e6, "phase_margin": 56.0, "power": 5e-3}
        curves = run_optimization_curves(
            "two_stage_opamp", target=target, methods=("genetic",), seed=0, ga_budget=24,
        )
        # budget 24 with the default population of 20 caps the GA at 2
        # generations; without the budget it would run its full 20.
        assert curves["genetic"].result.budget == 24
        assert curves["genetic"].num_simulations < 100

    def test_evaluate_optimizer_accuracy_smoke(self):
        accuracy = evaluate_optimizer_accuracy(
            "two_stage_opamp", "bayesian_optimization", num_runs=2,
            scale=smoke_scale(), seed=0,
        )
        assert 0.0 <= accuracy.accuracy <= 1.0
        assert accuracy.mean_simulations > 0
        assert len(accuracy.results) == 2


class TestTable2Orchestration:
    """The orchestrated build_table2 knobs: worker parity and store resume."""

    KWARGS = dict(
        rl_methods=(),
        optimizer_methods=("genetic_algorithm",),
        include_supervised=True,
    )

    def test_workers2_matches_workers1(self):
        from repro.experiments import build_table2

        sequential = build_table2(scale=smoke_scale(), workers=1, **self.KWARGS)
        parallel = build_table2(scale=smoke_scale(), workers=2, **self.KWARGS)
        assert sequential.as_text() == parallel.as_text()
        assert [row.method for row in sequential.rows] == [
            row.method for row in parallel.rows
        ]

    def test_store_resumes_rows_without_recomputing(self, tmp_path, monkeypatch):
        from repro.experiments import build_table2

        store = tmp_path / "table2_store"
        first = build_table2(scale=smoke_scale(), store=store, **self.KWARGS)
        # Sabotage the row runner: the rerun only passes if every row was
        # served from the artifact store instead of being recomputed.
        import repro.experiments.tables as tables

        def boom(arguments):
            raise AssertionError("row re-executed despite stored artifact")

        monkeypatch.setattr(tables, "table2_row_unit", boom)
        second = build_table2(scale=smoke_scale(), store=store, **self.KWARGS)
        assert second.as_text() == first.as_text()
